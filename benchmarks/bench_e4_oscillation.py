"""Bench E4: the Figure 5 oscillation table and switch-growth series."""

from repro.experiments import exp_e4_oscillation


def test_e4_oscillation_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e4_oscillation.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    quo = result.row(mode="status_quo")
    eona = result.row(mode="eona")
    oracle = result.row(mode="oracle")
    # Status quo oscillates indefinitely; EONA converges to the green path.
    assert quo["te_switches"] >= 10
    assert eona["te_switches"] <= 3
    assert eona["on_green_path"]
    assert eona["buffering_ratio"] < quo["buffering_ratio"]
    assert oracle["te_switches"] <= 2


def test_e4_switch_growth_series(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e4_oscillation.run_switch_growth(
            seed=0, horizons=(400.0, 800.0, 1200.0)
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    first, _, last = result.rows
    # Oscillation count grows with time for status quo, flat for EONA.
    assert last["status_quo_te_switches"] >= 2 * first["status_quo_te_switches"]
    assert last["eona_te_switches"] <= first["eona_te_switches"] + 1
