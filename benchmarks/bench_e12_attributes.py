"""Bench E12: the client-ISP attribute in A2I (paper §3)."""

from repro.experiments import exp_e12_attributes


def test_e12_attributes_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e12_attributes.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    quo = result.row(config="status_quo")
    unscoped = result.row(config="eona_unscoped")
    scoped = result.row(config="eona_scoped")
    # The congestion response fixes ISP1 either way...
    assert scoped["isp1_buffering"] < quo["isp1_buffering"]
    assert unscoped["isp1_buffering"] < quo["isp1_buffering"]
    # ...but only the attribute-scoped variant spares ISP2's viewers.
    assert unscoped["isp2_bitrate"] < 0.5 * quo["isp2_bitrate"]
    assert scoped["isp2_bitrate"] == quo["isp2_bitrate"]
    assert scoped["isp2_engagement"] > unscoped["isp2_engagement"]
