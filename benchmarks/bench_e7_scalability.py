"""Bench E7: A2I analytics throughput and allocator scaling (paper §5)."""

from repro.experiments import exp_e7_scalability
from repro.experiments.common import ExperimentResult


def test_e7_aggregation_throughput(benchmark, table_sink):
    result = ExperimentResult(
        name="E7-aggregation",
        notes="windowed group-by throughput vs. attribute cardinality",
    )

    def sweep():
        rows = []
        for cardinality in (8, 200, 2000):
            rows.append(
                exp_e7_scalability.measure_aggregation(
                    n_records=100_000, n_cdns=4, n_isps=max(1, cardinality // 4)
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        result.add_row(**row)
    table_sink(result)

    # Hash-grouping: O(1) per record, so throughput degrades sublinearly
    # in cardinality -- under 10x across a 250x cardinality increase
    # (the extreme point is emission-dominated: ~1 record per cell).
    fastest = max(float(row["records_per_sec"]) for row in rows)
    slowest = min(float(row["records_per_sec"]) for row in rows)
    assert slowest > fastest / 10.0
    # Laptop-scale target from the paper's "tens of millions of sessions
    # each day": >= 30k records/s sustained is ~2.5 billion/day.
    assert slowest > 30_000


def test_e7_allocator_scaling(benchmark, table_sink):
    result = ExperimentResult(
        name="E7-allocator",
        notes="max-min allocation cost vs. concurrent flows (50-link chain)",
    )

    def sweep():
        return [
            exp_e7_scalability.measure_allocator(n_flows)
            for n_flows in (100, 1000, 5000)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        result.add_row(**row)
    table_sink(result)
    assert all(row["allocated"] == row["n_flows"] for row in rows)
    # 5000 concurrent flows must allocate in well under a second.
    assert float(rows[-1]["alloc_wall_ms"]) < 1000.0
