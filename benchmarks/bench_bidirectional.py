"""Bench: why EONA's interface is two-way (paper §1, differentiator 2).

"EONA envisions a two-way interface as opposed to prior work that
envisioned an one-way exchange."  Running the one-way designs through
both headline scenarios shows each direction is *essential somewhere*:

* Figure 3 (E2): the fix is the application's bitrate knob -- I2A-only
  matches full EONA, A2I-only is exactly the status quo;
* Figure 5 (E4): the fix is the ISP's placement knob -- A2I-only
  matches full EONA, I2A-only leaves the ISP flapping.

Only the bidirectional interface covers the scenario suite.
"""

from repro.baselines.modes import Mode
from repro.experiments import exp_e2_flash_crowd, exp_e4_oscillation
from repro.experiments.common import ExperimentResult


def test_bidirectionality_tables(benchmark, table_sink):
    def run_both():
        e2 = exp_e2_flash_crowd.run(
            seed=0, include_oneway=True, include_oracle=False
        )
        e2.name = "E2-oneway"
        e4 = exp_e4_oscillation.run(
            seed=0, include_oneway=True, include_oracle=False
        )
        e4.name = "E4-oneway"
        return e2, e4

    e2, e4 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table_sink(e2)
    table_sink(e4)

    # Figure 3: I2A is the binding direction.
    assert (
        e2.row(mode="a2i_only")["buffering_ratio"]
        == e2.row(mode="status_quo")["buffering_ratio"]
    )
    assert (
        e2.row(mode="i2a_only")["buffering_ratio"]
        == e2.row(mode="eona")["buffering_ratio"]
    )
    # Figure 5: A2I is the binding direction.
    assert (
        e4.row(mode="i2a_only")["te_switches"]
        >= e4.row(mode="status_quo")["te_switches"] * 0.8
    )
    assert e4.row(mode="a2i_only")["te_switches"] <= 3
    # Full EONA matches the better one-way design in each scenario.
    assert (
        e4.row(mode="eona")["te_switches"]
        <= e4.row(mode="a2i_only")["te_switches"]
    )
