"""Bench E10: coupling/timescale churn and the damping ablation (§5)."""

from repro.experiments import exp_e10_timescales


def test_e10_partial_coupling_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e10_timescales.run_partial(
            seed=0, te_periods=(15.0, 45.0, 120.0)
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    # A faster legacy TE loop flaps more (the coupling channel exists).
    fast = result.row(te_period_s=15.0, damping="off")
    slow = result.row(te_period_s=120.0, damping="off")
    assert fast["te_switches"] > slow["te_switches"]
    # Damping suppresses the AppP-side churn where churn exists.
    undamped = result.row(te_period_s=45.0, damping="off")
    damped = result.row(te_period_s=45.0, damping="on")
    assert damped["cdn_switches"] < 0.5 * undamped["cdn_switches"]


def test_e10_adaptive_te_damping(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e10_timescales.run_te_damping(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    undamped = result.row(te_damper="none")
    damped = result.row(te_damper="adaptive")
    # Detect-then-backoff cuts the flapping by several times, and in
    # this world holding the big peering beats bouncing to the small
    # one, so QoE improves too.
    assert damped["te_switches"] < undamped["te_switches"] / 2
    assert damped["suppressed_changes"] > 0
    assert damped["engagement"] >= undamped["engagement"]


def test_e10_full_eona_stability(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e10_timescales.run_full(
            seed=0, te_periods=(10.0, 60.0, 180.0)
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    # Full EONA stays converged even at player-timescale TE.
    for row in result.rows:
        assert row["te_switches"] <= 3
        assert row["cdn_switches"] == 0
