"""Bench E5: the energy/QoE frontier table (paper §2 config changes)."""

from repro.experiments import exp_e5_energy


def test_e5_energy_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e5_energy.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    conservative = result.row(policy="conservative")
    schedule = result.row(policy="schedule")
    eona = result.row(policy="eona")
    # Blind policies sit inside the frontier: conservative wastes energy,
    # the forecast-follower degrades QoE.
    assert conservative["energy_saved_pct"] == 0.0
    assert schedule["energy_saved_pct"] > 20.0
    assert schedule["buffering_ratio"] > 5 * eona["buffering_ratio"]
    # EONA: meaningful savings at near-conservative QoE.
    assert eona["energy_saved_pct"] > 15.0
    assert eona["buffering_ratio"] < 0.005
    assert eona["abandoned"] <= schedule["abandoned"]
