"""Bench E11: blinding vs. effectiveness frontier (paper §4)."""

from repro.experiments import exp_e11_privacy


def test_e11_privacy_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e11_privacy.run(seed=0, epsilons=(10.0, 1.0, 0.1, 0.02)),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    light = result.row(epsilon=1.0)
    heavy = result.row(epsilon=0.02)
    # Light blinding preserves full EONA behaviour...
    assert light["te_switches"] <= 3
    assert light["on_green_path"]
    # ...heavy blinding drowns the demand signal and churn returns.
    assert heavy["te_switches"] > light["te_switches"]
    assert heavy["buffering_ratio"] > light["buffering_ratio"]
