"""Bench E13: the coordinated control plane vs per-session reaction."""

from repro.experiments import exp_e13_controlplane


def test_e13_controlplane_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e13_controlplane.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    reactive = result.row(config="reactive")
    coordinated = result.row(config="coordinated")
    # Fleet steering evacuates the faulty CDN; per-session reaction
    # leaves most sessions suffering on it.
    assert coordinated["faulty_cdn_share_during_fault"] < 0.15
    assert reactive["faulty_cdn_share_during_fault"] > 0.4
    # And that shows up as delivered quality.
    assert coordinated["mean_bitrate_mbps"] > reactive["mean_bitrate_mbps"]
    assert coordinated["engagement"] > reactive["engagement"]
    assert coordinated["migrations"] > 0
