"""Bench E8: multi-AppP fairness table (paper §5 "fairness and trust")."""

from repro.experiments import exp_e8_fairness


def test_e8_fairness_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e8_fairness.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    quo = result.row(mode="status_quo")
    eona = result.row(mode="eona")
    # EONA lifts both AppPs (no starvation) and splits the peerings.
    assert eona["heavy_engagement"] >= quo["heavy_engagement"]
    assert eona["light_engagement"] >= quo["light_engagement"]
    assert eona["jain_sessions"] >= 0.95
    assert eona["split_across_peerings"]
    assert eona["te_switches"] < quo["te_switches"]
