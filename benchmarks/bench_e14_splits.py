"""Bench E14: traffic splits across peering points (§4's third knob)."""

from repro.experiments import exp_e14_splits


def test_e14_splits_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e14_splits.run(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    single = result.row(config="eona_single")
    split = result.row(config="eona_split")
    # No single peering fits the demand, so single-egress placement
    # leaves ~half the capacity stranded; the split uses both.
    assert split["split_active"]
    assert split["mean_bitrate_mbps"] > 1.5 * single["mean_bitrate_mbps"]
    assert split["peerB_util_loaded"] > 0.5
    assert split["peerC_util_loaded"] > 0.5
    assert single["peerB_util_loaded"] < 0.5 or single["peerC_util_loaded"] < 0.5
    assert split["engagement"] > single["engagement"]
