"""Bench E2: the flash-crowd table (paper §2, Figure 3)."""

from repro.baselines.modes import Mode
from repro.experiments import exp_e2_flash_crowd
from repro.experiments.common import ExperimentResult


def test_e2_flash_crowd_table(benchmark, table_sink):
    result = ExperimentResult(
        name="E2-flash-crowd",
        notes="flash crowd behind a fixed access bottleneck (Figure 3)",
    )

    def run_all():
        return [
            exp_e2_flash_crowd.run_mode(mode, seed=0)
            for mode in (Mode.STATUS_QUO, Mode.EONA, Mode.ORACLE)
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for row in rows:
        result.add_row(**row)
    table_sink(result)

    quo = result.row(mode="status_quo")
    eona = result.row(mode="eona")
    oracle = result.row(mode="oracle")
    # Figure 3's lesson: trade bitrate for a large buffering cut.
    assert eona["buffering_ratio"] < 0.6 * quo["buffering_ratio"]
    assert eona["mean_bitrate_mbps"] <= quo["mean_bitrate_mbps"]
    assert eona["cdn_switches"] == 0 and quo["cdn_switches"] > 0
    # The narrow interface sits near the oracle.
    assert eona["buffering_ratio"] < 1.5 * oracle["buffering_ratio"]


def test_e2_abr_ablation(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e2_flash_crowd.run_abr_ablation(seed=0),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    # The congestion signal operates above the ABR, so every algorithm
    # benefits -- the design-decision ablation of DESIGN.md ✦2.
    for row in result.rows:
        assert row["eona_benefit"] > 0, row["abr"]
        assert row["eona_engagement_gain"] > 0, row["abr"]
