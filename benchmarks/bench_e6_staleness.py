"""Bench E6: the EONA-benefit-vs-staleness curves (paper §5)."""

from repro.experiments import exp_e6_staleness


def test_e6_staleness_curve(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e6_staleness.run(
            seed=0, refresh_periods=(2.0, 10.0, 30.0, 90.0)
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    fresh = result.row(i2a_refresh_s=2.0)
    stale = result.row(i2a_refresh_s=90.0)
    # Near-live sharing delivers a large benefit; minute-stale snapshots
    # erode it (possibly to nothing) -- the §5 staleness concern.
    assert fresh["relative_benefit"] > 0.4
    assert stale["relative_benefit"] < fresh["relative_benefit"]


def test_e6_te_staleness(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e6_staleness.run_te_staleness(
            seed=0, refresh_periods=(5.0, 30.0, 120.0)
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    # TE operates on minutes, so it tolerates much staler demand data:
    # convergence to the green path survives across the sweep.
    for row in result.rows:
        assert row["te_switches"] <= 3
        assert row["on_green_path"]
