"""Bench E3: QoE inference vs. direct A2I export (paper Figure 4)."""

from repro.experiments import exp_e3_inference


def test_e3_inference_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e3_inference.run(seed=0, n_clients=10, n_pages_per_client=25),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    direct = result.row(method="a2i_direct")
    inferred = result.row(method="network_inference")
    assert direct["mae_s"] == 0.0 and direct["spearman"] == 1.0
    assert inferred["mae_s"] > 0.05
    assert inferred["relative_mae"] > 0.1
    assert inferred["bad_session_detection_acc"] < 1.0


def test_e3_volatility_sweep(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e3_inference.run_volatility_sweep(
            seed=0, volatilities=(0.5, 1.0, 2.0),
            n_clients=8, n_pages_per_client=20,
        ),
        rounds=1,
        iterations=1,
    )
    table_sink(result)
    calm = result.row(radio_volatility=0.5)
    churny = result.row(radio_volatility=2.0)
    # Faster hidden-state dynamics degrade the proxy's usefulness.
    assert churny["mae_s"] >= 0.5 * calm["mae_s"]
