"""The registry-driven bench harness: every experiment table, one test.

Replaces the fourteen per-experiment ``bench_e*`` files: the table to
regenerate, its canonical configuration, and the shape assertions all
live in each experiment's registered
:class:`~repro.experiments.spec.ExperimentSpec`, so this file is just
the loop.  Bespoke benches that don't map to one spec variant
(``bench_allocator.py``, ``bench_bidirectional.py``) stay separate.
"""

from __future__ import annotations

import pytest

from repro.experiments import registry

_VARIANTS = [
    (spec, variant)
    for spec in registry.all_specs()
    for variant in spec.variants
]


@pytest.mark.parametrize(
    "spec,variant",
    _VARIANTS,
    ids=[f"{spec.exp_id}-{variant.name}" for spec, variant in _VARIANTS],
)
def test_experiment_table(spec, variant, benchmark, table_sink, check_sink):
    result = benchmark.pedantic(
        lambda: variant.run(0), rounds=1, iterations=1
    )
    table_sink(result)

    assert variant.checks, f"{spec.exp_id}/{variant.name} declares no checks"
    outcomes = variant.evaluate(result)
    check_sink(f"{spec.exp_id}/{variant.name}", outcomes)
    failed = [outcome for outcome in outcomes if not outcome.passed]
    assert not failed, "\n".join(
        f"{outcome.check}: {outcome.detail}" for outcome in failed
    )
