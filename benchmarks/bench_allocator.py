"""Bench: incremental allocation engine vs from-scratch re-solve.

A high-churn flash crowd (hundreds of short transfers arriving in a
burst behind one access bottleneck, with capacity flaps) is the
allocation hot path's worst case: every start/finish used to trigger a
full network-wide max-min solve.  The incremental engine re-solves only
the dirty component, so flows on untouched islands cost nothing.

The two configurations run the *same* deterministic workload; the table
reports solver counters and wall-clock for each.
"""

import time

from repro.core.context import build_context
from repro.experiments.common import ExperimentResult
from repro.network.allocator import EngineConfig
from repro.network.topology import NodeKind, Topology

N_ISLANDS = 6
CLIENTS_PER_ISLAND = 8
N_TRANSFERS = 600
HORIZON_S = 240.0


def _topology() -> Topology:
    """Access islands, each served by its own edge cache.

    Flows never leave their island, so the flow–link sharing graph
    decomposes into per-island components -- the locality the
    incremental engine exploits (one island's churn cannot change
    another island's rates).
    """
    topo = Topology("allocator-bench")
    for island in range(N_ISLANDS):
        edge = f"edge{island}"
        agg = f"agg{island}"
        topo.add_node(edge, NodeKind.SERVER, owner="cdn")
        topo.add_node(agg, NodeKind.ROUTER, owner="isp")
        topo.add_link(edge, agg, 60.0, delay_ms=2, owner="isp", tags=("access",))
        for index in range(CLIENTS_PER_ISLAND):
            node = f"c{island}.{index}"
            topo.add_node(node, NodeKind.CLIENT, owner="isp")
            topo.add_link(agg, node, 100.0, delay_ms=5, owner="isp")
    return topo


def _run_workload(incremental: bool) -> dict:
    ctx = build_context(
        topology=_topology(),
        seed=17,
        engine_config=EngineConfig(incremental=incremental),
    )
    net = ctx.network
    rng = ctx.rng.get("churn")
    clients = [
        f"c{island}.{index}"
        for island in range(N_ISLANDS)
        for index in range(CLIENTS_PER_ISLAND)
    ]
    # Flash-crowd arrivals: a burst between t=20 and t=80, each client
    # fetching from its island's edge cache.
    for i in range(N_TRANSFERS):
        at = 20.0 + 60.0 * rng.random() ** 0.5
        client = clients[i % len(clients)]
        edge = f"edge{client[1:].split('.')[0]}"
        size = rng.uniform(2.0, 25.0)
        ctx.sim.schedule_at(
            at,
            lambda edge=edge, client=client, size=size: net.start_transfer(
                edge, client, size_mbit=size, demand_mbps=8.0
            ),
        )
    # Capacity flaps on one island's access link mid-crowd.
    flapped = "edge0->agg0"
    for at, capacity in ((40.0, 20.0), (70.0, 60.0), (100.0, 30.0), (130.0, 60.0)):
        ctx.sim.schedule_at(
            at,
            lambda capacity=capacity: net.set_link_capacity(flapped, capacity),
        )
    started = time.perf_counter()
    ctx.run(until=HORIZON_S)
    wall_ms = (time.perf_counter() - started) * 1000.0
    counters = net.allocation_counters()
    return {
        "engine": "incremental" if incremental else "full-resolve",
        "completed": net.completed_transfers,
        "solve_calls": counters["solve_calls"],
        "full_solves": counters["full_solves"],
        "incremental_solves": counters["incremental_solves"],
        "flows_touched": counters["flows_touched"],
        "wall_ms": wall_ms,
        "_counters": counters,
    }


def test_incremental_engine_beats_full_resolve(benchmark, table_sink, counter_sink):
    def run_both():
        return [_run_workload(incremental=False), _run_workload(incremental=True)]

    full, incr = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for row in (full, incr):
        counter_sink(f"allocator[{row['engine']}]", row.pop("_counters"))

    result = ExperimentResult(
        name="allocator-incremental",
        notes=(
            f"{N_TRANSFERS} flash-crowd transfers over {N_ISLANDS} access "
            f"islands; full-solve reduction "
            f"{full['full_solves'] / max(1, incr['full_solves']):.1f}x"
        ),
    )
    result.add_row(**full)
    result.add_row(**incr)
    table_sink(result)

    # Identical workload, identical outcome: the incremental solve is
    # exact, so the simulated trajectory must not change.
    assert incr["completed"] == full["completed"]
    assert incr["solve_calls"] == full["solve_calls"]
    # The headline: the engine turns most solves into component-local
    # ones -- at least 2x fewer full solves than the baseline.
    assert incr["full_solves"] * 2 <= full["full_solves"]
    assert incr["incremental_solves"] > 0
    # And it does strictly less solver work overall.
    assert incr["flows_touched"] < full["flows_touched"]
