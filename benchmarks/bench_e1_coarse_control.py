"""Bench E1: the "coarse control" table (paper §2, scenario 1).

Regenerates the status-quo vs. EONA comparison for a degraded server
inside a warm CDN, and reports the run's wall-clock cost.
"""

from repro.baselines.modes import Mode
from repro.experiments import exp_e1_coarse_control
from repro.experiments.common import ExperimentResult


def test_e1_coarse_control_table(benchmark, table_sink):
    result = ExperimentResult(
        name="E1-coarse-control",
        notes="degraded server in warm CDN X; cold CDN Y behind narrow origin",
    )

    def run_both():
        rows = [
            exp_e1_coarse_control.run_mode(mode, seed=0)
            for mode in (Mode.STATUS_QUO, Mode.EONA)
        ]
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for row in rows:
        result.add_row(**row)
    table_sink(result)

    quo = result.row(mode="status_quo")
    eona = result.row(mode="eona")
    # The paper's claims, as assertions on the regenerated table:
    assert eona["traffic_retained_by_x"] > quo["traffic_retained_by_x"]
    assert eona["cdn_switches"] == 0
    assert eona["origin_y_fetches"] == 0
    assert eona["mean_bitrate_mbps"] > quo["mean_bitrate_mbps"]
