"""Bench E9: QoE vs. interface width against the oracle (paper §4)."""

from repro.experiments import exp_e9_recipe


def test_e9_interface_width_table(benchmark, table_sink):
    result = benchmark.pedantic(
        lambda: exp_e9_recipe.run(seed=0, budgets=(1, 2, 4, 7)),
        rounds=1,
        iterations=1,
    )
    table_sink(result)

    quo = result.row(config="status_quo")
    narrowest = result.row(config="narrow-1")
    widest = result.row(config="narrow-7")
    oracle = result.row(config="oracle")
    # A handful of fields captures the benefit...
    assert narrowest["buffering_ratio"] < 0.2 * quo["buffering_ratio"]
    assert narrowest["te_switches"] <= 3 < quo["te_switches"]
    # ...and widening adds essentially nothing.
    assert widest["buffering_ratio"] <= narrowest["buffering_ratio"] * 1.5
    # The narrow interface sits at (or here, within noise of) the oracle.
    assert narrowest["engagement"] >= oracle["engagement"] - 0.05
