"""Benchmark-suite helpers.

Every benchmark regenerates one experiment table (the reproduction's
analogue of a paper table/figure).  Tables are printed to the terminal
section at the end of the run and written under ``benchmarks/results/``
so the EXPERIMENTS.md numbers can be traced to a run.
"""

from __future__ import annotations

import os
from typing import List

import pytest

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_tables: List[str] = []
_counters: List[str] = []
_checks: List[str] = []


def record_table(result) -> None:
    """Register an experiment result for terminal + file output."""
    text = result.table_str()
    _tables.append(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    safe_name = result.name.lower().replace(" ", "-")
    with open(os.path.join(_RESULTS_DIR, f"{safe_name}.txt"), "w") as handle:
        handle.write(text + "\n")


def record_counters(label: str, counters: dict) -> None:
    """Register allocation-engine counters for the terminal summary.

    Pass the dict from ``FluidNetwork.allocation_counters()`` (or
    ``SimContext.allocation_counters()``) after a run, labeled with the
    benchmark/configuration it came from.
    """
    parts = "  ".join(f"{key}={value}" for key, value in counters.items())
    _counters.append(f"{label}: {parts}")


def record_checks(label: str, outcomes) -> None:
    """Register spec-check outcomes for the terminal summary.

    Pass the list of ``CheckOutcome`` from ``VariantSpec.evaluate``.
    """
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        _checks.append(f"{status}  {label}: {outcome.check}")


@pytest.fixture
def table_sink():
    return record_table


@pytest.fixture
def check_sink():
    return record_checks


@pytest.fixture
def counter_sink():
    return record_counters


def pytest_terminal_summary(terminalreporter):
    if _tables:
        terminalreporter.section("reproduced tables/figures")
        for text in _tables:
            terminalreporter.write_line("")
            for line in text.splitlines():
                terminalreporter.write_line(line)
    if _counters:
        terminalreporter.section("allocation engine counters")
        for line in _counters:
            terminalreporter.write_line(line)
    if _checks:
        terminalreporter.section("spec shape checks")
        for line in _checks:
            terminalreporter.write_line(line)
