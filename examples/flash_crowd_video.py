#!/usr/bin/env python3
"""Figure 3 live: a flash crowd behind a congested access ISP.

Builds the paper's "lack of visibility" world twice -- once with the
status-quo blackbox AppP (players thrash across CDNs), once with the
EONA-I2A congestion signal wired in (the AppP's fleet governor steps
bitrate down instead) -- and prints the side-by-side outcome.

Run:  python examples/flash_crowd_video.py
"""

from repro.baselines import Mode
from repro.core import EonaAppP, EonaInfP, StatusQuoAppP, StatusQuoInfP
from repro.experiments.common import launch_video_sessions, qoe_of
from repro.video.qoe import summarize
from repro.scenarios import build_scenario
from repro.workloads import flash_crowd_rate


def run_world(use_eona: bool) -> dict:
    scenario = build_scenario(
        "flash-crowd",
        seed=3,
        params={"n_clients": 30, "access_capacity_mbps": 45.0},
    )
    sim = scenario.sim

    if use_eona:
        # The ISP publishes congestion attribution over I2A...
        infp = EonaInfP(
            sim,
            scenario.network,
            groups=[],
            registry=scenario.registry,
            access_links=[scenario.access_link],
            stats_period_s=2.0,
            i2a_refresh_s=5.0,
        )
        scenario.registry.grant("isp", "appp")
        # ...and the AppP's control loop consumes it.
        policy = EonaAppP(sim, scenario.cdns, isp_i2a=infp.i2a, name="appp")
    else:
        infp = StatusQuoInfP(sim, scenario.network, groups=[], stats_period_s=2.0)
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")

    crowd = flash_crowd_rate(
        base_per_s=0.05, peak_per_s=1.5, onset_s=30.0, ramp_s=30.0, duration_s=60.0
    )
    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_fn=crowd,
        max_rate_per_s=1.5,
        until=360.0,
        content_picker=lambda i: scenario.catalog.by_rank(0),  # one hot title
    )
    sim.run(until=600.0)
    infp.stop()
    summary = summarize(qoe_of(players))
    summary["world"] = "EONA" if use_eona else "status quo"
    return summary


def main() -> None:
    for use_eona in (False, True):
        summary = run_world(use_eona)
        print(f"\n--- {summary['world']} ---")
        print(f"  sessions          : {summary['sessions']}")
        print(f"  buffering ratio   : {summary['mean_buffering_ratio']:.4f}")
        print(f"  mean bitrate      : {summary['mean_bitrate_mbps']:.2f} Mbit/s")
        print(f"  CDN switches/sess : {summary['cdn_switches_per_session']:.2f}")
        print(f"  engagement        : {summary['mean_engagement']:.3f}")
    print(
        "\nThe EONA world trades a little bitrate for much less buffering\n"
        "and stops the futile CDN thrashing -- Figure 3's exact argument."
    )


if __name__ == "__main__":
    main()
