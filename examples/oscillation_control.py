#!/usr/bin/env python3
"""Figure 5 live: watching the CDN/peering oscillator, then fixing it.

Runs the paper's oscillation world under the status quo (greedy ISP TE
+ blackbox AppP) and prints the ISP's egress decision log -- the
B -> C -> B -> ... ping-pong -- then runs the same world under EONA and
shows the single decisive move to the green path (CDN X via peering C).

Run:  python examples/oscillation_control.py
"""

from repro.core import EonaAppP, EonaInfP, StatusQuoAppP, StatusQuoInfP
from repro.experiments.common import launch_video_sessions, qoe_of
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


def run_world(use_eona: bool):
    scenario = build_scenario("oscillation", seed=1, params={"n_clients": 24})
    sim = scenario.sim

    if use_eona:
        policy = EonaAppP(sim, scenario.cdns, name="appp")
        a2i = policy.make_a2i(scenario.registry, refresh_period_s=10.0)
        scenario.registry.grant("appp", "isp")
        infp = EonaInfP(
            sim,
            scenario.network,
            scenario.groups,
            registry=scenario.registry,
            appp_a2i=a2i,
            te_period_s=60.0,
            stats_period_s=5.0,
        )
        scenario.registry.grant("isp", "appp")
        policy.isp_i2a = infp.i2a
    else:
        infp = StatusQuoInfP(
            sim, scenario.network, scenario.groups, te_period_s=60.0,
            stats_period_s=5.0,
        )
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=24 / 180.0,
        until=900.0,
    )
    sim.run(until=1100.0)
    infp.stop()
    return infp, summarize(qoe_of(players))


def main() -> None:
    for use_eona in (False, True):
        label = "EONA" if use_eona else "status quo"
        infp, summary = run_world(use_eona)
        print(f"\n--- {label} ---")
        print("  ISP egress decision log for CDN X:")
        decisions = [d for d in infp.te.decisions if d.group == "cdnX"]
        for decision in decisions[:12]:
            print(
                f"    t={decision.time:7.1f}s  {decision.old} -> {decision.new}"
            )
        if len(decisions) > 12:
            print(f"    ... and {len(decisions) - 12} more re-selections")
        print(f"  total TE switches : {infp.te.switch_count('cdnX')}")
        print(f"  buffering ratio   : {summary['mean_buffering_ratio']:.5f}")
        print(f"  CDN switches/sess : {summary['cdn_switches_per_session']:.2f}")
        print(f"  engagement        : {summary['mean_engagement']:.3f}")


if __name__ == "__main__":
    main()
