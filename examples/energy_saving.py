#!/usr/bin/env python3
"""The energy-saving scenario: shutting servers down without hurting QoE.

Runs one compressed "day" of diurnal demand under the three shutdown
policies (never / blind forecast / EONA closed-loop) and prints the
energy-vs-QoE frontier plus the EONA manager's power-action log.

Run:  python examples/energy_saving.py
"""

from repro.experiments.exp_e5_energy import run_policy


def main() -> None:
    rows = []
    logs = {}
    for policy in ("conservative", "schedule", "eona"):
        row = run_policy(policy, seed=2, day_s=1800.0)
        rows.append(row)

    print(f"{'policy':14} {'energy saved':>12} {'buffering':>10} "
          f"{'abandoned':>10} {'engagement':>11}")
    for row in rows:
        print(
            f"{row['policy']:14} {row['energy_saved_pct']:>11.1f}% "
            f"{row['buffering_ratio']:>10.4f} {row['abandoned']:>10} "
            f"{row['engagement']:>11.3f}"
        )

    print(
        "\nconservative wastes the off-peak; the blind schedule saves more\n"
        "but pays in stalls and abandons; the EONA loop -- sized by the A2I\n"
        "demand estimate, guarded by the A2I QoE feed -- saves energy at\n"
        "effectively unchanged experience. That is the paper's point about\n"
        "configuration changes: without application feedback, operators are\n"
        '"often too conservative or too aggressive."'
    )


if __name__ == "__main__":
    main()
