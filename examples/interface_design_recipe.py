#!/usr/bin/env python3
"""The §4 interface-design recipe, executed.

Walks the paper's four steps on its own use cases:

1. enumerate the §2 scenarios;
2. (implicitly) posit the global controller that could solve them;
3. map knobs and data to owners -> derive the WIDE interface (every
   datum that must cross a provider boundary);
4. score the data by measured relevance and NARROW to a budget.

Run:  python examples/interface_design_recipe.py
"""

import random

from repro.core.recipe import (
    derive_wide_interface,
    eona_standard_ownership,
    narrow_interface,
    utility_from_observations,
)


def main() -> None:
    ownership, use_cases = eona_standard_ownership()

    print("step 1 — use cases (paper §2):")
    for use_case in use_cases:
        knobs = ", ".join(knob.name for knob in use_case.knobs)
        data = ", ".join(datum.name for datum in use_case.data)
        print(f"  {use_case.name:16} knobs: {knobs}")
        print(f"  {'':16} data:  {data}")

    print("\nstep 3 — the WIDE interface (every cross-owner crossing):")
    wide = derive_wide_interface(use_cases)
    for datum_name, recipient in sorted(wide.shared_fields):
        print(f"  share {datum_name!r:22} -> {recipient}")
    print(f"  ({wide.width} distinct shared fields)")

    # Step 4 input: utility scores.  A deployment would measure these;
    # here we synthesize observation series whose correlation with a
    # quality signal encodes the paper's qualitative ranking.
    rng = random.Random(0)
    n = 200
    quality = [rng.random() for _ in range(n)]

    def correlated(strength: float):
        return [
            strength * q + (1 - strength) * rng.random() for q in quality
        ]

    observations = {
        "qoe": correlated(0.95),
        "demand_estimate": correlated(0.9),
        "access_congestion": correlated(0.8),
        "peering_capacity": correlated(0.6),
        "peering_decision": correlated(0.5),
        "server_hints": correlated(0.4),
        "server_load": correlated(0.2),
    }
    utility = utility_from_observations(observations, quality)
    print("\nstep 4 — measured utility (|rank correlation| with quality):")
    for name, score in sorted(utility.items(), key=lambda kv: -kv[1]):
        print(f"  {name:20} {score:.3f}")

    for budget in (2, 4):
        narrowed = narrow_interface(wide, utility, budget=budget)
        fields = sorted({name for name, _ in narrowed.shared_fields})
        print(f"\nnarrowed to budget {budget}: {', '.join(fields)}")

    print(
        "\nExperiment E9 runs these narrowed interfaces against the global-"
        "\ncontroller oracle; see EXPERIMENTS.md for the measured gap."
    )


if __name__ == "__main__":
    main()
