#!/usr/bin/env python3
"""Figure 4 live: a cellular ISP guessing web QoE vs. just being told.

Simulates browsing sessions over radio links with hidden Markov state,
then fits the ISP's inference model (network-level features -> PLT) and
compares its accuracy against the direct EONA-A2I export.

Run:  python examples/cellular_web_inference.py
"""

from repro.experiments.exp_e3_inference import (
    evaluate_inference,
    generate_pageloads,
)
from repro.telemetry.inference import PAGELOAD_FEATURE_NAMES
from repro.web.qoe import satisfaction_from_plt


def main() -> None:
    print("simulating cellular browsing sessions...")
    records = generate_pageloads(seed=5, n_clients=12, n_pages_per_client=25)
    print(f"  {len(records)} page loads collected\n")

    plts = sorted(record.plt_s for record in records)
    median = plts[len(plts) // 2]
    p95 = plts[int(len(plts) * 0.95)]
    print(f"ground truth (AppP-visible): median PLT {median:.2f}s, p95 {p95:.2f}s")
    satisfied = sum(
        1 for record in records if satisfaction_from_plt(record.plt_s) >= 0.5
    )
    print(f"  {satisfied}/{len(records)} sessions satisfied (PLT-based)\n")

    print("the InfP's passive features:", ", ".join(PAGELOAD_FEATURE_NAMES))
    report = evaluate_inference(records, seed=5)
    print("\ninference (status quo, Figure 4) vs. direct A2I export:")
    print(f"  {'':24}  inference   direct A2I")
    print(f"  {'MAE (seconds)':24}  {report['mae_s']:9.3f}   {0.0:9.3f}")
    print(f"  {'rank correlation':24}  {report['spearman']:9.3f}   {1.0:9.3f}")
    print(
        f"  {'bad-session detection':24}  "
        f"{report['bad_session_detection_acc']:9.1%}   {1.0:9.1%}"
    )
    print(
        f"\nthe model explains rank order well but carries "
        f"{report['relative_mae']:.0%} of the PLT spread as irreducible\n"
        "error -- the gap EONA-A2I closes by exporting the measurement itself."
    )


if __name__ == "__main__":
    main()
