#!/usr/bin/env python3
"""Quickstart: build a tiny delivery chain, stream a video, read QoE.

This walks the core objects end to end in ~60 lines:

1. a topology (CDN edge, ISP, client) on a discrete-event simulator;
2. a fluid network that shares link bandwidth max-min fairly;
3. a CDN with an edge cache pulling through an origin;
4. an adaptive player running a rate-based ABR;
5. the session's QoE metrics and engagement score.

Run:  python examples/quickstart.py
"""

from repro.cdn import Cdn, CdnServer, ContentCatalog, Origin
from repro.network import FluidNetwork, NodeKind, Topology
from repro.simkernel import Simulator
from repro.video import (
    DEFAULT_LADDER,
    AdaptivePlayer,
    PlayerPolicy,
    RateBasedAbr,
    SessionAssignment,
    engagement_score,
)


def main() -> None:
    # 1. The world: origin -> edge -> ISP -> client, access = 8 Mbit/s.
    sim = Simulator(seed=7)
    topo = Topology("quickstart")
    topo.add_node("origin", NodeKind.ORIGIN, owner="cdn")
    topo.add_node("edge", NodeKind.SERVER, owner="cdn")
    topo.add_node("isp", NodeKind.ROUTER, owner="isp")
    topo.add_node("client", NodeKind.CLIENT, owner="isp")
    topo.add_link("origin", "edge", 50.0, delay_ms=40)
    topo.add_link("edge", "isp", 1000.0, delay_ms=5)
    topo.add_link("isp", "client", 8.0, delay_ms=10, tags=("access",))

    # 2. Fluid flow-level network simulation on top of the topology.
    network = FluidNetwork(sim, topo)

    # 3. A CDN: one edge cluster, cache pulls through the origin on miss.
    catalog = ContentCatalog(n_items=50, duration_s=120.0, zipf_alpha=1.0)
    cdn = Cdn(
        "demo-cdn",
        [CdnServer("edge-1", "edge", capacity_sessions=100)],
        origin=Origin("origin"),
    )

    # 4. A minimal AppP policy: always use our one CDN.
    class OneCdnPolicy(PlayerPolicy):
        def assign(self, player):
            return SessionAssignment(cdn=cdn)

    player = AdaptivePlayer(
        sim,
        network,
        session_id="session-0",
        client_node="client",
        content=catalog.by_rank(0),
        ladder=DEFAULT_LADDER,
        abr=RateBasedAbr(),
        policy=OneCdnPolicy(),
    )
    player.start()

    # 5. Run to completion and inspect the session.
    sim.run(until=600.0)
    qoe = player.qoe()
    print("first viewer finished (cold edge cache, chunks pulled from origin)")
    print(f"  join time        : {qoe.join_time_s:.2f} s")
    print(f"  played           : {qoe.play_time_s:.0f} s of media")
    print(f"  buffering ratio  : {qoe.buffering_ratio:.4f}")
    print(f"  mean bitrate     : {qoe.mean_bitrate_mbps:.2f} Mbit/s")
    print(f"  bitrate switches : {qoe.bitrate_switches}")
    print(f"  engagement score : {engagement_score(qoe):.3f}")
    print(f"  edge cache hits  : {cdn.cache_hit_rate():.0%}")

    # 6. A second viewer of the same title hits the now-warm edge cache.
    second = AdaptivePlayer(
        sim,
        network,
        session_id="session-1",
        client_node="client",
        content=catalog.by_rank(0),
        ladder=DEFAULT_LADDER,
        abr=RateBasedAbr(),
        policy=OneCdnPolicy(),
    )
    second.start()
    sim.run(until=1200.0)
    print("\nsecond viewer of the same title (warm cache)")
    print(f"  engagement score : {engagement_score(second.qoe()):.3f}")
    print(f"  edge cache hits  : {cdn.cache_hit_rate():.0%} cumulative")
    print(f"  origin fetches   : {cdn.origin.fetches}")


if __name__ == "__main__":
    main()
