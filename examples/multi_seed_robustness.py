#!/usr/bin/env python3
"""Seed-robustness of the headline claims (small configurations).

Reruns the E1 (coarse control) and E4 (oscillation) comparisons over
several seeds and prints mean ± std tables, showing the reproduced
shapes are properties of the mechanisms rather than of one lucky run.

Run:  python examples/multi_seed_robustness.py
"""

from repro.baselines import Mode
from repro.experiments.exp_e1_coarse_control import run_mode as e1_run
from repro.experiments.exp_e4_oscillation import run_mode as e4_run
from repro.experiments.multiseed import multiseed_result

SEEDS = [0, 1, 2, 3]


def main() -> None:
    print("re-running E1 (coarse control) over seeds", SEEDS, "...")
    e1 = multiseed_result(
        name="E1-multiseed",
        row_fn=e1_run,
        configs=[
            {"mode": Mode.STATUS_QUO, "n_clients": 10, "n_sessions": 16,
             "horizon_s": 500.0},
            {"mode": Mode.EONA, "n_clients": 10, "n_sessions": 16,
             "horizon_s": 500.0},
        ],
        seeds=SEEDS,
        notes="coarse-control world, small configuration",
    )
    print()
    print(e1.table_str())

    print("\nre-running E4 (oscillation) over seeds", SEEDS, "...")
    e4 = multiseed_result(
        name="E4-multiseed",
        row_fn=e4_run,
        configs=[
            {"mode": Mode.STATUS_QUO, "n_clients": 16, "horizon_s": 800.0,
             "te_period_s": 40.0},
            {"mode": Mode.EONA, "n_clients": 16, "horizon_s": 800.0,
             "te_period_s": 40.0},
        ],
        seeds=SEEDS,
        notes="Figure 5 world, small configuration",
    )
    print()
    print(e4.table_str())

    quo = e4.row(mode="status_quo")
    eona = e4.row(mode="eona")
    print(
        f"\nacross {len(SEEDS)} seeds: status-quo TE switches "
        f"{quo['te_switches_mean']:.1f}±{quo['te_switches_std']:.1f}, "
        f"EONA {eona['te_switches_mean']:.1f}±{eona['te_switches_std']:.1f}; "
        f"EONA on the green path in {eona['on_green_path_frac']:.0%} of runs."
    )


if __name__ == "__main__":
    main()
