"""Windowed group-by aggregation: the analytics core of the A2I path.

A2I exports *aggregates*, never raw sessions (that is the privacy
boundary §4 insists on).  The aggregator buckets records into tumbling
time windows, groups by a configurable attribute tuple, and maintains
streaming statistics per (window, group).  Closed windows are emitted
to a sink -- normally the :class:`~repro.telemetry.streamdb.TimeSeriesStore`
the A2I looking-glass answers from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import TRACER
from repro.telemetry.records import SessionRecord


@dataclass
class _Running:
    """Streaming stats for one metric within one group-window.

    ``count`` is a (possibly fractional) total weight: an individual
    beacon contributes weight 1, a cohort beacon the number of sessions
    it summarizes.
    """

    count: float = 0.0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float, weight: float = 1.0) -> None:
        self.count += weight
        self.total += weight * value
        self.total_sq += weight * value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)


@dataclass(frozen=True)
class AggregateRow:
    """One emitted aggregate: a (window, group) cell.

    Attributes:
        window_start: Start of the tumbling window.
        window_s: Window length.
        group: Group-key values, aligned with the aggregator's keys.
        count: Total weight aggregated -- the record count when every
            record carries the default weight 1, the session count when
            cohort-weighted records are ingested.
        means: Per-metric means.
        mins: Per-metric minima.
        maxs: Per-metric maxima.
        variances: Per-metric population variances.
    """

    window_start: float
    window_s: float
    group: Tuple[str, ...]
    count: float
    means: Dict[str, float]
    mins: Dict[str, float]
    maxs: Dict[str, float]
    variances: Dict[str, float]

    def mean(self, metric: str, default: float = 0.0) -> float:
        return self.means.get(metric, default)


Sink = Callable[[AggregateRow], None]


class GroupByAggregator:
    """Tumbling-window group-by over session records.

    Args:
        window_s: Window length in (simulated) seconds.
        group_keys: Attribute names forming the group key.
        metrics: Metric names to aggregate; records missing a metric
            simply do not contribute to it.
        sink: Callback for each closed window's rows.

    Records are assumed *approximately* time-ordered (true for a
    simulation-driven pipeline); a record older than the current window
    is counted into the current window rather than reopening history,
    mirroring how streaming platforms handle stragglers with a
    zero-allowed-lateness policy.
    """

    def __init__(
        self,
        window_s: float,
        group_keys: Tuple[str, ...],
        metrics: Tuple[str, ...],
        sink: Optional[Sink] = None,
    ):
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s!r}")
        self.window_s = window_s
        self.group_keys = tuple(group_keys)
        self.metrics = tuple(metrics)
        self.sink = sink
        self._window_start: Optional[float] = None
        self._cells: Dict[Tuple[str, ...], Dict[str, _Running]] = {}
        self._counts: Dict[Tuple[str, ...], float] = {}
        self.rows_emitted = 0
        self.records_processed = 0
        self._pending_causes: List[int] = []
        self.last_flush_cause: Optional[int] = None

    @property
    def open_groups(self) -> int:
        """Cardinality of the currently open window (memory proxy)."""
        return len(self._cells)

    def note_cause(self, cause: int) -> None:
        """Record a beacon's causal span ID for flush provenance.

        Beacon producers (the AppP's ``a2i-report`` emission sites) call
        this right after ingesting the record, so the next ``agg-flush``
        trace event can list the beacons it absorbed as ``parents`` --
        the beacon→flush hop of the causal chain (DESIGN.md §13).
        Purely observational: never called when tracing is off.
        """
        self._pending_causes.append(cause)

    def add(self, record: SessionRecord, weight: float = 1.0) -> None:
        """Ingest one record, closing the window first if it has passed.

        ``weight`` is the number of sessions the record stands for: 1
        for an individual beacon (the default), the cohort head count
        for a cohort-level beacon whose metrics are already per-session
        means.  A weighted record moves every mean as ``weight``
        individual records at the same values would.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        self.records_processed += 1
        if self._window_start is None:
            self._window_start = self._align(record.time)
        elif record.time >= self._window_start + self.window_s:
            self.flush(up_to=record.time)
        group = tuple(record.attr(key) for key in self.group_keys)
        cell = self._cells.get(group)
        if cell is None:
            cell = {metric: _Running() for metric in self.metrics}
            self._cells[group] = cell
            self._counts[group] = 0.0
        self._counts[group] += weight
        for metric in self.metrics:
            if metric in record.metrics:
                cell[metric].add(record.metrics[metric], weight)

    def flush(self, up_to: Optional[float] = None) -> List[AggregateRow]:
        """Close the open window (and any empty gap up to ``up_to``).

        Returns the emitted rows (also delivered to the sink).
        """
        if self._window_start is None:
            return []
        rows = [
            AggregateRow(
                window_start=self._window_start,
                window_s=self.window_s,
                group=group,
                count=self._counts[group],
                means={m: cell[m].mean for m in self.metrics},
                mins={m: cell[m].minimum for m in self.metrics},
                maxs={m: cell[m].maximum for m in self.metrics},
                variances={m: cell[m].variance for m in self.metrics},
            )
            for group, cell in self._cells.items()
        ]
        window_start = self._window_start
        self._cells.clear()
        self._counts.clear()
        self.rows_emitted += len(rows)
        if TRACER.enabled and rows:
            cause = TRACER.new_cause()
            TRACER.emit(
                "agg-flush",
                cause=cause,
                parents=list(self._pending_causes),
                rows=len(rows),
                window_start=window_start,
                window_s=self.window_s,
            )
            self.last_flush_cause = cause
        self._pending_causes.clear()
        if up_to is not None:
            self._window_start = self._align(up_to)
        else:
            self._window_start = None
        if self.sink is not None:
            for row in rows:
                self.sink(row)
        return rows

    def _align(self, time: float) -> float:
        return math.floor(time / self.window_s) * self.window_s
