"""Periodic metric probes: time series out of a running simulation.

The paper's figures are scenario stories that unfold over time (the
flash crowd ramps, the oscillator ping-pongs).  A :class:`TimelineProbe`
samples named metric callables on a fixed period and yields the series
experiments print alongside their summary tables, so "the oscillation
is infinite" can be shown as a trajectory and not just a count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess

MetricFn = Callable[[], float]


@dataclass(frozen=True)
class TimelineSample:
    """One row of the sampled series."""

    time: float
    values: Mapping[str, float]

    def value(self, metric: str, default: float = 0.0) -> float:
        return self.values.get(metric, default)


class TimelineProbe:
    """Samples a set of metrics every ``period_s`` simulated seconds.

    Args:
        sim: Simulator.
        metrics: Name -> zero-argument callable returning the current
            value.  Callables that raise are recorded as ``nan`` so one
            failing metric cannot kill a run.
        period_s: Sampling period.
        start_at: First sample time (defaults to one period in).
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: Mapping[str, MetricFn],
        period_s: float = 10.0,
        start_at: Optional[float] = None,
    ):
        if not metrics:
            raise ValueError("need at least one metric")
        self.sim = sim
        self.metrics = dict(metrics)
        self.samples: List[TimelineSample] = []
        self._process = PeriodicProcess(
            sim, period_s, self._sample, start_at=start_at, name="timeline"
        )

    def stop(self) -> None:
        self._process.stop()

    def _sample(self) -> None:
        values: Dict[str, float] = {}
        for name, fn in self.metrics.items():
            try:
                values[name] = float(fn())
            except Exception:
                values[name] = float("nan")
        self.samples.append(TimelineSample(time=self.sim.now, values=values))

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def series(self, metric: str) -> List[float]:
        """The sampled values of one metric, in time order."""
        if metric not in self.metrics:
            raise KeyError(metric)
        return [sample.value(metric) for sample in self.samples]

    def times(self) -> List[float]:
        return [sample.time for sample in self.samples]

    def mean(self, metric: str) -> float:
        values = [v for v in self.series(metric) if v == v]  # drop NaN
        return sum(values) / len(values) if values else 0.0

    def changes(self, metric: str, tolerance: float = 1e-9) -> int:
        """How many times the metric's value changed between samples.

        The oscillation trajectory metric: a flapping egress selection
        (encoded numerically) changes every few samples; a converged one
        changes once or twice.
        """
        values = self.series(metric)
        return sum(
            1
            for previous, current in zip(values, values[1:])
            if abs(current - previous) > tolerance
        )

    def window_mean(self, metric: str, start: float, end: float) -> float:
        """Mean of a metric over samples with start <= time < end."""
        values = [
            sample.value(metric)
            for sample in self.samples
            if start <= sample.time < end and sample.value(metric) == sample.value(metric)
        ]
        return sum(values) / len(values) if values else 0.0

    def to_rows(self, stride: int = 1) -> List[Dict[str, float]]:
        """The series as table rows (one per ``stride`` samples)."""
        rows = []
        for index, sample in enumerate(self.samples):
            if index % stride:
                continue
            row: Dict[str, float] = {"time": sample.time}
            row.update(sample.values)
            rows.append(row)
        return rows
