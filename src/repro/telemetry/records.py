"""Measurement records: the unit of client-side instrumentation.

A record is a timestamp, a set of categorical *attributes* (client ISP,
CDN, server, city -- the dimensions A2I aggregates group by) and a set
of numeric *metrics* (buffering ratio, bitrate, PLT...).  Keeping both
as plain dicts keeps the pipeline generic across video and web.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.video.qoe import QoeMetrics
from repro.web.browser import PageLoadRecord


@dataclass(frozen=True)
class SessionRecord:
    """One beacon from a client.

    Attributes:
        time: Emission time (simulated seconds).
        attrs: Categorical dimensions, e.g. ``{"cdn": "cdnX", "isp": "isp1"}``.
        metrics: Numeric measurements, e.g. ``{"buffering_ratio": 0.02}``.
    """

    time: float
    attrs: Mapping[str, str] = field(default_factory=dict)
    metrics: Mapping[str, float] = field(default_factory=dict)

    def attr(self, key: str, default: str = "") -> str:
        return self.attrs.get(key, default)

    def metric(self, key: str, default: float = 0.0) -> float:
        return self.metrics.get(key, default)


def record_from_qoe(
    time: float,
    qoe: QoeMetrics,
    cdn: str,
    isp: str = "",
    server: str = "",
    extra_attrs: Mapping[str, str] = (),
) -> SessionRecord:
    """Build the A2I video beacon for a finished session."""
    attrs: Dict[str, str] = {"cdn": cdn, "isp": isp, "server": server, "app": "video"}
    attrs.update(dict(extra_attrs))
    return SessionRecord(
        time=time,
        attrs=attrs,
        metrics={
            "buffering_ratio": qoe.buffering_ratio,
            "rebuffer_time_s": qoe.rebuffer_time_s,
            "mean_bitrate_mbps": qoe.mean_bitrate_mbps,
            "join_time_s": qoe.join_time_s if qoe.join_time_s is not None else -1.0,
            "play_time_s": qoe.play_time_s,
            "abandoned": 1.0 if qoe.abandoned else 0.0,
        },
    )


def record_from_pageload(
    record: PageLoadRecord,
    isp: str = "",
    extra_attrs: Mapping[str, str] = (),
) -> SessionRecord:
    """Build the A2I web beacon for a finished page load."""
    attrs: Dict[str, str] = {
        "client": record.client_node,
        "isp": isp,
        "app": "web",
    }
    attrs.update(dict(extra_attrs))
    return SessionRecord(
        time=record.started_at + record.plt_s,
        attrs=attrs,
        metrics={
            "plt_s": record.plt_s,
            "main_doc_s": record.main_doc_s,
            "total_mbit": record.total_mbit,
            "mean_throughput_mbps": record.mean_throughput_mbps,
        },
    )
