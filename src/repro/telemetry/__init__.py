"""Client-side measurement collection and real-time analytics.

This is the "big data platform" leg of the paper's enabling trends: the
AppP's client instrumentation emits per-session records; a collector
fans them into windowed group-by aggregation; a small stream store
answers the queries the EONA-A2I interface serves.  The package also
contains the *inference* model -- the status-quo alternative in Figure 4
where an InfP predicts application QoE from network-level features
instead of receiving it.
"""

from repro.telemetry.records import SessionRecord, record_from_qoe, record_from_pageload
from repro.telemetry.collector import Collector
from repro.telemetry.aggregate import AggregateRow, GroupByAggregator
from repro.telemetry.streamdb import TimeSeriesStore
from repro.telemetry.inference import QoeInferenceModel, pageload_features
from repro.telemetry.timeline import TimelineProbe, TimelineSample

__all__ = [
    "AggregateRow",
    "Collector",
    "GroupByAggregator",
    "QoeInferenceModel",
    "SessionRecord",
    "TimeSeriesStore",
    "TimelineProbe",
    "TimelineSample",
    "pageload_features",
    "record_from_pageload",
    "record_from_qoe",
]
