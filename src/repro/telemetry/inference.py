"""Inferring application QoE from network-level features (Figure 4).

The status quo the paper criticises: a cellular InfP cannot see
page-load time, so it fits a model from passively observable features
(radio-state occupancy, handovers, flow byte counts, early-response
timing) to QoE, and uses predictions.  This module implements that
pipeline -- ridge-regularized linear least squares over standardized
features -- and the evaluation metrics the E3 experiment reports.

The experiment's point is *not* that the model is bad at fitting; it is
that even a reasonable model carries irreducible error that direct A2I
export does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.web.browser import PageLoadRecord

#: Feature names, in vector order, for interpretability in reports.
PAGELOAD_FEATURE_NAMES: Tuple[str, ...] = (
    "main_doc_s",
    "total_mbit",
    "object_count",
    "frac_good",
    "frac_fair",
    "frac_poor",
    "handovers",
    "radio_transitions",
)


def pageload_features(record: PageLoadRecord) -> List[float]:
    """The InfP-visible feature vector for one page load.

    Deliberately excludes ``plt_s`` and ``mean_throughput_mbps`` (which
    is derived from PLT): the InfP cannot observe application completion
    times, only transport- and radio-level signals.
    """
    return [
        record.main_doc_s,
        record.total_mbit,
        float(record.object_count),
        record.frac_good,
        record.frac_fair,
        record.frac_poor,
        float(record.handovers),
        float(record.radio_transitions),
    ]


@dataclass
class InferenceReport:
    """Accuracy of predictions against ground truth."""

    mae: float
    rmse: float
    spearman: float
    n: int


class QoeInferenceModel:
    """Ridge regression from network features to a QoE target.

    Args:
        ridge: L2 regularization strength (on standardized features).
    """

    def __init__(self, ridge: float = 1e-3):
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge!r}")
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> None:
        """Fit on a training set; raises on empty or mismatched input."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2 or len(x) == 0:
            raise ValueError("features must be a non-empty 2-D array")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} feature rows vs {len(y)} targets")
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std[self._std == 0] = 1.0
        z = (x - self._mean) / self._std
        z = np.hstack([z, np.ones((len(z), 1))])  # intercept column
        regularizer = self.ridge * np.eye(z.shape[1])
        regularizer[-1, -1] = 0.0  # do not penalize the intercept
        gram = z.T @ z + len(z) * regularizer
        self._weights = np.linalg.solve(gram, z.T @ y)

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        x = np.asarray(features, dtype=float)
        z = (x - self._mean) / self._std
        z = np.hstack([z, np.ones((len(z), 1))])
        return z @ self._weights

    def evaluate(
        self,
        features: Sequence[Sequence[float]],
        targets: Sequence[float],
    ) -> InferenceReport:
        """MAE, RMSE, and Spearman rank correlation on a held-out set."""
        predictions = self.predict(features)
        y = np.asarray(targets, dtype=float)
        errors = predictions - y
        return InferenceReport(
            mae=float(np.mean(np.abs(errors))),
            rmse=float(np.sqrt(np.mean(errors**2))),
            spearman=spearman_correlation(predictions, y),
            n=len(y),
        )


def spearman_correlation(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (average ranks for ties)."""
    x = _ranks(np.asarray(a, dtype=float))
    y = _ranks(np.asarray(b, dtype=float))
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(len(values), dtype=float)
    # Average ranks over ties so constant inputs rank identically.
    unique, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    if len(unique) != len(values):
        sums = np.zeros(len(unique))
        np.add.at(sums, inverse, ranks)
        ranks = sums[inverse] / counts[inverse]
    return ranks
