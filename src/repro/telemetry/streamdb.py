"""A small time-series store for aggregate rows.

The EONA-A2I looking glass answers queries from this store: "mean
buffering ratio for (cdn=X, isp=I) over the last N windows".  Retention
is bounded per group so a long simulation cannot grow without limit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.aggregate import AggregateRow


class TimeSeriesStore:
    """Append-only store of :class:`AggregateRow`, indexed by group.

    Args:
        retention_rows: Windows retained per group.
    """

    def __init__(self, retention_rows: int = 720):
        if retention_rows < 1:
            raise ValueError(f"retention must be >= 1, got {retention_rows!r}")
        self.retention_rows = retention_rows
        self._by_group: Dict[Tuple[str, ...], Deque[AggregateRow]] = {}
        self.rows_stored = 0

    def append(self, row: AggregateRow) -> None:
        series = self._by_group.get(row.group)
        if series is None:
            series = deque(maxlen=self.retention_rows)
            self._by_group[row.group] = series
        series.append(row)
        self.rows_stored += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def groups(self) -> List[Tuple[str, ...]]:
        return list(self._by_group.keys())

    def latest(self, group: Tuple[str, ...]) -> Optional[AggregateRow]:
        series = self._by_group.get(group)
        return series[-1] if series else None

    def series(
        self,
        group: Tuple[str, ...],
        since: Optional[float] = None,
    ) -> List[AggregateRow]:
        rows = list(self._by_group.get(group, ()))
        if since is not None:
            rows = [row for row in rows if row.window_start >= since]
        return rows

    def mean_over(
        self,
        group: Tuple[str, ...],
        metric: str,
        last_n: int = 1,
    ) -> Optional[float]:
        """Count-weighted mean of ``metric`` over the last ``last_n`` windows."""
        rows = self.series(group)[-last_n:]
        total_count = sum(row.count for row in rows)
        if total_count == 0:
            return None
        weighted = sum(row.mean(metric) * row.count for row in rows)
        return weighted / total_count

    def scan(
        self,
        where: Callable[[Tuple[str, ...]], bool],
    ) -> List[AggregateRow]:
        """Latest row of every group matching the predicate."""
        result = []
        for group, series in self._by_group.items():
            if where(group) and series:
                result.append(series[-1])
        return result
