"""The beacon collector: ingestion point of the AppP's telemetry plane."""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List

from repro.telemetry.records import SessionRecord

Subscriber = Callable[[SessionRecord], None]


class Collector:
    """Receives beacons and fans them out to subscribers.

    Keeps a bounded buffer of the most recent records for ad-hoc
    queries (the AppP's own dashboards); durable analytics subscribe.

    Args:
        retention: Number of recent records kept queryable.
    """

    def __init__(self, retention: int = 100_000):
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention!r}")
        self._recent: Deque[SessionRecord] = deque(maxlen=retention)
        self._subscribers: List[Subscriber] = []
        self.ingested = 0

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def ingest(self, record: SessionRecord) -> None:
        """Accept one beacon and fan it out."""
        self.ingested += 1
        self._recent.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def ingest_many(self, records: Iterable[SessionRecord]) -> None:
        for record in records:
            self.ingest(record)

    def recent(
        self,
        limit: int = 1000,
        where: Callable[[SessionRecord], bool] = lambda record: True,
    ) -> List[SessionRecord]:
        """Most recent matching records, newest last."""
        matched = [record for record in self._recent if where(record)]
        return matched[-limit:]
