"""Typed bundles: the migrated legacy scenarios, generated from specs.

Each of the seven hand-coded builders that used to live in
``workloads/scenarios.py`` is now a committed spec under
``scenarios/library/`` plus a thin adapter here that reshapes the
generic :class:`~repro.scenarios.engine.ScenarioWorld` into the typed
dataclass the experiments consume.  The same-seed trace-equivalence
tests in ``tests/scenarios`` pin each adapter's world byte-identical to
the builder it replaced.

:func:`build_scenario` is the single public constructor::

    scenario = build_scenario("flash-crowd", seed=3,
                              params={"n_clients": 50})

Unknown names fall back to returning the raw :class:`ScenarioWorld`,
which is how the fleet workloads (live-event, gaming, iot-beacons,
diurnal-regions) are consumed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.core.context import SimContext
from repro.core.registry import OptInRegistry
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import Topology
from repro.scenarios.engine import ScenarioWorld, compile_scenario
from repro.scenarios.loader import load_library_spec
from repro.sdn.te import EgressGroup
from repro.simkernel.kernel import Simulator
from repro.web.browser import Browser
from repro.web.radio import RadioModel

__all__ = [
    "FlashCrowdScenario",
    "OscillationScenario",
    "CoarseControlScenario",
    "EnergyScenario",
    "CdnFaultScenario",
    "TwoIspScenario",
    "CellularWebScenario",
    "build_scenario",
]


# ----------------------------------------------------------------------
# Figure 3: flash crowd behind a congested access network
# ----------------------------------------------------------------------
@dataclass
class FlashCrowdScenario:
    """World for E2: two healthy CDNs, one narrow access segment."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    client_nodes: List[str]
    access_link: str
    registry: OptInRegistry
    ctx: SimContext
    world: Optional[ScenarioWorld] = None


# ----------------------------------------------------------------------
# Figure 5: the CDN-switching / peering-selection oscillator
# ----------------------------------------------------------------------
@dataclass
class OscillationScenario:
    """World for E4: CDN X via peerings B or C; CDN Y via C only."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn_x: Cdn
    cdn_y: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    groups: List[EgressGroup]
    registry: OptInRegistry
    peering_b_link: str
    peering_c_link: str
    ctx: SimContext
    world: Optional[ScenarioWorld] = None

    @property
    def cdns(self) -> List[Cdn]:
        return [self.cdn_x, self.cdn_y]


# ----------------------------------------------------------------------
# §2 "coarse control": one bad server inside a warm CDN
# ----------------------------------------------------------------------
@dataclass
class CoarseControlScenario:
    """World for E1: warm CDN X with one degraded server, cold CDN Y."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn_x: Cdn
    cdn_y: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    registry: OptInRegistry
    ctx: SimContext
    world: Optional[ScenarioWorld] = None

    @property
    def cdns(self) -> List[Cdn]:
        return [self.cdn_x, self.cdn_y]


# ----------------------------------------------------------------------
# §2 "configuration changes": server energy saving
# ----------------------------------------------------------------------
@dataclass
class EnergyScenario:
    """World for E5: one CDN with several clusters, diurnal demand."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdn: Cdn
    catalog: ContentCatalog
    client_nodes: List[str]
    registry: OptInRegistry
    server_uplinks: Dict[str, str]
    ctx: SimContext
    world: Optional[ScenarioWorld] = None


# ----------------------------------------------------------------------
# Control-plane scenario: a CDN degrades mid-run (C3-style steering)
# ----------------------------------------------------------------------
@dataclass
class CdnFaultScenario:
    """World for E13: two CDNs, one suffers a mid-run capacity fault.

    The fault itself is declared in the spec (``faults:`` section) and
    armed through the PR 5 :class:`~repro.faults.injector.FaultInjector`
    at build time -- the old imperative ``schedule_fault`` path is gone.
    Build with ``install_faults=False`` for the never-faulted twin.
    """

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    client_nodes: List[str]
    cdn1_uplink: str
    registry: OptInRegistry
    fault_at_s: float
    recover_at_s: float
    ctx: SimContext
    world: Optional[ScenarioWorld] = None


# ----------------------------------------------------------------------
# §3 attributes: one AppP serving clients across two access ISPs
# ----------------------------------------------------------------------
@dataclass
class TwoIspScenario:
    """World for E12: identical CDNs, two ISPs, one congested."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    cdns: List[Cdn]
    catalog: ContentCatalog
    clients_isp1: List[str]
    clients_isp2: List[str]
    access_link_isp1: str
    access_link_isp2: str
    registry: OptInRegistry
    ctx: SimContext
    world: Optional[ScenarioWorld] = None

    def isp_of_client(self, client_node: str) -> str:
        return "isp1" if client_node in set(self.clients_isp1) else "isp2"


# ----------------------------------------------------------------------
# Figure 4: web browsing over a cellular access network
# ----------------------------------------------------------------------
@dataclass
class CellularWebScenario:
    """World for E3: per-client radio-modulated access links."""

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    client_nodes: List[str]
    access_links: List[str]
    radios: List[RadioModel]
    browsers: List[Browser]
    server_node: str
    rng: random.Random
    ctx: SimContext
    world: Optional[ScenarioWorld] = None


# ----------------------------------------------------------------------
# adapters: ScenarioWorld -> typed bundle
# ----------------------------------------------------------------------

def _flash_crowd(world: ScenarioWorld) -> FlashCrowdScenario:
    return FlashCrowdScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdns=world.cdn_list,
        catalog=world.catalog,
        client_nodes=world.group_nodes("clients"),
        access_link=world.link_id("access"),
        registry=world.ctx.registry,
        ctx=world.ctx,
        world=world,
    )


def _oscillation(world: ScenarioWorld) -> OscillationScenario:
    return OscillationScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdn_x=world.cdns["cdnX"],
        cdn_y=world.cdns["cdnY"],
        catalog=world.catalog,
        client_nodes=world.group_nodes("clients"),
        groups=list(world.egress),
        registry=world.ctx.registry,
        peering_b_link=world.link_id("peering_b"),
        peering_c_link=world.link_id("peering_c"),
        ctx=world.ctx,
        world=world,
    )


def _coarse_control(world: ScenarioWorld) -> CoarseControlScenario:
    return CoarseControlScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdn_x=world.cdns["cdnX"],
        cdn_y=world.cdns["cdnY"],
        catalog=world.catalog,
        client_nodes=world.group_nodes("clients"),
        registry=world.ctx.registry,
        ctx=world.ctx,
        world=world,
    )


def _energy(world: ScenarioWorld) -> EnergyScenario:
    cdn = world.cdns["cdn"]
    uplinks = {
        f"cdn.{node}": link
        for node, link in zip(world.group_nodes("edges"), world.group_links("edges"))
    }
    return EnergyScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdn=cdn,
        catalog=world.catalog,
        client_nodes=world.group_nodes("clients"),
        registry=world.ctx.registry,
        server_uplinks=uplinks,
        ctx=world.ctx,
        world=world,
    )


def _cdn_fault(world: ScenarioWorld) -> CdnFaultScenario:
    return CdnFaultScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdns=world.cdn_list,
        catalog=world.catalog,
        client_nodes=world.group_nodes("clients"),
        cdn1_uplink=world.link_id("uplink1"),
        registry=world.ctx.registry,
        fault_at_s=world.params["fault_at_s"],
        recover_at_s=world.params["recover_at_s"],
        ctx=world.ctx,
        world=world,
    )


def _two_isp(world: ScenarioWorld) -> TwoIspScenario:
    return TwoIspScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        cdns=world.cdn_list,
        catalog=world.catalog,
        clients_isp1=world.group_nodes("isp1-clients"),
        clients_isp2=world.group_nodes("isp2-clients"),
        access_link_isp1=world.link_id("isp1-access"),
        access_link_isp2=world.link_id("isp2-access"),
        registry=world.ctx.registry,
        ctx=world.ctx,
        world=world,
    )


def _cellular_web(world: ScenarioWorld) -> CellularWebScenario:
    return CellularWebScenario(
        sim=world.sim,
        topology=world.topology,
        network=world.network,
        client_nodes=world.group_nodes("ues"),
        access_links=world.group_links("ues"),
        radios=list(world.radios),
        browsers=list(world.browsers),
        server_node=world.web_server or "web",
        rng=world.sim.rng.get("pages"),
        ctx=world.ctx,
        world=world,
    )


_ADAPTERS: Dict[str, Callable[[ScenarioWorld], Any]] = {
    "flash-crowd": _flash_crowd,
    "oscillation": _oscillation,
    "coarse-control": _coarse_control,
    "energy": _energy,
    "cdn-fault": _cdn_fault,
    "two-isp": _two_isp,
    "cellular-web": _cellular_web,
}


def build_scenario(
    name: str,
    seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    install_faults: bool = True,
    with_phases: bool = True,
) -> Any:
    """Build a library scenario: load, compile, adapt.

    Returns the scenario's typed bundle when one exists (the seven
    migrated worlds), otherwise the generic :class:`ScenarioWorld`.
    """
    spec = load_library_spec(name)
    world = compile_scenario(
        spec,
        seed=seed,
        params=params,
        install_faults=install_faults,
        with_phases=with_phases,
    )
    adapter = _ADAPTERS.get(name)
    return adapter(world) if adapter is not None else world
