"""Loading scenario specs from YAML files, dicts, and the library.

The committed scenario library lives next to this module under
``library/*.yaml`` -- one file per scenario, ``<name>.yaml`` matching
the spec's ``name`` field.  ``eona scenarios list|show|validate`` and
:func:`repro.scenarios.bundles.build_scenario` both resolve through
:func:`load_library_spec`, so the library is the single source of truth
for every world the experiments run on.

PyYAML is an optional dependency of this module alone: dict-shaped
specs (:func:`load_spec`) work without it, and the import error only
surfaces when a ``.yaml`` file is actually opened.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from repro.scenarios.schema import ScenarioError, ScenarioSpec

try:  # pragma: no cover - exercised only where PyYAML is missing
    import yaml
except ImportError:  # pragma: no cover
    yaml = None  # type: ignore[assignment]

__all__ = [
    "library_dir",
    "library_names",
    "load_spec",
    "load_file",
    "load_library_spec",
    "validate_spec",
    "dump_spec",
    "load_round_trip",
]


def library_dir() -> Path:
    """The committed scenario library (``src/repro/scenarios/library``)."""
    return Path(__file__).resolve().parent / "library"


def library_names() -> List[str]:
    """Names of every committed library spec, sorted."""
    return sorted(path.stem for path in library_dir().glob("*.yaml"))


def load_spec(data: Union[Mapping[str, Any], ScenarioSpec]) -> ScenarioSpec:
    """Parse and referentially validate a dict-shaped spec."""
    if isinstance(data, ScenarioSpec):
        spec = data
    else:
        spec = ScenarioSpec.from_dict(data)
    spec.validate()
    return spec


def load_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load one spec from a YAML file."""
    if yaml is None:  # pragma: no cover - PyYAML ships in the toolchain
        raise ScenarioError(
            "PyYAML is required to load .yaml scenario files;"
            " use load_spec() with a dict instead"
        )
    path = Path(path)
    try:
        raw = yaml.safe_load(path.read_text())
    except yaml.YAMLError as error:
        raise ScenarioError(f"{path}: invalid YAML: {error}") from None
    if raw is None:
        raise ScenarioError(f"{path}: empty scenario file")
    try:
        return load_spec(raw)
    except ScenarioError as error:
        raise ScenarioError(f"{path}: {error}") from None


def load_library_spec(name: str) -> ScenarioSpec:
    """Load a committed library spec by name."""
    path = library_dir() / f"{name}.yaml"
    if not path.exists():
        known = ", ".join(library_names()) or "none"
        raise ScenarioError(f"unknown scenario {name!r} (library: {known})")
    spec = load_file(path)
    if spec.name != name:
        raise ScenarioError(
            f"{path}: spec name {spec.name!r} does not match file name {name!r}"
        )
    return spec


def validate_spec(spec: ScenarioSpec, strict_named_plans: bool = False) -> List[str]:
    """Validate one spec; returns problem strings instead of raising.

    With ``strict_named_plans``, ``use:`` fault references must resolve
    in the named-plan registry (callers load the experiment registry
    first -- that is what registers the plans); the CLI's ``validate``
    runs in this mode.
    """
    problems: List[str] = []
    try:
        spec.validate()
    except ScenarioError as error:
        problems.append(str(error))
        return problems
    if strict_named_plans:
        from repro.faults.plan import get_plan

        for index, fault in enumerate(spec.faults):
            if not fault.use:
                continue
            try:
                get_plan(fault.use)
            except KeyError as error:
                problems.append(f"scenario.faults[{index}]: {error.args[0]}")
    return problems


def dump_spec(spec: ScenarioSpec) -> str:
    """Serialize a spec back to YAML (the ``eona scenarios show`` view)."""
    if yaml is None:  # pragma: no cover
        raise ScenarioError("PyYAML is required to dump scenario specs")
    return yaml.safe_dump(spec.to_dict(), sort_keys=False, default_flow_style=False)


def load_round_trip(spec: ScenarioSpec) -> ScenarioSpec:
    """load -> dump -> load; the identity the schema tests pin."""
    if yaml is None:  # pragma: no cover
        return load_spec(spec.to_dict())
    return load_spec(yaml.safe_load(dump_spec(spec)))
