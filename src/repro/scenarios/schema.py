"""Scenario schema: validated, declarative world descriptions (DESIGN.md §12).

A scenario spec is pure data -- ordered topology build directives, CDN
placement, session populations with arrival processes, phase timelines,
and fault plans -- validated structurally at parse time (unknown keys
are errors, with the offending path in the message) and referentially
by :meth:`ScenarioSpec.validate` (dangling node/link/group references,
overlapping phases, malformed fault events).  The engine
(:mod:`repro.scenarios.engine`) compiles a spec into a live world; this
module never touches the simulator, so specs can be validated anywhere
(CLI, CI) without building anything.

Parameterisation: a spec declares named defaults under ``params`` and
any numeric field may reference one as ``"$name"``; resolution happens
at validate/compile time, so one committed spec serves a whole family
of worlds (``build_scenario("flash-crowd", params={"n_clients": 50})``).

Determinism contract: the ``build`` list is *ordered* and the engine
replays it verbatim -- node and link insertion order pins RNG stream
identities and event tie-breaking, which is what lets a declarative
twin reproduce a hand-coded world byte-for-byte (the PR's equivalence
gate).  Auto link ids follow the topology convention ``"src->dst"``,
so fault targets and egress links resolve statically, without a world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.network.topology import NodeKind

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "TopologySpec",
    "NodeDirective",
    "LinkDirective",
    "GroupDirective",
    "CatalogSpec",
    "ServerSpec",
    "CdnSpec",
    "EgressSpec",
    "WebSpec",
    "PopulationSpec",
    "PhaseSpec",
    "FaultEventSpec",
    "FaultPlanSpec",
    "TopologyPlan",
]

#: Fault kinds a spec may declare inline.  Only link faults resolve
#: statically (link ids are derivable from the topology section); glass
#: and provider faults need live objects, so they arrive via ``use:``
#: references into the named-plan registry (PR 5).
INLINE_FAULT_KINDS: Tuple[str, ...] = ("link-cut", "link-kill", "link-restore")

#: Arrival processes a population may declare, with (required, optional)
#: rate keys.  Mirrors repro.workloads.arrivals.
PROCESS_KINDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "poisson": (("rate_per_s",), ()),
    "flash-crowd": (
        ("base_per_s", "peak_per_s", "onset_s", "ramp_s", "duration_s"),
        (),
    ),
    "diurnal": (("mean_per_s",), ("amplitude", "period_s", "peak_at_s")),
}

#: ``sessions`` drives individual sessions through an arrival process;
#: ``cohort`` declares per-device rates for the vectorized cohort path
#: (BatchedPoissonArrivals / CohortEngine, DESIGN.md §11).
POPULATION_MODES: Tuple[str, ...] = ("sessions", "cohort")

_NODE_KINDS: Dict[str, NodeKind] = {kind.value: kind for kind in NodeKind}

_LINK_DIRECTIONS: Tuple[str, ...] = ("to-member", "from-member")


class ScenarioError(ValueError):
    """A malformed scenario spec; the message carries the spec path."""


# ---------------------------------------------------------------------------
# parse helpers (structural validation)
# ---------------------------------------------------------------------------

def _mapping(value: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(f"{where}: expected a mapping, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise ScenarioError(f"{where}: keys must be strings, got {key!r}")
    return value


def _take(
    value: Any,
    where: str,
    required: Sequence[str] = (),
    optional: Sequence[str] = (),
) -> Dict[str, Any]:
    """Destructure a mapping, rejecting unknown and missing keys."""
    data = _mapping(value, where)
    known = set(required) | set(optional)
    unknown = sorted(set(data) - known)
    if unknown:
        raise ScenarioError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}"
            f" (known: {', '.join(sorted(known))})"
        )
    missing = sorted(set(required) - set(data))
    if missing:
        raise ScenarioError(f"{where}: missing required key(s) {', '.join(missing)}")
    return dict(data)


def _string(value: Any, where: str) -> str:
    if not isinstance(value, str) or not value:
        raise ScenarioError(f"{where}: expected a non-empty string, got {value!r}")
    return value


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _number_or_ref(value: Any, where: str) -> Any:
    """A numeric literal (kept as parsed: int stays int) or a ``$param``."""
    if _is_number(value):
        return value
    if isinstance(value, str) and value.startswith("$") and len(value) > 1:
        return value
    raise ScenarioError(
        f"{where}: expected a number or a '$param' reference, got {value!r}"
    )


def _tags(value: Any, where: str) -> Tuple[str, ...]:
    if value is None:
        return ()
    if not isinstance(value, (list, tuple)):
        raise ScenarioError(f"{where}: expected a list of strings, got {value!r}")
    return tuple(_string(item, where) for item in value)


def _resolve(value: Any, params: Mapping[str, Any], where: str) -> Any:
    """Substitute a ``$param`` reference; literals pass through."""
    if isinstance(value, str) and value.startswith("$"):
        name = value[1:]
        if name not in params:
            raise ScenarioError(
                f"{where}: unknown parameter {value!r}"
                f" (declared: {', '.join(sorted(params)) or 'none'})"
            )
        return params[name]
    return value


def _resolve_number(
    value: Any,
    params: Mapping[str, Any],
    where: str,
    minimum: Optional[float] = None,
    positive: bool = False,
) -> Any:
    resolved = _resolve(value, params, where)
    if not _is_number(resolved):
        raise ScenarioError(f"{where}: expected a number, got {resolved!r}")
    if positive and resolved <= 0:
        raise ScenarioError(f"{where}: must be > 0, got {resolved!r}")
    if minimum is not None and resolved < minimum:
        raise ScenarioError(f"{where}: must be >= {minimum}, got {resolved!r}")
    return resolved


def _resolve_int(value: Any, params: Mapping[str, Any], where: str, minimum: int = 0) -> int:
    resolved = _resolve(value, params, where)
    if not isinstance(resolved, int) or isinstance(resolved, bool):
        raise ScenarioError(f"{where}: expected an integer, got {resolved!r}")
    if resolved < minimum:
        raise ScenarioError(f"{where}: must be >= {minimum}, got {resolved!r}")
    return resolved


# ---------------------------------------------------------------------------
# topology directives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodeDirective:
    """``{node: {id, kind, owner, tags}}`` -- one topology node."""

    node_id: str
    kind: str = "router"
    owner: str = ""
    tags: Tuple[str, ...] = ()

    @staticmethod
    def from_dict(data: Any, where: str) -> "NodeDirective":
        fields_ = _take(data, where, required=("id",), optional=("kind", "owner", "tags"))
        kind = fields_.get("kind", "router")
        if kind not in _NODE_KINDS:
            raise ScenarioError(
                f"{where}: unknown node kind {kind!r}"
                f" (known: {', '.join(sorted(_NODE_KINDS))})"
            )
        return NodeDirective(
            node_id=_string(fields_["id"], f"{where}.id"),
            kind=kind,
            owner=str(fields_.get("owner", "")),
            tags=_tags(fields_.get("tags"), f"{where}.tags"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.node_id,
            "kind": self.kind,
            "owner": self.owner,
            "tags": list(self.tags),
        }


@dataclass(frozen=True)
class LinkDirective:
    """``{link: {src, dst, capacity_mbps, ...}}`` -- one directed link.

    ``alias`` names the link for the rest of the spec (fault targets,
    egress links, bundle fields); the canonical id stays the topology
    convention ``"src->dst"``.
    """

    src: str
    dst: str
    capacity_mbps: Any
    delay_ms: Any = 1.0
    owner: str = ""
    tags: Tuple[str, ...] = ()
    alias: str = ""

    @staticmethod
    def from_dict(data: Any, where: str) -> "LinkDirective":
        fields_ = _take(
            data,
            where,
            required=("src", "dst", "capacity_mbps"),
            optional=("delay_ms", "owner", "tags", "alias"),
        )
        return LinkDirective(
            src=_string(fields_["src"], f"{where}.src"),
            dst=_string(fields_["dst"], f"{where}.dst"),
            capacity_mbps=_number_or_ref(fields_["capacity_mbps"], f"{where}.capacity_mbps"),
            delay_ms=_number_or_ref(fields_.get("delay_ms", 1.0), f"{where}.delay_ms"),
            owner=str(fields_.get("owner", "")),
            tags=_tags(fields_.get("tags"), f"{where}.tags"),
            alias=str(fields_.get("alias", "")),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "capacity_mbps": self.capacity_mbps,
            "delay_ms": self.delay_ms,
            "owner": self.owner,
            "tags": list(self.tags),
            "alias": self.alias,
        }


@dataclass(frozen=True)
class GroupDirective:
    """``{group: {...}}`` -- a homogeneous population of attached nodes.

    Expands, *in order*, to ``count`` interleaved (node, link) pairs:
    member ``i`` is named ``f"{prefix}{i}"`` and linked to ``attach``
    (``direction: to-member`` gives attach->member, the client shape;
    ``from-member`` gives member->attach, the server-uplink shape).
    """

    name: str
    prefix: str
    count: Any
    attach: str
    capacity_mbps: Any
    delay_ms: Any = 5.0
    kind: str = "client"
    owner: str = ""
    link_owner: str = ""
    tags: Tuple[str, ...] = ()
    direction: str = "to-member"

    @staticmethod
    def from_dict(data: Any, where: str) -> "GroupDirective":
        fields_ = _take(
            data,
            where,
            required=("name", "prefix", "count", "attach", "capacity_mbps"),
            optional=("delay_ms", "kind", "owner", "link_owner", "tags", "direction"),
        )
        kind = fields_.get("kind", "client")
        if kind not in _NODE_KINDS:
            raise ScenarioError(
                f"{where}: unknown node kind {kind!r}"
                f" (known: {', '.join(sorted(_NODE_KINDS))})"
            )
        direction = fields_.get("direction", "to-member")
        if direction not in _LINK_DIRECTIONS:
            raise ScenarioError(
                f"{where}: direction must be one of {_LINK_DIRECTIONS}, got {direction!r}"
            )
        return GroupDirective(
            name=_string(fields_["name"], f"{where}.name"),
            prefix=_string(fields_["prefix"], f"{where}.prefix"),
            count=_number_or_ref(fields_["count"], f"{where}.count"),
            attach=_string(fields_["attach"], f"{where}.attach"),
            capacity_mbps=_number_or_ref(fields_["capacity_mbps"], f"{where}.capacity_mbps"),
            delay_ms=_number_or_ref(fields_.get("delay_ms", 5.0), f"{where}.delay_ms"),
            kind=kind,
            owner=str(fields_.get("owner", "")),
            link_owner=str(fields_.get("link_owner", "")),
            tags=_tags(fields_.get("tags"), f"{where}.tags"),
            direction=direction,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "prefix": self.prefix,
            "count": self.count,
            "attach": self.attach,
            "capacity_mbps": self.capacity_mbps,
            "delay_ms": self.delay_ms,
            "kind": self.kind,
            "owner": self.owner,
            "link_owner": self.link_owner,
            "tags": list(self.tags),
            "direction": self.direction,
        }


_DIRECTIVE_TYPES = {
    "node": NodeDirective,
    "link": LinkDirective,
    "group": GroupDirective,
}


@dataclass(frozen=True)
class TopologySpec:
    """The ordered build list; order is part of the determinism contract."""

    build: Tuple[Any, ...]
    name: str = ""

    @staticmethod
    def from_dict(data: Any, where: str) -> "TopologySpec":
        fields_ = _take(data, where, required=("build",), optional=("name",))
        raw = fields_["build"]
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ScenarioError(f"{where}.build: expected a non-empty list of directives")
        directives = []
        for index, entry in enumerate(raw):
            entry_where = f"{where}.build[{index}]"
            entry_map = _mapping(entry, entry_where)
            if len(entry_map) != 1:
                raise ScenarioError(
                    f"{entry_where}: expected exactly one of"
                    f" {', '.join(sorted(_DIRECTIVE_TYPES))}, got {sorted(entry_map)}"
                )
            (tag, body), = entry_map.items()
            if tag not in _DIRECTIVE_TYPES:
                raise ScenarioError(
                    f"{entry_where}: unknown directive {tag!r}"
                    f" (known: {', '.join(sorted(_DIRECTIVE_TYPES))})"
                )
            directives.append(_DIRECTIVE_TYPES[tag].from_dict(body, f"{entry_where}.{tag}"))
        return TopologySpec(build=tuple(directives), name=str(fields_.get("name", "")))

    def to_dict(self) -> Dict[str, Any]:
        build = []
        for directive in self.build:
            if isinstance(directive, NodeDirective):
                build.append({"node": directive.to_dict()})
            elif isinstance(directive, LinkDirective):
                build.append({"link": directive.to_dict()})
            else:
                build.append({"group": directive.to_dict()})
        return {"name": self.name, "build": build}


# ---------------------------------------------------------------------------
# content, CDNs, egress, web
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CatalogSpec:
    """Mirrors :class:`repro.cdn.content.ContentCatalog`'s knobs."""

    items: Any
    duration_s: Any = 120.0
    zipf_alpha: Any = 1.0

    @staticmethod
    def from_dict(data: Any, where: str) -> "CatalogSpec":
        fields_ = _take(data, where, required=("items",), optional=("duration_s", "zipf_alpha"))
        return CatalogSpec(
            items=_number_or_ref(fields_["items"], f"{where}.items"),
            duration_s=_number_or_ref(fields_.get("duration_s", 120.0), f"{where}.duration_s"),
            zipf_alpha=_number_or_ref(fields_.get("zipf_alpha", 1.0), f"{where}.zipf_alpha"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "items": self.items,
            "duration_s": self.duration_s,
            "zipf_alpha": self.zipf_alpha,
        }


@dataclass(frozen=True)
class ServerSpec:
    """One CDN server -- explicit (``id`` + ``node``) or expanded over a
    topology group (``group`` + ``id_format``, ``{node}``/``{index}``
    placeholders)."""

    server_id: str = ""
    node: str = ""
    group: str = ""
    id_format: str = ""
    capacity_sessions: Any = 10_000
    cache_mbit: Any = 10_000.0
    degraded_rate_mbps: Any = None

    @staticmethod
    def from_dict(data: Any, where: str) -> "ServerSpec":
        fields_ = _take(
            data,
            where,
            optional=(
                "id", "node", "group", "id_format",
                "capacity_sessions", "cache_mbit", "degraded_rate_mbps",
            ),
        )
        explicit = "id" in fields_ or "node" in fields_
        grouped = "group" in fields_ or "id_format" in fields_
        if explicit == grouped:
            raise ScenarioError(
                f"{where}: declare either id+node or group+id_format, not both/neither"
            )
        degraded = fields_.get("degraded_rate_mbps")
        return ServerSpec(
            server_id=_string(fields_["id"], f"{where}.id") if explicit else "",
            node=_string(fields_["node"], f"{where}.node") if explicit else "",
            group=_string(fields_["group"], f"{where}.group") if grouped else "",
            id_format=(
                _string(fields_["id_format"], f"{where}.id_format") if grouped else ""
            ),
            capacity_sessions=_number_or_ref(
                fields_.get("capacity_sessions", 10_000), f"{where}.capacity_sessions"
            ),
            cache_mbit=_number_or_ref(fields_.get("cache_mbit", 10_000.0), f"{where}.cache_mbit"),
            degraded_rate_mbps=(
                None if degraded is None
                else _number_or_ref(degraded, f"{where}.degraded_rate_mbps")
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "capacity_sessions": self.capacity_sessions,
            "cache_mbit": self.cache_mbit,
        }
        if self.group:
            data["group"] = self.group
            data["id_format"] = self.id_format
        else:
            data["id"] = self.server_id
            data["node"] = self.node
        if self.degraded_rate_mbps is not None:
            data["degraded_rate_mbps"] = self.degraded_rate_mbps
        return data


@dataclass(frozen=True)
class CdnSpec:
    name: str
    servers: Tuple[ServerSpec, ...]
    origin: str = ""
    warm_top_fraction: Any = None

    @staticmethod
    def from_dict(data: Any, where: str) -> "CdnSpec":
        fields_ = _take(
            data, where,
            required=("name", "servers"),
            optional=("origin", "warm_top_fraction"),
        )
        raw_servers = fields_["servers"]
        if not isinstance(raw_servers, (list, tuple)) or not raw_servers:
            raise ScenarioError(f"{where}.servers: expected a non-empty list")
        warm = fields_.get("warm_top_fraction")
        return CdnSpec(
            name=_string(fields_["name"], f"{where}.name"),
            servers=tuple(
                ServerSpec.from_dict(entry, f"{where}.servers[{index}]")
                for index, entry in enumerate(raw_servers)
            ),
            origin=str(fields_.get("origin", "")),
            warm_top_fraction=(
                None if warm is None else _number_or_ref(warm, f"{where}.warm_top_fraction")
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "servers": [server.to_dict() for server in self.servers],
        }
        if self.origin:
            data["origin"] = self.origin
        if self.warm_top_fraction is not None:
            data["warm_top_fraction"] = self.warm_top_fraction
        return data


@dataclass(frozen=True)
class EgressSpec:
    """Mirrors :class:`repro.sdn.te.EgressGroup`; links hold link *refs*
    (alias or canonical id), resolved against the topology plan."""

    name: str
    remote: str
    candidates: Tuple[str, ...]
    links: Mapping[str, str] = field(default_factory=dict)
    preferred: str = ""

    @staticmethod
    def from_dict(data: Any, where: str) -> "EgressSpec":
        fields_ = _take(
            data, where,
            required=("name", "remote", "candidates", "links"),
            optional=("preferred",),
        )
        candidates = fields_["candidates"]
        if not isinstance(candidates, (list, tuple)) or not candidates:
            raise ScenarioError(f"{where}.candidates: expected a non-empty list")
        links = _mapping(fields_["links"], f"{where}.links")
        return EgressSpec(
            name=_string(fields_["name"], f"{where}.name"),
            remote=_string(fields_["remote"], f"{where}.remote"),
            candidates=tuple(
                _string(c, f"{where}.candidates[{i}]") for i, c in enumerate(candidates)
            ),
            links={k: _string(v, f"{where}.links[{k}]") for k, v in links.items()},
            preferred=str(fields_.get("preferred", "")),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "remote": self.remote,
            "candidates": list(self.candidates),
            "links": dict(self.links),
        }
        if self.preferred:
            data["preferred"] = self.preferred
        return data


@dataclass(frozen=True)
class WebSpec:
    """A web-browsing workload: one server, a client group, and (for
    cellular worlds) per-client radio processes on the access links."""

    server_node: str
    clients: str
    radio_tick_s: Any = None
    radio_stream: str = "radio"

    @staticmethod
    def from_dict(data: Any, where: str) -> "WebSpec":
        fields_ = _take(
            data, where,
            required=("server_node", "clients"),
            optional=("radio_tick_s", "radio_stream"),
        )
        tick = fields_.get("radio_tick_s")
        return WebSpec(
            server_node=_string(fields_["server_node"], f"{where}.server_node"),
            clients=_string(fields_["clients"], f"{where}.clients"),
            radio_tick_s=None if tick is None else _number_or_ref(tick, f"{where}.radio_tick_s"),
            radio_stream=str(fields_.get("radio_stream", "radio")),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "server_node": self.server_node,
            "clients": self.clients,
            "radio_stream": self.radio_stream,
        }
        if self.radio_tick_s is not None:
            data["radio_tick_s"] = self.radio_tick_s
        return data


# ---------------------------------------------------------------------------
# populations, phases, faults
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PopulationSpec:
    """A session population over one topology group.

    ``rate`` keys depend on ``process`` (see :data:`PROCESS_KINDS`);
    cohort-mode populations declare ``rate_per_device_s`` instead and
    feed the vectorized path.
    """

    name: str
    group: str
    process: str
    mode: str = "sessions"
    rate: Mapping[str, Any] = field(default_factory=dict)
    until_s: Any = None
    max_sessions: Any = None

    @staticmethod
    def from_dict(data: Any, where: str) -> "PopulationSpec":
        fields_ = _take(
            data, where,
            required=("name", "group", "process", "rate"),
            optional=("mode", "until_s", "max_sessions"),
        )
        process = _string(fields_["process"], f"{where}.process")
        if process not in PROCESS_KINDS:
            raise ScenarioError(
                f"{where}.process: unknown process {process!r}"
                f" (known: {', '.join(sorted(PROCESS_KINDS))})"
            )
        mode = fields_.get("mode", "sessions")
        if mode not in POPULATION_MODES:
            raise ScenarioError(
                f"{where}.mode: must be one of {POPULATION_MODES}, got {mode!r}"
            )
        rate = _mapping(fields_["rate"], f"{where}.rate")
        if mode == "cohort":
            allowed: Tuple[str, ...] = ("rate_per_device_s",)
            required_keys: Tuple[str, ...] = ("rate_per_device_s",)
            if process != "poisson":
                raise ScenarioError(
                    f"{where}: cohort mode supports only the poisson process"
                )
        else:
            required_keys, optional_keys = PROCESS_KINDS[process]
            allowed = required_keys + optional_keys
        unknown = sorted(set(rate) - set(allowed))
        if unknown:
            raise ScenarioError(
                f"{where}.rate: unknown key(s) {', '.join(map(repr, unknown))}"
                f" for process {process!r} (known: {', '.join(allowed)})"
            )
        missing = sorted(set(required_keys) - set(rate))
        if missing:
            raise ScenarioError(
                f"{where}.rate: missing required key(s) {', '.join(missing)}"
                f" for process {process!r}"
            )
        until = fields_.get("until_s")
        max_sessions = fields_.get("max_sessions")
        return PopulationSpec(
            name=_string(fields_["name"], f"{where}.name"),
            group=_string(fields_["group"], f"{where}.group"),
            process=process,
            mode=mode,
            rate={
                key: _number_or_ref(value, f"{where}.rate.{key}")
                for key, value in rate.items()
            },
            until_s=None if until is None else _number_or_ref(until, f"{where}.until_s"),
            max_sessions=(
                None if max_sessions is None
                else _number_or_ref(max_sessions, f"{where}.max_sessions")
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "group": self.group,
            "process": self.process,
            "mode": self.mode,
            "rate": dict(self.rate),
        }
        if self.until_s is not None:
            data["until_s"] = self.until_s
        if self.max_sessions is not None:
            data["max_sessions"] = self.max_sessions
        return data


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of the scenario's arc; compiled to a ``phase-transition``
    trace event at ``at_s`` (when tracing is on)."""

    name: str
    at_s: Any
    end_s: Any = None

    @staticmethod
    def from_dict(data: Any, where: str) -> "PhaseSpec":
        fields_ = _take(data, where, required=("name", "at_s"), optional=("end_s",))
        end = fields_.get("end_s")
        return PhaseSpec(
            name=_string(fields_["name"], f"{where}.name"),
            at_s=_number_or_ref(fields_["at_s"], f"{where}.at_s"),
            end_s=None if end is None else _number_or_ref(end, f"{where}.end_s"),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name, "at_s": self.at_s}
        if self.end_s is not None:
            data["end_s"] = self.end_s
        return data


@dataclass(frozen=True)
class FaultEventSpec:
    """One inline fault event; ``link`` is a link ref (alias or id)."""

    at_s: Any
    kind: str
    link: str
    capacity_mbps: Any = None
    factor: Any = None

    @staticmethod
    def from_dict(data: Any, where: str) -> "FaultEventSpec":
        fields_ = _take(
            data, where,
            required=("at_s", "kind", "link"),
            optional=("capacity_mbps", "factor"),
        )
        kind = _string(fields_["kind"], f"{where}.kind")
        if kind not in INLINE_FAULT_KINDS:
            raise ScenarioError(
                f"{where}.kind: unknown inline fault kind {kind!r}"
                f" (known: {', '.join(INLINE_FAULT_KINDS)};"
                f" glass/provider faults come via a named plan 'use:')"
            )
        capacity = fields_.get("capacity_mbps")
        factor = fields_.get("factor")
        if kind == "link-cut" and capacity is None and factor is None:
            raise ScenarioError(f"{where}: link-cut needs capacity_mbps or factor")
        if kind != "link-cut" and (capacity is not None or factor is not None):
            raise ScenarioError(f"{where}: {kind} takes no capacity_mbps/factor")
        return FaultEventSpec(
            at_s=_number_or_ref(fields_["at_s"], f"{where}.at_s"),
            kind=kind,
            link=_string(fields_["link"], f"{where}.link"),
            capacity_mbps=(
                None if capacity is None
                else _number_or_ref(capacity, f"{where}.capacity_mbps")
            ),
            factor=None if factor is None else _number_or_ref(factor, f"{where}.factor"),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"at_s": self.at_s, "kind": self.kind, "link": self.link}
        if self.capacity_mbps is not None:
            data["capacity_mbps"] = self.capacity_mbps
        if self.factor is not None:
            data["factor"] = self.factor
        return data


@dataclass(frozen=True)
class FaultPlanSpec:
    """An inline event list *or* a ``use:`` reference into the named-plan
    registry (:func:`repro.faults.plan.register_plan`)."""

    name: str = ""
    description: str = ""
    events: Tuple[FaultEventSpec, ...] = ()
    use: str = ""

    @staticmethod
    def from_dict(data: Any, where: str) -> "FaultPlanSpec":
        fields_ = _take(data, where, optional=("name", "description", "events", "use"))
        use = str(fields_.get("use", ""))
        raw_events = fields_.get("events")
        if bool(use) == bool(raw_events):
            raise ScenarioError(f"{where}: declare either events or use, not both/neither")
        if use:
            return FaultPlanSpec(
                name=str(fields_.get("name", "")) or use,
                description=str(fields_.get("description", "")),
                use=use,
            )
        if not isinstance(raw_events, (list, tuple)) or not raw_events:
            raise ScenarioError(f"{where}.events: expected a non-empty list")
        name = fields_.get("name")
        if not name:
            raise ScenarioError(f"{where}: inline plans need a name")
        return FaultPlanSpec(
            name=_string(name, f"{where}.name"),
            description=str(fields_.get("description", "")),
            events=tuple(
                FaultEventSpec.from_dict(entry, f"{where}.events[{index}]")
                for index, entry in enumerate(raw_events)
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"name": self.name}
        if self.description:
            data["description"] = self.description
        if self.use:
            data["use"] = self.use
        else:
            data["events"] = [event.to_dict() for event in self.events]
        return data


# ---------------------------------------------------------------------------
# the expanded (params-resolved) topology plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlannedNode:
    node_id: str
    kind: NodeKind
    owner: str
    tags: Tuple[str, ...]


@dataclass(frozen=True)
class PlannedLink:
    src: str
    dst: str
    capacity_mbps: Any
    delay_ms: Any
    owner: str
    tags: Tuple[str, ...]
    link_id: str
    alias: str = ""


@dataclass
class GroupPlan:
    name: str
    nodes: List[str] = field(default_factory=list)
    links: List[str] = field(default_factory=list)


@dataclass
class TopologyPlan:
    """A spec's topology, expanded with resolved params.

    ``steps`` preserves directive order (groups interleave their member
    nodes and links) so the engine can replay construction exactly.
    """

    name: str
    steps: List[Tuple[str, Any]] = field(default_factory=list)
    groups: Dict[str, GroupPlan] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)
    node_ids: Dict[str, PlannedNode] = field(default_factory=dict)
    link_ids: Dict[str, PlannedLink] = field(default_factory=dict)

    def _add_node(self, node: PlannedNode, where: str) -> None:
        if node.node_id in self.node_ids:
            raise ScenarioError(f"{where}: duplicate node id {node.node_id!r}")
        self.node_ids[node.node_id] = node
        self.steps.append(("node", node))

    def _add_link(self, link: PlannedLink, where: str) -> None:
        for endpoint in (link.src, link.dst):
            if endpoint not in self.node_ids:
                raise ScenarioError(f"{where}: unknown node {endpoint!r}")
        if link.link_id in self.link_ids:
            raise ScenarioError(f"{where}: duplicate link {link.link_id!r}")
        if link.alias:
            if link.alias in self.aliases:
                raise ScenarioError(f"{where}: duplicate link alias {link.alias!r}")
            self.aliases[link.alias] = link.link_id
        self.link_ids[link.link_id] = link
        self.steps.append(("link", link))

    def resolve_link(self, ref: str, where: str) -> str:
        """An alias or canonical ``src->dst`` id -> canonical id."""
        if ref in self.aliases:
            return self.aliases[ref]
        if ref in self.link_ids:
            return ref
        known = sorted(self.aliases) + sorted(self.link_ids)
        raise ScenarioError(
            f"{where}: unknown link {ref!r} (known: {', '.join(known)})"
        )

    def group(self, name: str, where: str) -> GroupPlan:
        if name not in self.groups:
            raise ScenarioError(
                f"{where}: unknown group {name!r}"
                f" (known: {', '.join(sorted(self.groups)) or 'none'})"
            )
        return self.groups[name]


# ---------------------------------------------------------------------------
# the scenario spec itself
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario; see the module docstring."""

    name: str
    topology: TopologySpec
    title: str = ""
    description: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    catalog: Optional[CatalogSpec] = None
    cdns: Tuple[CdnSpec, ...] = ()
    egress: Tuple[EgressSpec, ...] = ()
    web: Optional[WebSpec] = None
    populations: Tuple[PopulationSpec, ...] = ()
    phases: Tuple[PhaseSpec, ...] = ()
    faults: Tuple[FaultPlanSpec, ...] = ()

    # -- parsing -----------------------------------------------------------

    @staticmethod
    def from_dict(data: Any) -> "ScenarioSpec":
        fields_ = _take(
            data, "scenario",
            required=("name", "topology"),
            optional=(
                "title", "description", "params", "catalog", "cdns",
                "egress", "web", "populations", "phases", "faults",
            ),
        )
        name = _string(fields_["name"], "scenario.name")
        params = _mapping(fields_.get("params", {}), "scenario.params")
        for key, value in params.items():
            if not _is_number(value):
                raise ScenarioError(
                    f"scenario.params.{key}: defaults must be numbers, got {value!r}"
                )

        def _list(key: str, parser, where: str) -> tuple:
            raw = fields_.get(key, [])
            if not isinstance(raw, (list, tuple)):
                raise ScenarioError(f"{where}: expected a list")
            return tuple(
                parser(entry, f"{where}[{index}]") for index, entry in enumerate(raw)
            )

        return ScenarioSpec(
            name=name,
            topology=TopologySpec.from_dict(fields_["topology"], "scenario.topology"),
            title=str(fields_.get("title", "")),
            description=str(fields_.get("description", "")),
            params=dict(params),
            catalog=(
                CatalogSpec.from_dict(fields_["catalog"], "scenario.catalog")
                if "catalog" in fields_ else None
            ),
            cdns=_list("cdns", CdnSpec.from_dict, "scenario.cdns"),
            egress=_list("egress", EgressSpec.from_dict, "scenario.egress"),
            web=(
                WebSpec.from_dict(fields_["web"], "scenario.web")
                if "web" in fields_ else None
            ),
            populations=_list(
                "populations", PopulationSpec.from_dict, "scenario.populations"
            ),
            phases=_list("phases", PhaseSpec.from_dict, "scenario.phases"),
            faults=_list("faults", FaultPlanSpec.from_dict, "scenario.faults"),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The canonical dict form; ``from_dict`` round-trips it exactly."""
        data: Dict[str, Any] = {"name": self.name}
        if self.title:
            data["title"] = self.title
        if self.description:
            data["description"] = self.description
        if self.params:
            data["params"] = dict(self.params)
        data["topology"] = self.topology.to_dict()
        if self.catalog is not None:
            data["catalog"] = self.catalog.to_dict()
        if self.cdns:
            data["cdns"] = [cdn.to_dict() for cdn in self.cdns]
        if self.egress:
            data["egress"] = [group.to_dict() for group in self.egress]
        if self.web is not None:
            data["web"] = self.web.to_dict()
        if self.populations:
            data["populations"] = [pop.to_dict() for pop in self.populations]
        if self.phases:
            data["phases"] = [phase.to_dict() for phase in self.phases]
        if self.faults:
            data["faults"] = [plan.to_dict() for plan in self.faults]
        return data

    # -- resolution --------------------------------------------------------

    def resolved_params(
        self, overrides: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Defaults overlaid with ``overrides``; unknown names are errors."""
        params = dict(self.params)
        for key, value in (overrides or {}).items():
            if key not in params:
                raise ScenarioError(
                    f"scenario {self.name!r}: unknown parameter {key!r}"
                    f" (declared: {', '.join(sorted(params)) or 'none'})"
                )
            if not _is_number(value):
                raise ScenarioError(
                    f"scenario {self.name!r}: parameter {key!r} must be a number,"
                    f" got {value!r}"
                )
            params[key] = value
        return params

    def topology_plan(self, params: Optional[Mapping[str, Any]] = None) -> TopologyPlan:
        """Expand the build list with resolved params (pure; no sim)."""
        if params is None:
            params = self.resolved_params()
        plan = TopologyPlan(name=self.topology.name or self.name)
        for index, directive in enumerate(self.topology.build):
            where = f"scenario.topology.build[{index}]"
            if isinstance(directive, NodeDirective):
                plan._add_node(
                    PlannedNode(
                        node_id=directive.node_id,
                        kind=_NODE_KINDS[directive.kind],
                        owner=directive.owner,
                        tags=directive.tags,
                    ),
                    where,
                )
            elif isinstance(directive, LinkDirective):
                plan._add_link(
                    PlannedLink(
                        src=directive.src,
                        dst=directive.dst,
                        capacity_mbps=_resolve_number(
                            directive.capacity_mbps, params,
                            f"{where}.capacity_mbps", positive=True,
                        ),
                        delay_ms=_resolve_number(
                            directive.delay_ms, params, f"{where}.delay_ms", minimum=0
                        ),
                        owner=directive.owner,
                        tags=directive.tags,
                        link_id=f"{directive.src}->{directive.dst}",
                        alias=directive.alias,
                    ),
                    where,
                )
            else:
                if directive.name in plan.groups:
                    raise ScenarioError(f"{where}: duplicate group {directive.name!r}")
                group = GroupPlan(name=directive.name)
                plan.groups[directive.name] = group
                count = _resolve_int(directive.count, params, f"{where}.count", minimum=1)
                capacity = _resolve_number(
                    directive.capacity_mbps, params, f"{where}.capacity_mbps",
                    positive=True,
                )
                delay = _resolve_number(
                    directive.delay_ms, params, f"{where}.delay_ms", minimum=0
                )
                for member_index in range(count):
                    member = f"{directive.prefix}{member_index}"
                    plan._add_node(
                        PlannedNode(
                            node_id=member,
                            kind=_NODE_KINDS[directive.kind],
                            owner=directive.owner,
                            tags=(),
                        ),
                        where,
                    )
                    if directive.direction == "to-member":
                        src, dst = directive.attach, member
                    else:
                        src, dst = member, directive.attach
                    link = PlannedLink(
                        src=src,
                        dst=dst,
                        capacity_mbps=capacity,
                        delay_ms=delay,
                        owner=directive.link_owner,
                        tags=directive.tags,
                        link_id=f"{src}->{dst}",
                    )
                    plan._add_link(link, where)
                    group.nodes.append(member)
                    group.links.append(link.link_id)
        return plan

    def fault_plans(
        self,
        params: Optional[Mapping[str, Any]] = None,
        plan: Optional[TopologyPlan] = None,
    ) -> List[FaultPlan]:
        """Compile the spec's fault plans to :class:`FaultPlan` objects.

        Inline plans resolve link refs and ``$params`` statically;
        ``use:`` entries are looked up in the named-plan registry (and
        must be registered -- importing the owning experiment module
        does that).
        """
        if params is None:
            params = self.resolved_params()
        if plan is None:
            plan = self.topology_plan(params)
        compiled: List[FaultPlan] = []
        for index, spec in enumerate(self.faults):
            where = f"scenario.faults[{index}]"
            if spec.use:
                from repro.faults.plan import get_plan

                try:
                    named = get_plan(spec.use)
                except KeyError as error:
                    raise ScenarioError(f"{where}: {error.args[0]}") from None
                compiled.append(named.factory())
                continue
            events = []
            for event_index, event in enumerate(spec.events):
                event_where = f"{where}.events[{event_index}]"
                event_params: Dict[str, float] = {}
                if event.capacity_mbps is not None:
                    event_params["capacity_mbps"] = _resolve_number(
                        event.capacity_mbps, params,
                        f"{event_where}.capacity_mbps", positive=True,
                    )
                if event.factor is not None:
                    event_params["factor"] = _resolve_number(
                        event.factor, params, f"{event_where}.factor", minimum=0
                    )
                events.append(
                    FaultEvent(
                        time_s=_resolve_number(
                            event.at_s, params, f"{event_where}.at_s", minimum=0
                        ),
                        kind=event.kind,
                        target=plan.resolve_link(event.link, f"{event_where}.link"),
                        params=event_params,
                    )
                )
            compiled.append(
                FaultPlan(name=spec.name, events=tuple(events), description=spec.description)
            )
        return compiled

    # -- referential validation -------------------------------------------

    def validate(self) -> None:
        """Cross-reference every section against the expanded topology.

        Raises :class:`ScenarioError` on dangling node/link/group
        references, overlapping or out-of-order phases, and fault plans
        that cannot compile.  ``use:`` plans are checked only when the
        registry knows them (see :func:`repro.scenarios.loader.validate_spec`
        for the strict CLI path).
        """
        params = self.resolved_params()
        plan = self.topology_plan(params)

        if self.catalog is not None:
            _resolve_int(self.catalog.items, params, "scenario.catalog.items", minimum=1)
            _resolve_number(
                self.catalog.duration_s, params, "scenario.catalog.duration_s",
                positive=True,
            )
            _resolve_number(
                self.catalog.zipf_alpha, params, "scenario.catalog.zipf_alpha", minimum=0
            )

        seen_cdns = set()
        for index, cdn in enumerate(self.cdns):
            where = f"scenario.cdns[{index}]"
            if cdn.name in seen_cdns:
                raise ScenarioError(f"{where}: duplicate cdn {cdn.name!r}")
            seen_cdns.add(cdn.name)
            if cdn.warm_top_fraction is not None and self.catalog is None:
                raise ScenarioError(f"{where}: warm_top_fraction needs a catalog")
            for server_index, server in enumerate(cdn.servers):
                server_where = f"{where}.servers[{server_index}]"
                if server.group:
                    plan.group(server.group, f"{server_where}.group")
                elif server.node not in plan.node_ids:
                    raise ScenarioError(
                        f"{server_where}.node: unknown node {server.node!r}"
                    )
                _resolve_int(
                    server.capacity_sessions, params,
                    f"{server_where}.capacity_sessions", minimum=1,
                )
            if cdn.origin and cdn.origin not in plan.node_ids:
                raise ScenarioError(f"{where}.origin: unknown node {cdn.origin!r}")

        for index, group in enumerate(self.egress):
            where = f"scenario.egress[{index}]"
            if group.remote not in plan.node_ids:
                raise ScenarioError(f"{where}.remote: unknown node {group.remote!r}")
            for candidate in group.candidates:
                if candidate not in plan.node_ids:
                    raise ScenarioError(f"{where}: unknown candidate node {candidate!r}")
            missing = [c for c in group.candidates if c not in group.links]
            if missing:
                raise ScenarioError(f"{where}: no egress link for {missing}")
            for peer, ref in group.links.items():
                plan.resolve_link(ref, f"{where}.links[{peer}]")
            if group.preferred and group.preferred not in group.candidates:
                raise ScenarioError(
                    f"{where}.preferred: {group.preferred!r} not a candidate"
                )

        if self.web is not None:
            if self.web.server_node not in plan.node_ids:
                raise ScenarioError(
                    f"scenario.web.server_node: unknown node {self.web.server_node!r}"
                )
            plan.group(self.web.clients, "scenario.web.clients")
            if self.web.radio_tick_s is not None:
                _resolve_number(
                    self.web.radio_tick_s, params, "scenario.web.radio_tick_s",
                    positive=True,
                )

        seen_populations = set()
        for index, population in enumerate(self.populations):
            where = f"scenario.populations[{index}]"
            if population.name in seen_populations:
                raise ScenarioError(f"{where}: duplicate population {population.name!r}")
            seen_populations.add(population.name)
            plan.group(population.group, f"{where}.group")
            for key, value in population.rate.items():
                _resolve_number(value, params, f"{where}.rate.{key}", minimum=0)
            if population.until_s is not None:
                _resolve_number(population.until_s, params, f"{where}.until_s", minimum=0)
            if population.max_sessions is not None:
                _resolve_int(
                    population.max_sessions, params, f"{where}.max_sessions", minimum=1
                )
            if "amplitude" in population.rate:
                amplitude = _resolve(
                    population.rate["amplitude"], params, f"{where}.rate.amplitude"
                )
                if not 0 <= amplitude < 1:
                    raise ScenarioError(
                        f"{where}.rate.amplitude: out of range [0, 1): {amplitude!r}"
                    )

        previous_name = ""
        previous_start: Optional[float] = None
        previous_end: Optional[float] = None
        seen_phases = set()
        for index, phase in enumerate(self.phases):
            where = f"scenario.phases[{index}]"
            if phase.name in seen_phases:
                raise ScenarioError(f"{where}: duplicate phase {phase.name!r}")
            seen_phases.add(phase.name)
            start = _resolve_number(phase.at_s, params, f"{where}.at_s", minimum=0)
            end = (
                None if phase.end_s is None
                else _resolve_number(phase.end_s, params, f"{where}.end_s", minimum=0)
            )
            if end is not None and end <= start:
                raise ScenarioError(
                    f"{where}: phase {phase.name!r} ends at {end!r}"
                    f" before it starts ({start!r})"
                )
            if previous_start is not None and start <= previous_start:
                raise ScenarioError(
                    f"{where}: phase {phase.name!r} (at_s={start!r}) must start"
                    f" after {previous_name!r} (at_s={previous_start!r})"
                )
            if previous_end is not None and start < previous_end:
                raise ScenarioError(
                    f"{where}: phase {phase.name!r} (at_s={start!r}) overlaps"
                    f" {previous_name!r} (end_s={previous_end!r})"
                )
            previous_name, previous_start, previous_end = phase.name, start, end

        seen_plans = set()
        for index, fault in enumerate(self.faults):
            where = f"scenario.faults[{index}]"
            if fault.name in seen_plans:
                raise ScenarioError(f"{where}: duplicate fault plan {fault.name!r}")
            seen_plans.add(fault.name)
            if fault.use:
                continue  # registry membership is checked at compile time
            # Compiling the single plan exercises link refs, times, params.
            ScenarioSpec.fault_plans(
                _only_fault(self, fault), params=params, plan=plan
            )


def _only_fault(spec: ScenarioSpec, fault: FaultPlanSpec) -> ScenarioSpec:
    """A shallow copy carrying one inline fault plan (validation helper)."""
    return ScenarioSpec(
        name=spec.name,
        topology=spec.topology,
        params=dict(spec.params),
        faults=(fault,),
    )
