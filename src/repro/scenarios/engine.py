"""The scenario engine: compile a validated spec into a live world.

``compile_scenario`` replays the spec's ordered build list into a
:class:`~repro.network.topology.Topology`, assembles the context via
:func:`~repro.core.context.build_context`, then layers on content, CDNs
(registered into the context in declaration order -- the AppP's default
preference order), egress groups, web clients/radios, phase-timeline
trace events, fault plans (installed through PR 5's
:class:`~repro.faults.injector.FaultInjector`), and session populations.

Construction order is the determinism contract: the engine performs the
same side-effecting calls, in the same order, as a hand-coded builder
would -- which is what the byte-identical trace-equivalence gate in
``tests/scenarios`` verifies against the legacy builders this subsystem
replaced.  Nothing here draws randomness at compile time; populations
compile to *descriptions* (rate functions + launch kwargs) and only
consume their RNG streams once an experiment launches them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.cdn.content import ContentCatalog
from repro.cdn.origin import Origin
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.context import SimContext, build_context
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import Topology
from repro.obs.trace import TRACER
from repro.scenarios.schema import (
    GroupPlan,
    ScenarioError,
    ScenarioSpec,
    _resolve_int,
    _resolve_number,
)
from repro.sdn.te import EgressGroup
from repro.simkernel.kernel import Simulator
from repro.web.browser import Browser
from repro.web.radio import RadioModel
from repro.workloads.arrivals import RateFn, diurnal_rate, flash_crowd_rate

__all__ = ["Population", "ScenarioWorld", "compile_scenario", "trace_phases"]


def trace_phases(
    sim: Simulator, scenario: str, transitions: Dict[str, float]
) -> None:
    """Schedule ``phase-transition`` trace events for a scenario's arc.

    Called by experiments whose phase structure lives in arrival-rate
    shapes rather than scheduled topology changes (e.g. the flash
    crowd's onset/peak/decay).  Only schedules anything when tracing is
    already enabled, so untraced runs keep an event history identical
    to a build that never called this -- the determinism contract.
    """
    if not TRACER.enabled:
        return

    def emit_phase(phase: str) -> None:
        if TRACER.enabled:
            TRACER.emit("phase-transition", scenario=scenario, phase=phase)

    for phase in sorted(transitions, key=lambda name: (transitions[name], name)):
        sim.schedule_at(transitions[phase], emit_phase, phase)


@dataclass
class Population:
    """A compiled session population: pure description, no RNG drawn.

    ``launch_kwargs()`` hands :func:`~repro.experiments.common.
    launch_video_sessions` its arrival-process arguments; cohort-mode
    populations instead expose :meth:`device_rates` for the vectorized
    path (BatchedPoissonArrivals / CohortEngine).
    """

    name: str
    group: str
    process: str
    mode: str
    nodes: List[str]
    rate: Dict[str, float]
    until_s: Optional[float] = None
    max_sessions: Optional[int] = None

    def rate_fn(self) -> Optional[RateFn]:
        """The non-homogeneous rate profile; ``None`` for plain Poisson."""
        if self.process == "flash-crowd":
            return flash_crowd_rate(
                base_per_s=self.rate["base_per_s"],
                peak_per_s=self.rate["peak_per_s"],
                onset_s=self.rate["onset_s"],
                ramp_s=self.rate["ramp_s"],
                duration_s=self.rate["duration_s"],
            )
        if self.process == "diurnal":
            return diurnal_rate(
                mean_per_s=self.rate["mean_per_s"],
                amplitude=self.rate.get("amplitude", 0.8),
                period_s=self.rate.get("period_s", 86_400.0),
                peak_at_s=self.rate.get("peak_at_s", 72_000.0),
            )
        return None

    def peak_rate_per_s(self) -> float:
        """An upper envelope of the rate profile (thinning bound)."""
        if self.process == "flash-crowd":
            return self.rate["peak_per_s"]
        if self.process == "diurnal":
            return self.rate["mean_per_s"] * (1 + self.rate.get("amplitude", 0.8))
        return self.rate["rate_per_s"]

    def launch_kwargs(self, **overrides: Any) -> Dict[str, Any]:
        """Arrival-process kwargs for ``launch_video_sessions``."""
        if self.mode == "cohort":
            raise ScenarioError(
                f"population {self.name!r} is cohort-mode; use device_rates()"
            )
        kwargs: Dict[str, Any] = {"client_nodes": list(self.nodes)}
        profile = self.rate_fn()
        if profile is None:
            kwargs["rate_per_s"] = self.rate["rate_per_s"]
        else:
            kwargs["rate_fn"] = profile
            kwargs["max_rate_per_s"] = self.peak_rate_per_s()
        if self.until_s is not None:
            kwargs["until"] = self.until_s
        if self.max_sessions is not None:
            kwargs["max_sessions"] = self.max_sessions
        kwargs.update(overrides)
        return kwargs

    def device_rates(self) -> List[float]:
        """Per-member arrival rates (cohort mode's batched-Poisson input)."""
        if self.mode != "cohort":
            raise ScenarioError(
                f"population {self.name!r} is not cohort-mode; use launch_kwargs()"
            )
        return [self.rate["rate_per_device_s"]] * len(self.nodes)


@dataclass
class ScenarioWorld:
    """Everything a compiled scenario produced, keyed for lookup.

    The generic face of the subsystem: experiments either consume this
    directly (the fleet workloads do) or through a typed bundle adapter
    (:mod:`repro.scenarios.bundles`, the migrated legacy scenarios).
    """

    spec: ScenarioSpec
    params: Dict[str, Any]
    ctx: SimContext
    catalog: Optional[ContentCatalog] = None
    cdns: Dict[str, Cdn] = field(default_factory=dict)
    groups: Dict[str, GroupPlan] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)
    egress: List[EgressGroup] = field(default_factory=list)
    radios: List[RadioModel] = field(default_factory=list)
    browsers: List[Browser] = field(default_factory=list)
    web_server: Optional[str] = None
    populations: Dict[str, Population] = field(default_factory=dict)
    fault_plans: List[FaultPlan] = field(default_factory=list)
    injector: Optional[FaultInjector] = None

    @property
    def sim(self) -> Simulator:
        return self.ctx.sim

    @property
    def topology(self) -> Topology:
        return self.ctx.topology

    @property
    def network(self) -> FluidNetwork:
        return self.ctx.network

    @property
    def cdn_list(self) -> List[Cdn]:
        return list(self.cdns.values())

    def link_id(self, ref: str) -> str:
        """Resolve a link alias (or pass through a canonical id)."""
        if ref in self.aliases:
            return self.aliases[ref]
        try:
            self.topology.link(ref)
            return ref
        except KeyError:
            known = ", ".join(sorted(self.aliases)) or "none"
            raise ScenarioError(f"unknown link {ref!r} (aliases: {known})") from None

    def group_nodes(self, name: str) -> List[str]:
        if name not in self.groups:
            raise ScenarioError(
                f"unknown group {name!r} (known: {', '.join(sorted(self.groups))})"
            )
        return list(self.groups[name].nodes)

    def group_links(self, name: str) -> List[str]:
        if name not in self.groups:
            raise ScenarioError(
                f"unknown group {name!r} (known: {', '.join(sorted(self.groups))})"
            )
        return list(self.groups[name].links)

    def population(self, name: str) -> Population:
        if name not in self.populations:
            raise ScenarioError(
                f"unknown population {name!r}"
                f" (known: {', '.join(sorted(self.populations)) or 'none'})"
            )
        return self.populations[name]


def _expand_servers(
    cdn_name: str,
    spec: ScenarioSpec,
    world: ScenarioWorld,
    params: Mapping[str, Any],
) -> List[CdnServer]:
    servers: List[CdnServer] = []
    (cdn_spec,) = [cdn for cdn in spec.cdns if cdn.name == cdn_name]
    for server in cdn_spec.servers:
        capacity = _resolve_int(
            server.capacity_sessions, params, "capacity_sessions", minimum=1
        )
        cache = _resolve_number(server.cache_mbit, params, "cache_mbit", positive=True)
        degraded = (
            None
            if server.degraded_rate_mbps is None
            else _resolve_number(
                server.degraded_rate_mbps, params, "degraded_rate_mbps", positive=True
            )
        )
        if server.group:
            for index, node in enumerate(world.group_nodes(server.group)):
                server_id = server.id_format.format(node=node, index=index)
                servers.append(
                    CdnServer(
                        server_id,
                        node,
                        capacity_sessions=capacity,
                        cache_mbit=cache,
                        degraded_rate_mbps=degraded,
                    )
                )
        else:
            servers.append(
                CdnServer(
                    server.server_id,
                    server.node,
                    capacity_sessions=capacity,
                    cache_mbit=cache,
                    degraded_rate_mbps=degraded,
                )
            )
    return servers


def compile_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    install_faults: bool = True,
    with_phases: bool = True,
) -> ScenarioWorld:
    """Compile a spec into a running world.

    Args:
        spec: A validated scenario spec.
        seed: Root seed for the context's RNG streams.
        params: Overrides for the spec's declared ``params``.
        install_faults: Arm the spec's fault plans through a
            :class:`FaultInjector` (disable to build the never-faulted
            twin of the same world).
        with_phases: Schedule the spec's phase timeline as
            ``phase-transition`` trace events (no-op unless tracing is
            enabled -- same contract as :func:`trace_phases`).
    """
    resolved = spec.resolved_params(params)
    plan = spec.topology_plan(resolved)

    topo = Topology(plan.name)
    for step_kind, step in plan.steps:
        if step_kind == "node":
            topo.add_node(step.node_id, step.kind, owner=step.owner, tags=step.tags)
        else:
            topo.add_link(
                step.src,
                step.dst,
                step.capacity_mbps,
                delay_ms=step.delay_ms,
                owner=step.owner,
                tags=step.tags,
            )

    ctx = build_context(topology=topo, seed=seed)
    world = ScenarioWorld(
        spec=spec,
        params=dict(resolved),
        ctx=ctx,
        groups={name: group for name, group in plan.groups.items()},
        aliases=dict(plan.aliases),
    )

    if spec.catalog is not None:
        world.catalog = ContentCatalog(
            n_items=_resolve_int(spec.catalog.items, resolved, "catalog.items", minimum=1),
            duration_s=_resolve_number(
                spec.catalog.duration_s, resolved, "catalog.duration_s", positive=True
            ),
            zipf_alpha=_resolve_number(
                spec.catalog.zipf_alpha, resolved, "catalog.zipf_alpha", minimum=0
            ),
        )

    for cdn_spec in spec.cdns:
        cdn = Cdn(
            cdn_spec.name,
            _expand_servers(cdn_spec.name, spec, world, resolved),
            origin=Origin(cdn_spec.origin) if cdn_spec.origin else None,
            ctx=ctx,
        )
        if cdn_spec.warm_top_fraction is not None:
            cdn.warm_caches(
                world.catalog,
                top_fraction=_resolve_number(
                    cdn_spec.warm_top_fraction, resolved, "warm_top_fraction", minimum=0
                ),
            )
        world.cdns[cdn_spec.name] = cdn

    for egress_spec in spec.egress:
        world.egress.append(
            EgressGroup(
                name=egress_spec.name,
                remote=egress_spec.remote,
                candidates=list(egress_spec.candidates),
                egress_links={
                    peer: plan.resolve_link(ref, f"egress[{egress_spec.name}].links")
                    for peer, ref in egress_spec.links.items()
                },
                preferred=egress_spec.preferred or None,
            )
        )

    if spec.web is not None:
        world.web_server = spec.web.server_node
        clients = world.group_nodes(spec.web.clients)
        links = world.group_links(spec.web.clients)
        if spec.web.radio_tick_s is not None:
            tick_s = _resolve_number(
                spec.web.radio_tick_s, resolved, "web.radio_tick_s", positive=True
            )
            for index, (node, link_id) in enumerate(zip(clients, links)):
                rng = ctx.sim.rng.get(f"{spec.web.radio_stream}:{index}")
                radio = RadioModel(ctx.sim, ctx.network, link_id, rng, tick_s=tick_s)
                world.radios.append(radio)
                world.browsers.append(
                    Browser(
                        ctx.sim,
                        ctx.network,
                        client_node=node,
                        server_node=spec.web.server_node,
                        radio=radio,
                    )
                )
        else:
            for node in clients:
                world.browsers.append(
                    Browser(
                        ctx.sim,
                        ctx.network,
                        client_node=node,
                        server_node=spec.web.server_node,
                    )
                )

    if with_phases and spec.phases:
        transitions = {
            phase.name: _resolve_number(phase.at_s, resolved, "phases.at_s", minimum=0)
            for phase in spec.phases
        }
        trace_phases(ctx.sim, spec.name, transitions)

    world.fault_plans = spec.fault_plans(resolved, plan=plan)
    if install_faults and world.fault_plans:
        world.injector = FaultInjector(ctx)
        for fault_plan in world.fault_plans:
            world.injector.install(fault_plan)

    for population_spec in spec.populations:
        world.populations[population_spec.name] = Population(
            name=population_spec.name,
            group=population_spec.group,
            process=population_spec.process,
            mode=population_spec.mode,
            nodes=world.group_nodes(population_spec.group),
            rate={
                key: _resolve_number(
                    value, resolved, f"populations.{population_spec.name}.rate.{key}",
                    minimum=0,
                )
                for key, value in population_spec.rate.items()
            },
            until_s=(
                None if population_spec.until_s is None
                else _resolve_number(
                    population_spec.until_s, resolved,
                    f"populations.{population_spec.name}.until_s", minimum=0,
                )
            ),
            max_sessions=(
                None if population_spec.max_sessions is None
                else _resolve_int(
                    population_spec.max_sessions, resolved,
                    f"populations.{population_spec.name}.max_sessions", minimum=1,
                )
            ),
        )

    return world
