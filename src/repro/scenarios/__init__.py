"""Declarative scenarios: schema, loader, engine, and typed bundles.

DESIGN.md §12.  A scenario is data (``library/*.yaml``): topology build
directives, CDN placement, populations with arrival processes, phase
timelines, and fault plans.  The engine compiles a validated spec into
a live :class:`~repro.core.context.SimContext` world; experiments build
worlds through :func:`build_scenario`.
"""

from repro.scenarios.schema import (
    ScenarioError,
    ScenarioSpec,
)
from repro.scenarios.loader import (
    dump_spec,
    library_dir,
    library_names,
    load_file,
    load_library_spec,
    load_round_trip,
    load_spec,
    validate_spec,
)
from repro.scenarios.engine import (
    Population,
    ScenarioWorld,
    compile_scenario,
    trace_phases,
)
from repro.scenarios.bundles import (
    CdnFaultScenario,
    CellularWebScenario,
    CoarseControlScenario,
    EnergyScenario,
    FlashCrowdScenario,
    OscillationScenario,
    TwoIspScenario,
    build_scenario,
)

__all__ = [
    "CdnFaultScenario",
    "CellularWebScenario",
    "CoarseControlScenario",
    "EnergyScenario",
    "FlashCrowdScenario",
    "OscillationScenario",
    "Population",
    "ScenarioError",
    "ScenarioSpec",
    "ScenarioWorld",
    "TwoIspScenario",
    "build_scenario",
    "compile_scenario",
    "dump_spec",
    "library_dir",
    "library_names",
    "load_file",
    "load_library_spec",
    "load_round_trip",
    "load_spec",
    "trace_phases",
    "validate_spec",
]
