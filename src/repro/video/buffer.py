"""Playback-buffer dynamics with exact stall accounting.

The buffer holds downloaded-but-unplayed media, measured in seconds of
content.  Between events it drains linearly while playing, so stall
time can be computed exactly at each :meth:`advance` call: if the
elapsed wall time exceeds the buffered media, the difference is a
stall.  Startup (join) and resume-after-stall thresholds follow common
player practice.
"""

from __future__ import annotations

from typing import Optional, Tuple


def buffer_advance_step(
    level_s: float,
    elapsed_s: float,
    started: bool,
    stalled: bool,
) -> Tuple[float, float, float, bool]:
    """One pure buffer-drain step: ``elapsed_s`` of wall time passes.

    Returns ``(new_level_s, played_s, waiting_s, now_stalled)``:

    * A session that has not started, or is stalled, plays nothing --
      all elapsed time is *waiting* (join time before start, rebuffer
      time after) and the buffer level is untouched (downloads are
      credited separately).
    * A playing session drains the buffer at 1 s of media per second;
      if the buffer runs dry mid-step the shortfall is waiting time and
      the session is stalled at the end of the step.

    This is the single source of the drain dynamics: the scalar
    :class:`PlaybackBuffer` and the vectorized cohort twin
    (:mod:`repro.cohorts.vecsteps`) both apply exactly this function,
    so the two cannot drift.
    """
    if elapsed_s <= 0:
        return level_s, 0.0, 0.0, stalled
    if not started or stalled:
        return level_s, 0.0, elapsed_s, stalled
    played = min(level_s, elapsed_s)
    waiting = elapsed_s - played
    return level_s - played, played, waiting, waiting > 0


class PlaybackBuffer:
    """Buffer state machine for one playback session.

    States: *joining* (never played yet) → *playing* ↔ *stalled*.

    Args:
        startup_threshold_s: Buffered media required to start playback.
        resume_threshold_s: Buffered media required to resume after a
            stall (usually ≥ the startup threshold to avoid flapping).
    """

    def __init__(
        self,
        startup_threshold_s: float = 4.0,
        resume_threshold_s: float = 4.0,
    ):
        if startup_threshold_s <= 0 or resume_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        self.startup_threshold_s = startup_threshold_s
        self.resume_threshold_s = resume_threshold_s
        self.level_s = 0.0
        self.started = False
        self.stalled = False
        self.play_time_s = 0.0
        self.rebuffer_time_s = 0.0
        self.rebuffer_events = 0
        self.join_time_s: Optional[float] = None
        self._created_at = 0.0
        self._last_update = 0.0

    def bind_clock(self, now: float) -> None:
        """Set the session start instant (call once, before any update)."""
        self._created_at = now
        self._last_update = now

    def advance(self, now: float) -> None:
        """Account for wall time elapsed since the last update."""
        elapsed = now - self._last_update
        if elapsed < 0:
            raise ValueError("time moved backwards")
        self._last_update = now
        if elapsed == 0:
            return
        level, played, waiting, now_stalled = buffer_advance_step(
            self.level_s, elapsed, self.started, self.stalled
        )
        if not self.started or self.stalled:
            # Waiting for media: all elapsed time is join or rebuffer.
            if self.started:
                self.rebuffer_time_s += waiting
            return
        self.level_s = level
        self.play_time_s += played
        if waiting > 0:
            self.stalled = now_stalled
            self.rebuffer_events += 1
            self.rebuffer_time_s += waiting

    def add_chunk(self, duration_s: float, now: float) -> None:
        """Credit one downloaded chunk; may trigger start or resume."""
        self.advance(now)
        self.level_s += duration_s
        if not self.started:
            if self.level_s >= self.startup_threshold_s:
                self.started = True
                self.join_time_s = now - self._created_at
        elif self.stalled and self.level_s >= self.resume_threshold_s:
            self.stalled = False

    @property
    def buffering_ratio(self) -> float:
        """Rebuffer time over (play + rebuffer) time -- the headline QoE metric."""
        denominator = self.play_time_s + self.rebuffer_time_s
        if denominator <= 0:
            return 0.0
        return self.rebuffer_time_s / denominator

    def drain_remaining(self, now: float) -> float:
        """Seconds until the buffer would empty if no more chunks arrive."""
        self.advance(now)
        return self.level_s if self.started and not self.stalled else 0.0
