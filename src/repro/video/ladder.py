"""Bitrate ladders: the encodings a title is available at."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class BitrateLadder:
    """An ascending list of encoded bitrates plus the chunk duration.

    Attributes:
        bitrates_mbps: Available encodings, strictly ascending, Mbit/s.
        chunk_duration_s: Segment length; every encoding is segmented at
            the same boundaries (as in DASH/HLS).
    """

    bitrates_mbps: Tuple[float, ...]
    chunk_duration_s: float = 4.0

    def __post_init__(self) -> None:
        if not self.bitrates_mbps:
            raise ValueError("ladder needs at least one bitrate")
        if any(b <= 0 for b in self.bitrates_mbps):
            raise ValueError("bitrates must be positive")
        if list(self.bitrates_mbps) != sorted(set(self.bitrates_mbps)):
            raise ValueError("bitrates must be strictly ascending")
        if self.chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")

    @property
    def lowest(self) -> float:
        return self.bitrates_mbps[0]

    @property
    def highest(self) -> float:
        return self.bitrates_mbps[-1]

    def __len__(self) -> int:
        return len(self.bitrates_mbps)

    def __contains__(self, bitrate: float) -> bool:
        return bitrate in self.bitrates_mbps

    def index_of(self, bitrate: float) -> int:
        return self.bitrates_mbps.index(bitrate)

    def chunk_size_mbit(self, bitrate: float) -> float:
        """Size of one chunk at ``bitrate``."""
        return bitrate * self.chunk_duration_s

    def highest_at_most(self, cap_mbps: float) -> float:
        """Highest encoding not exceeding ``cap_mbps`` (lowest if none fit)."""
        eligible = [b for b in self.bitrates_mbps if b <= cap_mbps]
        return eligible[-1] if eligible else self.lowest

    def step_down(self, bitrate: float) -> float:
        """One rung down (saturates at the lowest)."""
        index = self.index_of(bitrate)
        return self.bitrates_mbps[max(0, index - 1)]

    def step_up(self, bitrate: float) -> float:
        """One rung up (saturates at the highest)."""
        index = self.index_of(bitrate)
        return self.bitrates_mbps[min(len(self.bitrates_mbps) - 1, index + 1)]


#: A typical premium-VoD ladder (240p ... 1080p-high).
DEFAULT_LADDER = BitrateLadder(
    bitrates_mbps=(0.4, 0.75, 1.5, 3.0, 6.0), chunk_duration_s=4.0
)
