"""Session QoE metrics and the engagement model.

The metrics follow the industry-standard set the paper's authors helped
define (join time, buffering ratio, average bitrate, switch counts);
the engagement model reproduces the published *shape*: viewer
engagement falls steeply with buffering ratio and rises concavely with
bitrate (Dobrian et al. SIGCOMM'11, Krishnan & Sitaraman IMC'12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class QoeMetrics:
    """Summary of one session's experience.

    Attributes:
        session_id: Session key.
        join_time_s: Time from session start to first frame (``None`` if
            the session never started playing).
        play_time_s: Seconds of media actually played.
        rebuffer_time_s: Seconds spent stalled after joining.
        rebuffer_events: Number of distinct stalls.
        mean_bitrate_mbps: Time-weighted average bitrate played.
        bitrate_switches: Number of bitrate changes.
        cdn_switches: Whole-CDN switches (the coarse knob).
        server_switches: Intra-CDN server switches (the EONA fine knob).
        abandoned: Whether the viewer gave up before the content ended.
    """

    session_id: str
    join_time_s: Optional[float] = None
    play_time_s: float = 0.0
    rebuffer_time_s: float = 0.0
    rebuffer_events: int = 0
    mean_bitrate_mbps: float = 0.0
    bitrate_switches: int = 0
    cdn_switches: int = 0
    server_switches: int = 0
    abandoned: bool = False

    @property
    def buffering_ratio(self) -> float:
        denominator = self.play_time_s + self.rebuffer_time_s
        if denominator <= 0:
            return 1.0 if self.join_time_s is None else 0.0
        return self.rebuffer_time_s / denominator

    @property
    def joined(self) -> bool:
        return self.join_time_s is not None


def engagement_terms(
    buffering_ratio: float,
    mean_bitrate_mbps: float,
    join_time_s: float,
    max_bitrate_mbps: float = 6.0,
) -> float:
    """Engagement of one *joined* session, as a pure scalar function.

    This is the single source of the engagement shape: the scalar
    :func:`engagement_score` and the vectorized cohort twin
    (:mod:`repro.cohorts.vecsteps`) both call the same per-term
    arithmetic, so the two paths cannot drift.  All inputs are clamped
    to their meaningful ranges rather than raising: a degenerate ladder
    (``max_bitrate_mbps <= 0``) grants the full bitrate lift, negative
    inputs behave as zero.
    """
    buffering_term = max(0.0, 1.0 - 5.0 * max(0.0, buffering_ratio))
    if max_bitrate_mbps <= 0:
        bitrate_fraction = 1.0
    else:
        bitrate_fraction = min(1.0, max(0.0, mean_bitrate_mbps) / max_bitrate_mbps)
    bitrate_term = 0.7 + 0.3 * math.sqrt(bitrate_fraction)
    join_term = math.exp(-max(0.0, join_time_s) / 10.0) * 0.1 + 0.9
    return max(0.0, min(1.0, buffering_term * bitrate_term * join_term))


def engagement_score(qoe: QoeMetrics, max_bitrate_mbps: float = 6.0) -> float:
    """Viewer engagement in [0, 1] from session QoE.

    Functional shape (matching the published measurement studies):

    * buffering dominates: engagement decays steeply and nearly linearly
      in buffering ratio -- each 1% of buffering costs ~5% engagement,
      saturating at zero near 20% buffering;
    * bitrate helps concavely: sqrt-shaped lift between the lowest and
      highest rung, worth up to ~30% of engagement;
    * slow joins cost a little: an exponential penalty with a 10 s scale;
    * sessions that never join have zero engagement.
    """
    if not qoe.joined:
        return 0.0
    return engagement_terms(
        buffering_ratio=qoe.buffering_ratio,
        mean_bitrate_mbps=qoe.mean_bitrate_mbps,
        join_time_s=qoe.join_time_s if qoe.join_time_s is not None else 0.0,
        max_bitrate_mbps=max_bitrate_mbps,
    )


def summarize(sessions: List[QoeMetrics]) -> dict:
    """Fleet-level QoE aggregates used by experiment tables."""
    if not sessions:
        return {
            "sessions": 0,
            "mean_buffering_ratio": 0.0,
            "mean_bitrate_mbps": 0.0,
            "mean_join_time_s": 0.0,
            "mean_engagement": 0.0,
            "cdn_switches_per_session": 0.0,
            "rebuffer_events_per_session": 0.0,
        }
    joined = [q for q in sessions if q.joined]
    return {
        "sessions": len(sessions),
        "mean_buffering_ratio": sum(q.buffering_ratio for q in sessions) / len(sessions),
        "mean_bitrate_mbps": (
            sum(q.mean_bitrate_mbps for q in joined) / len(joined) if joined else 0.0
        ),
        # No joined session means there is no join time to average; 0.0
        # (not inf/NaN) keeps downstream tables and checks well-defined.
        "mean_join_time_s": (
            sum(q.join_time_s for q in joined) / len(joined) if joined else 0.0
        ),
        "mean_engagement": sum(engagement_score(q) for q in sessions) / len(sessions),
        "cdn_switches_per_session": sum(q.cdn_switches for q in sessions) / len(sessions),
        "rebuffer_events_per_session": (
            sum(q.rebuffer_events for q in sessions) / len(sessions)
        ),
    }
