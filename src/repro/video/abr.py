"""Adaptive bitrate (ABR) algorithms.

Each algorithm maps the player's observations -- recent chunk
throughputs, buffer level, last bitrate -- to the next chunk's bitrate.
All algorithms respect an external *rate cap*: that cap is the hook
EONA-enhanced AppP logic uses to push players down the ladder when the
I2A interface attributes congestion to the access ISP (Figure 3).
"""

from __future__ import annotations

import abc
import math
import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.video.ladder import BitrateLadder


@dataclass
class AbrContext:
    """Inputs to one ABR decision.

    Attributes:
        ladder: The available encodings.
        buffer_level_s: Current buffered media.
        throughput_samples_mbps: Recent chunk throughputs, oldest first.
        last_bitrate_mbps: Previous chunk's bitrate (``None`` on join).
        rate_cap_mbps: External cap from the AppP control logic
            (``inf`` when no guidance is active).
    """

    ladder: BitrateLadder
    buffer_level_s: float
    throughput_samples_mbps: List[float] = field(default_factory=list)
    last_bitrate_mbps: Optional[float] = None
    rate_cap_mbps: float = math.inf

    def throughput_estimate(self) -> float:
        """Harmonic mean of recent samples (robust to spikes); 0 if none."""
        samples = [s for s in self.throughput_samples_mbps if s > 0]
        if not samples:
            return 0.0
        return statistics.harmonic_mean(samples)


class AbrAlgorithm(abc.ABC):
    """Interface every ABR implements."""

    @abc.abstractmethod
    def choose(self, ctx: AbrContext) -> float:
        """Return the bitrate (one of the ladder's rungs) for the next chunk."""

    def _apply_cap(self, bitrate: float, ctx: AbrContext) -> float:
        if math.isfinite(ctx.rate_cap_mbps):
            return min(bitrate, ctx.ladder.highest_at_most(ctx.rate_cap_mbps))
        return bitrate


class RateBasedAbr(AbrAlgorithm):
    """Pick the highest rung below a safety fraction of estimated throughput.

    This is the classic throughput-chasing design whose interaction with
    shared bottlenecks is known to be unstable (the paper cites FESTIVE
    on exactly this point).
    """

    def __init__(self, safety: float = 0.85):
        if not 0 < safety <= 1:
            raise ValueError(f"safety out of range: {safety!r}")
        self.safety = safety

    def choose(self, ctx: AbrContext) -> float:
        estimate = ctx.throughput_estimate()
        if estimate <= 0:
            bitrate = ctx.ladder.lowest
        else:
            bitrate = ctx.ladder.highest_at_most(self.safety * estimate)
        return self._apply_cap(bitrate, ctx)


class BufferBasedAbr(AbrAlgorithm):
    """BBA-style: map buffer occupancy linearly onto the ladder.

    Below the reservoir → lowest rung; above reservoir+cushion → highest
    rung; linear in between.  Throughput is ignored entirely.
    """

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 15.0):
        if reservoir_s < 0 or cushion_s <= 0:
            raise ValueError("reservoir must be >= 0 and cushion > 0")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def choose(self, ctx: AbrContext) -> float:
        rungs = ctx.ladder.bitrates_mbps
        level = ctx.buffer_level_s
        if level <= self.reservoir_s:
            bitrate = rungs[0]
        elif level >= self.reservoir_s + self.cushion_s:
            bitrate = rungs[-1]
        else:
            fraction = (level - self.reservoir_s) / self.cushion_s
            index = min(len(rungs) - 1, int(fraction * len(rungs)))
            bitrate = rungs[index]
        return self._apply_cap(bitrate, ctx)


class BolaAbr(AbrAlgorithm):
    """BOLA: Lyapunov-drift buffer control (Spiteri et al., INFOCOM'16).

    Each decision maximizes ``(V * utility(rung) + V*gamma - buffer) /
    chunk_size`` over the rungs, where utility is the log of the rung's
    relative size.  Pure buffer feedback like BBA, but with a principled
    utility/size trade-off; included as a post-paper ABR to show the
    substrate generalizes beyond the 2014-era algorithms.

    Args:
        gamma_p: Playback-smoothness weight (seconds); larger values
            favour fewer switches.
        buffer_target_s: Buffer level the control parameter ``V`` is
            tuned for.
    """

    def __init__(self, gamma_p: float = 5.0, buffer_target_s: float = 20.0):
        if gamma_p <= 0 or buffer_target_s <= 0:
            raise ValueError("gamma_p and buffer_target_s must be positive")
        self.gamma_p = gamma_p
        self.buffer_target_s = buffer_target_s

    def choose(self, ctx: AbrContext) -> float:
        rungs = ctx.ladder.bitrates_mbps
        utilities = [math.log(rate / rungs[0]) + 1.0 for rate in rungs]
        # V calibrated so the top rung is chosen at the buffer target.
        v = (self.buffer_target_s - ctx.ladder.chunk_duration_s) / (
            utilities[-1] + self.gamma_p / ctx.ladder.chunk_duration_s
        )
        v = max(v, 1e-9)
        best_rate = rungs[0]
        best_score = -math.inf
        for rate, utility in zip(rungs, utilities):
            size = ctx.ladder.chunk_size_mbit(rate)
            score = (
                v * (utility + self.gamma_p / ctx.ladder.chunk_duration_s)
                - ctx.buffer_level_s
            ) / size
            if score > best_score:
                best_score = score
                best_rate = rate
        return self._apply_cap(best_rate, ctx)


class FestiveAbr(AbrAlgorithm):
    """A FESTIVE-flavoured stabilized ABR.

    Uses the harmonic-mean bandwidth estimate, moves at most one rung
    per decision, and requires ``up_patience`` consecutive decisions
    favouring an upgrade before actually upgrading -- trading bitrate
    for stability, as FESTIVE does.
    """

    def __init__(self, safety: float = 0.85, up_patience: int = 3):
        if not 0 < safety <= 1:
            raise ValueError(f"safety out of range: {safety!r}")
        if up_patience < 1:
            raise ValueError(f"up_patience must be >= 1, got {up_patience!r}")
        self.safety = safety
        self.up_patience = up_patience
        self._up_votes = 0

    def choose(self, ctx: AbrContext) -> float:
        estimate = ctx.throughput_estimate()
        target = (
            ctx.ladder.highest_at_most(self.safety * estimate)
            if estimate > 0
            else ctx.ladder.lowest
        )
        last = ctx.last_bitrate_mbps
        if last is None:
            return self._apply_cap(ctx.ladder.lowest, ctx)
        if target > last:
            self._up_votes += 1
            if self._up_votes >= self.up_patience:
                self._up_votes = 0
                return self._apply_cap(ctx.ladder.step_up(last), ctx)
            return self._apply_cap(last, ctx)
        self._up_votes = 0
        if target < last:
            return self._apply_cap(ctx.ladder.step_down(last), ctx)
        return self._apply_cap(last, ctx)
