"""The HTTP adaptive player: mechanics of one video session.

The player owns the download loop, the playback buffer, and the ABR
invocation.  Every *policy* decision -- which CDN, which server, whether
to cap bitrate, when to switch -- is delegated to a
:class:`PlayerPolicy`, because that is precisely where the status-quo
and EONA-enhanced AppP control logics differ.  The player is the same
in both worlds; only the policy changes (paper, §3: EONA does not
change the data plane).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cdn.content import ContentItem
from repro.cdn.provider import Cdn, NoServerAvailableError
from repro.network.fluidsim import FluidNetwork, Transfer
from repro.simkernel.kernel import Simulator
from repro.video.abr import AbrAlgorithm, AbrContext
from repro.video.buffer import PlaybackBuffer
from repro.video.ladder import BitrateLadder
from repro.video.qoe import QoeMetrics


@dataclass(frozen=True)
class SessionAssignment:
    """Initial CDN (and optionally server) for a session."""

    cdn: Cdn
    server_id: Optional[str] = None


@dataclass(frozen=True)
class ChunkRecord:
    """Telemetry for one downloaded chunk (a client-side beacon)."""

    session_id: str
    index: int
    started_at: float
    finished_at: float
    bitrate_mbps: float
    size_mbit: float
    throughput_mbps: float
    cache_hit: bool
    cdn_name: str
    server_id: str
    buffer_level_s: float
    rebuffer_time_s: float


class PlayerPolicy(abc.ABC):
    """The AppP's per-player control logic."""

    @abc.abstractmethod
    def assign(self, player: "AdaptivePlayer") -> SessionAssignment:
        """Choose the initial CDN/server for a starting session."""

    def on_chunk(self, player: "AdaptivePlayer", record: ChunkRecord) -> None:
        """Observe a completed chunk; may switch CDN/server on the player."""

    def rate_cap_mbps(self, player: "AdaptivePlayer") -> float:
        """Current bitrate guidance (``inf`` = no guidance)."""
        return math.inf

    def on_session_end(self, player: "AdaptivePlayer") -> None:
        """Observe a finished/abandoned session."""


class AdaptivePlayer:
    """Downloads chunks sequentially, maintains the buffer, reports QoE.

    Args:
        sim: Simulator.
        network: Fluid network chunks are fetched over.
        session_id: Unique session key.
        client_node: Topology node of the viewer's device.
        content: The title being played (duration defines chunk count).
        ladder: Encoding ladder.
        abr: ABR algorithm instance (per-player; some are stateful).
        policy: The AppP control logic.
        max_buffer_s: Buffer target; downloads pause above it.
        throughput_history: Number of chunk samples fed to the ABR.
        abandon_rebuffer_s: Total stall after which the viewer quits
            (``None`` disables abandonment).
        on_end: Callback fired once when the session finishes.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FluidNetwork,
        session_id: str,
        client_node: str,
        content: ContentItem,
        ladder: BitrateLadder,
        abr: AbrAlgorithm,
        policy: PlayerPolicy,
        max_buffer_s: float = 20.0,
        throughput_history: int = 5,
        abandon_rebuffer_s: Optional[float] = 120.0,
        on_end: Optional[Callable[["AdaptivePlayer"], None]] = None,
    ):
        self.sim = sim
        self.network = network
        self.session_id = session_id
        self.client_node = client_node
        self.content = content
        self.ladder = ladder
        self.abr = abr
        self.policy = policy
        self.max_buffer_s = max_buffer_s
        self.throughput_history = throughput_history
        self.abandon_rebuffer_s = abandon_rebuffer_s
        self.on_end = on_end
        self.retry_delay_s = 2.0
        #: Reconnect penalties: a whole-CDN switch re-resolves and
        #: re-handshakes (new manifest, new connection pool); an
        #: intra-CDN server switch reuses the manifest and only pays a
        #: connection setup.  Applied before the next chunk fetch.
        self.cdn_switch_penalty_s = 1.0
        self.server_switch_penalty_s = 0.25
        self._pending_penalty_s = 0.0

        self.buffer = PlaybackBuffer()
        self.n_chunks = max(1, math.ceil(content.duration_s / ladder.chunk_duration_s))
        self.next_chunk = 0
        self.cdn: Optional[Cdn] = None
        self.chunk_records: List[ChunkRecord] = []
        self.bitrates_played: List[float] = []
        self._throughputs: List[float] = []
        self._last_bitrate: Optional[float] = None
        self._bitrate_switches = 0
        self._cdn_switches = 0
        self._server_switches = 0
        self._abandoned = False
        self._ended = False
        self._current_transfer: Optional[Transfer] = None
        self.started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the session: ask the policy for a CDN, fetch chunk 0."""
        if self.started_at is not None:
            raise RuntimeError(f"session {self.session_id} already started")
        self.started_at = self.sim.now
        self.buffer.bind_clock(self.sim.now)
        assignment = self.policy.assign(self)
        self.cdn = assignment.cdn
        try:
            self.cdn.attach(self.session_id, server_id=assignment.server_id)
        except NoServerAvailableError:
            self._finish(abandoned=True)
            return
        self._fetch_next()

    def switch_server(self, server_id: Optional[str] = None) -> bool:
        """Intra-CDN server switch (the fine-grained EONA knob)."""
        assert self.cdn is not None
        current = self.cdn.server_of(self.session_id)
        exclude = [current.server_id] if current and server_id is None else []
        try:
            self.cdn.attach(self.session_id, exclude=exclude, server_id=server_id)
        except (NoServerAvailableError, KeyError):
            return False
        self._server_switches += 1
        self._pending_penalty_s += self.server_switch_penalty_s
        return True

    def switch_cdn(self, new_cdn: Cdn, server_id: Optional[str] = None) -> bool:
        """Whole-CDN switch (the coarse status-quo knob)."""
        assert self.cdn is not None
        old = self.cdn
        try:
            new_cdn.attach(self.session_id, server_id=server_id)
        except NoServerAvailableError:
            return False
        old.detach(self.session_id)
        self.cdn = new_cdn
        self._cdn_switches += 1
        self._pending_penalty_s += self.cdn_switch_penalty_s
        return True

    # ------------------------------------------------------------------
    # download loop
    # ------------------------------------------------------------------
    def _fetch_next(self) -> None:
        if self._ended:
            return
        if self.next_chunk >= self.n_chunks:
            self._schedule_end_of_playback()
            return
        assert self.cdn is not None
        cap = self.policy.rate_cap_mbps(self)
        ctx = AbrContext(
            ladder=self.ladder,
            buffer_level_s=self._buffer_level(),
            throughput_samples_mbps=list(self._throughputs),
            last_bitrate_mbps=self._last_bitrate,
            rate_cap_mbps=cap,
        )
        bitrate = self.abr.choose(ctx)
        if bitrate not in self.ladder:
            raise ValueError(f"ABR returned off-ladder bitrate {bitrate!r}")
        try:
            served = self._serve_chunk(bitrate)
        except KeyError:
            # Our server was taken away (powered off / re-homed); find a
            # new one, or wait and retry while the buffer drains.
            try:
                self.cdn.attach(self.session_id)
                self._server_switches += 1
            except NoServerAvailableError:
                if (
                    self.abandon_rebuffer_s is not None
                    and self.buffer.rebuffer_time_s >= self.abandon_rebuffer_s
                ):
                    self._finish(abandoned=True)
                else:
                    self.sim.schedule(self.retry_delay_s, self._fetch_next)
                return
            served = self._serve_chunk(bitrate)
        size = self.ladder.chunk_size_mbit(bitrate)
        index = self.next_chunk
        self.next_chunk += 1
        started_at = self.sim.now
        if served.transcode_job is not None:
            # The edge is deriving the rung; download begins once the
            # job completes (its slot is released at that instant).
            job = served.transcode_job

            def begin() -> None:
                job.release()
                self._start_chunk_transfer(
                    served, index, bitrate, size, started_at
                )

            self.sim.schedule(job.latency_s, begin)
        else:
            self._start_chunk_transfer(served, index, bitrate, size, started_at)

    def _start_chunk_transfer(
        self,
        served,
        index: int,
        bitrate: float,
        size: float,
        started_at: float,
    ) -> None:
        if self._ended:
            return
        assert self.cdn is not None
        self._current_transfer = self.network.start_transfer(
            served.src_node,
            self.client_node,
            size_mbit=size,
            on_complete=lambda transfer: self._chunk_done(
                transfer, index, bitrate, size, started_at, served.cache_hit,
                served.server_id,
            ),
            demand_mbps=served.rate_cap_mbps,
            via=served.via_node,
            owner=self.cdn.name,
        )

    def _chunk_done(
        self,
        transfer: Transfer,
        index: int,
        bitrate: float,
        size: float,
        started_at: float,
        cache_hit: bool,
        server_id: str,
    ) -> None:
        if self._ended:
            return
        now = self.sim.now
        self._current_transfer = None
        duration = max(1e-9, now - started_at)
        throughput = size / duration
        self._throughputs.append(throughput)
        if len(self._throughputs) > self.throughput_history:
            self._throughputs.pop(0)
        if self._last_bitrate is not None and bitrate != self._last_bitrate:
            self._bitrate_switches += 1
        self._last_bitrate = bitrate
        self.bitrates_played.append(bitrate)
        self.buffer.add_chunk(self.ladder.chunk_duration_s, now)
        record = ChunkRecord(
            session_id=self.session_id,
            index=index,
            started_at=started_at,
            finished_at=now,
            bitrate_mbps=bitrate,
            size_mbit=size,
            throughput_mbps=throughput,
            cache_hit=cache_hit,
            cdn_name=self.cdn.name if self.cdn else "",
            server_id=server_id,
            buffer_level_s=self.buffer.level_s,
            rebuffer_time_s=self.buffer.rebuffer_time_s,
        )
        self.chunk_records.append(record)
        self.policy.on_chunk(self, record)
        if self._ended:
            return
        if (
            self.abandon_rebuffer_s is not None
            and self.buffer.rebuffer_time_s >= self.abandon_rebuffer_s
        ):
            self._finish(abandoned=True)
            return
        overflow = self.buffer.level_s + self.ladder.chunk_duration_s - self.max_buffer_s
        delay = max(0.0, overflow) + self._pending_penalty_s
        self._pending_penalty_s = 0.0
        if delay > 0:
            self.sim.schedule(delay, self._fetch_next)
        else:
            self._fetch_next()

    def _serve_chunk(self, bitrate: float):
        assert self.cdn is not None
        base_key = f"{self.content.content_id}#{self.next_chunk}"
        if self.cdn.transcoder is None:
            # Bitrate-agnostic caching: one entry covers all rungs.
            return self.cdn.serve_chunk(
                self.session_id,
                self.content,
                chunk_key=base_key,
                chunk_mbit=self.content.size_mbit / self.n_chunks,
            )
        # Transcoding CDN: rungs are cached separately, and any cached
        # higher rung (best first) can be derived down at the edge.
        fallbacks = [
            f"{base_key}@{rung}"
            for rung in sorted(self.ladder.bitrates_mbps, reverse=True)
            if rung > bitrate
        ]
        return self.cdn.serve_chunk(
            self.session_id,
            self.content,
            chunk_key=f"{base_key}@{bitrate}",
            chunk_mbit=self.ladder.chunk_size_mbit(bitrate),
            fallback_keys=fallbacks,
            media_duration_s=self.ladder.chunk_duration_s,
        )

    def _schedule_end_of_playback(self) -> None:
        remaining = self.buffer.drain_remaining(self.sim.now)
        self.sim.schedule(remaining, self._finish, False)

    def _finish(self, abandoned: bool) -> None:
        if self._ended:
            return
        self._ended = True
        self._abandoned = abandoned
        self.buffer.advance(self.sim.now)
        if self._current_transfer is not None and not self._current_transfer.done:
            self.network.abort(self._current_transfer)
            self._current_transfer = None
        if self.cdn is not None:
            self.cdn.detach(self.session_id)
        self.policy.on_session_end(self)
        if self.on_end is not None:
            self.on_end(self)

    def abort(self) -> None:
        """Externally terminate the session (e.g. viewer closes the tab)."""
        self._finish(abandoned=True)

    # ------------------------------------------------------------------
    # state & results
    # ------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self._ended

    def _buffer_level(self) -> float:
        self.buffer.advance(self.sim.now)
        return self.buffer.level_s

    def qoe(self) -> QoeMetrics:
        """Session QoE snapshot (final once the session has ended)."""
        mean_bitrate = (
            sum(self.bitrates_played) / len(self.bitrates_played)
            if self.bitrates_played
            else 0.0
        )
        return QoeMetrics(
            session_id=self.session_id,
            join_time_s=self.buffer.join_time_s,
            play_time_s=self.buffer.play_time_s,
            rebuffer_time_s=self.buffer.rebuffer_time_s,
            rebuffer_events=self.buffer.rebuffer_events,
            mean_bitrate_mbps=mean_bitrate,
            bitrate_switches=self._bitrate_switches,
            cdn_switches=self._cdn_switches,
            server_switches=self._server_switches,
            abandoned=self._abandoned,
        )
