"""HTTP adaptive video streaming substrate.

Implements the client-side machinery the paper's video scenarios are
built around: a bitrate ladder, playback-buffer dynamics with exact
stall accounting, pluggable ABR algorithms (rate-based, buffer-based,
and a FESTIVE-style stabilized variant), and an adaptive player whose
CDN/server/bitrate knobs are delegated to a policy object -- the AppP
control logic, which is where status quo and EONA differ.
"""

from repro.video.ladder import DEFAULT_LADDER, BitrateLadder
from repro.video.buffer import PlaybackBuffer
from repro.video.abr import (
    AbrAlgorithm,
    AbrContext,
    BolaAbr,
    BufferBasedAbr,
    FestiveAbr,
    RateBasedAbr,
)
from repro.video.qoe import QoeMetrics, engagement_score
from repro.video.player import AdaptivePlayer, ChunkRecord, PlayerPolicy, SessionAssignment

__all__ = [
    "AbrAlgorithm",
    "AbrContext",
    "AdaptivePlayer",
    "BitrateLadder",
    "BolaAbr",
    "BufferBasedAbr",
    "ChunkRecord",
    "DEFAULT_LADDER",
    "FestiveAbr",
    "PlaybackBuffer",
    "PlayerPolicy",
    "QoeMetrics",
    "RateBasedAbr",
    "SessionAssignment",
    "engagement_score",
]
