"""Prioritized flow table used by each switch."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sdn.messages import Match


@dataclass
class TableEntry:
    """One forwarding rule: match → next hop."""

    match: Match
    next_hop: str
    priority: int = 0
    cookie: str = ""
    hit_count: int = 0

    def sort_key(self):
        # Highest specificity first, then highest priority, so an exact
        # (src, dst, group) rule beats a group-wide default.
        return (-self.match.specificity, -self.priority)


class FlowTable:
    """An ordered rule set with longest-match-wins semantics."""

    def __init__(self) -> None:
        self._entries: List[TableEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[TableEntry]:
        return list(self._entries)

    def install(self, entry: TableEntry) -> None:
        """Add or replace the rule with the same match."""
        self.remove(entry.match)
        self._entries.append(entry)
        self._entries.sort(key=TableEntry.sort_key)

    def remove(self, match: Match) -> bool:
        """Delete the rule with exactly this match; returns whether one existed."""
        for index, entry in enumerate(self._entries):
            if entry.match == match:
                del self._entries[index]
                return True
        return False

    def remove_by_cookie(self, cookie: str) -> int:
        """Delete all rules carrying ``cookie``; returns how many were removed."""
        before = len(self._entries)
        self._entries = [entry for entry in self._entries if entry.cookie != cookie]
        return before - len(self._entries)

    def lookup(self, src: str, dst: str, group: str) -> Optional[TableEntry]:
        """Best-matching entry for the given traffic, or ``None``."""
        for entry in self._entries:
            if entry.match.matches(src, dst, group):
                entry.hit_count += 1
                return entry
        return None
