"""SDN-style control plane for the infrastructure provider.

The paper positions SDN as one of the technology "pushes" that makes
EONA deployable: the InfP's knobs (paths, peering points, traffic
splits) become programmable.  This package provides an OpenFlow-flavour
substrate -- switches with prioritized flow tables, a controller that
installs path rules, a periodic statistics service -- and a traffic
engineering application whose egress-selection knob is exactly the one
that oscillates in Figure 5.
"""

from repro.sdn.messages import FlowMod, FlowRemoved, Match, PortStats, StatsReply
from repro.sdn.flowtable import FlowTable, TableEntry
from repro.sdn.switch import Switch
from repro.sdn.controller import SdnController
from repro.sdn.stats import LinkObservation, StatsService
from repro.sdn.te import EgressGroup, TrafficEngineeringApp

__all__ = [
    "EgressGroup",
    "FlowMod",
    "FlowRemoved",
    "FlowTable",
    "LinkObservation",
    "Match",
    "PortStats",
    "SdnController",
    "StatsReply",
    "StatsService",
    "Switch",
    "TableEntry",
    "TrafficEngineeringApp",
]
