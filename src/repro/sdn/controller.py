"""The InfP's SDN controller.

The controller owns a switch per InfP-owned router, installs path
rules (a FlowMod per on-path switch), and resolves data-plane paths by
walking flow tables hop by hop -- falling back to shortest-path
forwarding at nodes with no matching rule, like a hybrid SDN/IGP
deployment.  Applications (the TE app, the EONA InfP control logic)
program traffic groups through it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.network.fluidsim import FluidNetwork
from repro.network.routing import NoRouteError
from repro.obs.trace import TRACER
from repro.sdn.messages import FlowMod, FlowModCommand, Match
from repro.sdn.switch import Switch


class ForwardingLoopError(Exception):
    """Raised when flow-table walking revisits a node."""


class SdnController:
    """Installs and resolves forwarding state on InfP switches.

    Args:
        network: The fluid network (provides topology and routing).
        owner: Only nodes with this owner get a switch; other providers'
            nodes stay outside the controller's domain, reflecting the
            federated setting the paper insists on.
    """

    def __init__(self, network: FluidNetwork, owner: str = ""):
        self.network = network
        self.owner = owner
        self.switches: Dict[str, Switch] = {}
        for node in network.topology.nodes(owner=owner if owner else None):
            self.switches[node.node_id] = Switch(
                switch_id=f"sw.{node.node_id}", node_id=node.node_id, network=network
            )
        self.flow_mods_sent = 0
        #: Cause ID of the control decision driving the next installs
        #: (set by the owning control logic, e.g. the EONA InfP's
        #: demand-informed TE round); traced ``infp-reroute`` events
        #: carry it as ``parent``.  Purely observational.
        self.pending_parent: Optional[int] = None

    def has_switch(self, node_id: str) -> bool:
        return node_id in self.switches

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------
    def install_path(
        self,
        node_path: List[str],
        match: Match,
        priority: int = 0,
        cookie: str = "",
    ) -> int:
        """Install forwarding for ``match`` along ``node_path``.

        Only nodes the controller owns receive rules; the rest of the
        path relies on default forwarding.  Returns the number of
        FlowMods sent.
        """
        sent = 0
        for node, next_hop in zip(node_path, node_path[1:]):
            switch = self.switches.get(node)
            if switch is None:
                continue
            switch.handle_flow_mod(
                FlowMod(
                    command=FlowModCommand.ADD,
                    match=match,
                    next_hop=next_hop,
                    priority=priority,
                    cookie=cookie,
                )
            )
            sent += 1
        self.flow_mods_sent += sent
        if TRACER.enabled:
            extra: Dict[str, object] = (
                {} if self.pending_parent is None else {"parent": self.pending_parent}
            )
            TRACER.emit(
                "infp-reroute",
                cause=TRACER.new_cause(),
                owner=self.owner,
                path=list(node_path),
                group=match.group,
                cookie=cookie,
                priority=priority,
                rules_sent=sent,
                **extra,
            )
        return sent

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every rule installed under ``cookie``."""
        removed = 0
        for switch in self.switches.values():
            removed += switch.table.remove_by_cookie(cookie)
        return removed

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_path(self, src: str, dst: str, group: str = "") -> List[str]:
        """Walk flow tables from ``src`` to ``dst`` for ``group`` traffic.

        At nodes without a switch or matching rule, forwarding falls
        back to the next hop of the delay-shortest path.  Raises
        :class:`ForwardingLoopError` on a loop (a misprogrammed table).
        """
        path = [src]
        visited: Set[str] = {src}
        current = src
        while current != dst:
            next_hop = self._next_hop(current, src, dst, group)
            if next_hop in visited:
                raise ForwardingLoopError(
                    f"loop at {next_hop!r} resolving {src!r}->{dst!r} group={group!r}"
                )
            path.append(next_hop)
            visited.add(next_hop)
            current = next_hop
        return path

    def _next_hop(self, current: str, src: str, dst: str, group: str) -> str:
        switch = self.switches.get(current)
        if switch is not None:
            hop = switch.next_hop(src, dst, group)
            if hop is not None:
                return hop
        try:
            shortest = self.network.router.shortest_path(current, dst)
        except NoRouteError:
            raise
        return shortest[1]
