"""Traffic engineering: the InfP's egress/peering-selection knob.

An :class:`EgressGroup` describes one aggregate the ISP steers -- e.g.
"all traffic exchanged with CDN X" -- together with its candidate
peering points and, per candidate, the link whose load reflects that
choice.  The :class:`TrafficEngineeringApp` runs periodically, asks a
pluggable *policy* where each group should egress, and programs the
decision into the network (flow rules + rerouting of live flows).

Two policies matter for the reproduction:

* the **greedy reactive** policy (default): move a group away from its
  current peering as soon as that peering link looks congested, to the
  currently least-loaded alternative.  Combined with an AppP that
  switches CDNs on bad QoE, this is exactly the Figure 5 oscillator.
* the **EONA-informed** policy lives in :mod:`repro.core.infp`: it uses
  A2I demand estimates to place groups so that no peering link is
  overloaded, and publishes its decision over I2A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.network.fluidsim import FluidNetwork
from repro.sdn.controller import SdnController
from repro.sdn.messages import Match
from repro.sdn.stats import StatsService
from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess


@dataclass
class EgressGroup:
    """One steerable traffic aggregate.

    Attributes:
        name: Group label; flows tagged with this owner are steered.
        remote: The far-end node (e.g. the CDN's entry node).
        candidates: Peering node ids the group may egress through.
        egress_links: For each candidate, the link id whose utilization
            represents choosing it (normally the peering link in the
            content-to-client direction).
        selection: Current choice; ``None`` until the first decision.
        preferred: Economically preferred candidate (e.g. the cheap
            local peering point B in Figure 5); the greedy policy
            returns to it whenever it looks uncongested, which is one
            half of the oscillation.
    """

    name: str
    remote: str
    candidates: List[str]
    egress_links: Dict[str, str]
    selection: Optional[str] = None
    preferred: Optional[str] = None
    #: When the policy splits the group across peerings (§4's third
    #: knob), the current normalized weights; ``None`` = single egress.
    split: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError(f"group {self.name}: needs at least one candidate")
        missing = [c for c in self.candidates if c not in self.egress_links]
        if missing:
            raise ValueError(f"group {self.name}: no egress link for {missing}")


@dataclass(frozen=True)
class TeDecision:
    """One logged re-selection event."""

    time: float
    group: str
    old: Optional[str]
    new: str


PolicyFn = Callable[["TrafficEngineeringApp", EgressGroup], str]


def greedy_reactive_policy(app: "TrafficEngineeringApp", group: EgressGroup) -> str:
    """Status-quo policy: flee congestion, chase the emptiest link.

    Uses only the InfP's own polled link stats -- no application
    visibility, no memory.  This is the behaviour that oscillates in
    Figure 5.
    """
    current = group.selection or group.candidates[0]
    current_util = app.stats.utilization(group.egress_links[current])
    if current_util >= app.congestion_threshold:
        return min(
            group.candidates,
            key=lambda candidate: app.stats.utilization(group.egress_links[candidate]),
        )
    if group.preferred is not None and group.preferred != current:
        preferred_util = app.stats.utilization(group.egress_links[group.preferred])
        if preferred_util < app.congestion_threshold:
            return group.preferred
    return current


class TrafficEngineeringApp:
    """Periodic egress selection over a set of groups.

    Args:
        sim: Simulator.
        network: Fluid network whose via-policy the app programs.
        controller: SDN controller used to mirror decisions into flow
            tables (so the data plane state is inspectable over I2A).
        stats: The stats service supplying link utilization.
        groups: Groups to manage.
        period: Control period in seconds (ISP TE runs on minutes).
        policy: Decision function; defaults to the greedy reactive one.
        congestion_threshold: Utilization treated as congested.
        damper: Optional adaptive damper
            (:class:`repro.core.oscillation.AdaptiveDamper`); when a
            group's egress decision starts flapping, further changes
            must respect its backoff.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FluidNetwork,
        controller: SdnController,
        stats: StatsService,
        groups: List[EgressGroup],
        period: float = 60.0,
        policy: Optional[PolicyFn] = None,
        congestion_threshold: float = 0.9,
        damper=None,
    ):
        self.sim = sim
        self.network = network
        self.controller = controller
        self.stats = stats
        self.groups = {group.name: group for group in groups}
        self.policy: PolicyFn = policy or greedy_reactive_policy
        self.congestion_threshold = congestion_threshold
        self.damper = damper
        self.decisions: List[TeDecision] = []
        self._process = PeriodicProcess(sim, period, self.control_step, name="te")
        # Apply initial selections immediately so traffic has a policy
        # from t=0 (candidates[0] unless the group pre-sets one).
        for group in groups:
            self._apply(group, group.selection or group.candidates[0], log=False)

    def stop(self) -> None:
        self._process.stop()

    @property
    def period(self) -> float:
        return self._process.period

    def set_period(self, period: float) -> None:
        self._process.set_period(period)

    def control_step(self) -> None:
        """One TE round: poll stats implicitly, re-decide every group.

        A policy may answer with a single candidate (egress selection)
        or a ``{candidate: weight}`` dict (a traffic split across the
        peering points, §4's third knob).
        """
        for group in self.groups.values():
            choice = self.policy(self, group)
            if isinstance(choice, dict):
                unknown = [c for c in choice if c not in group.candidates]
                if unknown:
                    raise ValueError(
                        f"policy split uses non-candidates {unknown!r} "
                        f"for {group.name!r}"
                    )
                if choice != group.split:
                    key = tuple(sorted(choice.items()))
                    if self._damper_allows(group.name, key):
                        self._apply_split(group, choice)
                        self._damper_record(group.name, key)
                continue
            if choice not in group.candidates:
                raise ValueError(
                    f"policy chose {choice!r}, not a candidate of {group.name!r}"
                )
            if choice != group.selection or group.split is not None:
                if self._damper_allows(group.name, choice):
                    self._apply(group, choice, log=True)
                    self._damper_record(group.name, choice)

    def _damper_allows(self, group_name: str, value) -> bool:
        if self.damper is None:
            return True
        return self.damper.allow(f"te:{group_name}", value)

    def _damper_record(self, group_name: str, value) -> None:
        if self.damper is not None:
            self.damper.record(f"te:{group_name}", value)

    def selection(self, group_name: str) -> Optional[str]:
        return self.groups[group_name].selection

    def switch_count(self, group_name: Optional[str] = None) -> int:
        """Number of logged re-selections (the oscillation metric)."""
        if group_name is None:
            return len(self.decisions)
        return sum(1 for d in self.decisions if d.group == group_name)

    def egress_utilization(self, group_name: str) -> Dict[str, float]:
        """Current polled utilization of each candidate's egress link."""
        group = self.groups[group_name]
        return {
            candidate: self.stats.utilization(group.egress_links[candidate])
            for candidate in group.candidates
        }

    def _apply_split(self, group: EgressGroup, weights: Dict[str, float]) -> None:
        """Program a weighted split across the group's peering points."""
        self.decisions.append(
            TeDecision(
                time=self.sim.now,
                group=group.name,
                old=group.selection,
                new="split:" + ",".join(
                    f"{via}={weight:.2f}" for via, weight in sorted(weights.items())
                ),
            )
        )
        group.split = dict(weights)
        group.selection = max(weights, key=lambda via: weights[via])
        self.network.set_split_policy(group.name, weights)

    def _apply(self, group: EgressGroup, choice: str, log: bool) -> None:
        if log:
            self.decisions.append(
                TeDecision(
                    time=self.sim.now, group=group.name, old=group.selection, new=choice
                )
            )
        group.selection = choice
        group.split = None
        # Program the data plane: via-policy steers fluid flows; the
        # mirrored flow rules make the decision visible via the
        # controller (and hence exportable over I2A).
        self.network.set_via_policy(group.name, choice)
        try:
            node_path = self.network.router.shortest_path(group.remote, choice)
        except Exception:
            node_path = [group.remote, choice]
        self.controller.remove_by_cookie(f"te:{group.name}")
        self.controller.install_path(
            node_path,
            Match(group=group.name),
            priority=10,
            cookie=f"te:{group.name}",
        )
