"""Control-channel message types (OpenFlow-flavoured, simplified).

The match model is intentionally small: traffic in this reproduction is
identified by source node, destination node, and a *traffic group*
label (e.g. ``"cdnX"``) rather than full IP 5-tuples, because that is
the granularity at which the paper's InfP knobs operate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


_WILDCARD = None


@dataclass(frozen=True)
class Match:
    """Wildcard-able match over (src, dst, group).

    ``None`` in a field matches anything.  Specificity is the number of
    concrete fields; the flow table prefers higher specificity, then
    higher explicit priority.
    """

    src: Optional[str] = _WILDCARD
    dst: Optional[str] = _WILDCARD
    group: Optional[str] = _WILDCARD

    def matches(self, src: str, dst: str, group: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.group is None or self.group == group)
        )

    @property
    def specificity(self) -> int:
        return sum(value is not None for value in (self.src, self.dst, self.group))


class FlowModCommand(enum.Enum):
    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """Install/modify/delete a forwarding rule on a switch.

    ``next_hop`` is the action: forward matching traffic toward that
    neighbour.  A path installation is a sequence of FlowMods, one per
    switch on the path.
    """

    command: FlowModCommand
    match: Match
    next_hop: Optional[str] = None
    priority: int = 0
    cookie: str = ""


@dataclass(frozen=True)
class FlowRemoved:
    """Notification sent to the controller when a rule is deleted."""

    match: Match
    cookie: str
    switch_id: str


@dataclass(frozen=True)
class PortStats:
    """Per-link counters as a switch reports them."""

    link_id: str
    load_mbps: float
    capacity_mbps: float
    mbit_carried: float

    @property
    def utilization(self) -> float:
        if self.capacity_mbps <= 0:
            return 0.0
        return self.load_mbps / self.capacity_mbps


@dataclass(frozen=True)
class StatsReply:
    """A switch's answer to a stats request."""

    switch_id: str
    time: float
    ports: Tuple[PortStats, ...] = ()

    def port(self, link_id: str) -> Optional[PortStats]:
        for stats in self.ports:
            if stats.link_id == link_id:
                return stats
        return None
