"""A switch: one topology node with a flow table and port counters."""

from __future__ import annotations

from typing import List, Optional

from repro.network.fluidsim import FluidNetwork
from repro.sdn.flowtable import FlowTable, TableEntry
from repro.sdn.messages import (
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    PortStats,
    StatsReply,
)


class Switch:
    """Data-plane element attached to a topology node.

    Forwarding state lives in the flow table; counters are read from the
    fluid network's per-link statistics, the same way a hardware switch
    exposes port counters that an OpenFlow controller polls.
    """

    def __init__(self, switch_id: str, node_id: str, network: FluidNetwork):
        self.switch_id = switch_id
        self.node_id = node_id
        self.network = network
        self.table = FlowTable()
        self._removed_log: List[FlowRemoved] = []

    def handle_flow_mod(self, mod: FlowMod) -> None:
        """Apply a FlowMod from the controller."""
        if mod.command in (FlowModCommand.ADD, FlowModCommand.MODIFY):
            if mod.next_hop is None:
                raise ValueError("ADD/MODIFY FlowMod requires a next_hop")
            self._validate_next_hop(mod.next_hop)
            self.table.install(
                TableEntry(
                    match=mod.match,
                    next_hop=mod.next_hop,
                    priority=mod.priority,
                    cookie=mod.cookie,
                )
            )
        elif mod.command is FlowModCommand.DELETE:
            if self.table.remove(mod.match):
                self._removed_log.append(
                    FlowRemoved(match=mod.match, cookie=mod.cookie, switch_id=self.switch_id)
                )
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown FlowMod command {mod.command!r}")

    def next_hop(self, src: str, dst: str, group: str) -> Optional[str]:
        """Where this switch forwards the given traffic, or ``None``."""
        entry = self.table.lookup(src, dst, group)
        return entry.next_hop if entry else None

    def stats_reply(self, now: float) -> StatsReply:
        """Current counters for every outgoing link of this node."""
        ports = []
        for link in self.network.topology.links():
            if link.src != self.node_id:
                continue
            stats = self.network.link_stats[link.link_id]
            ports.append(
                PortStats(
                    link_id=link.link_id,
                    load_mbps=stats.current_load_mbps,
                    capacity_mbps=stats.capacity_mbps,
                    mbit_carried=stats.mbit_carried,
                )
            )
        return StatsReply(switch_id=self.switch_id, time=now, ports=tuple(ports))

    def drain_removed(self) -> List[FlowRemoved]:
        """FlowRemoved notifications since the last drain."""
        log, self._removed_log = self._removed_log, []
        return log

    def _validate_next_hop(self, next_hop: str) -> None:
        try:
            self.network.topology.link_between(self.node_id, next_hop)
        except KeyError as exc:
            raise ValueError(
                f"switch {self.switch_id}: no link {self.node_id!r}->{next_hop!r}"
            ) from exc
