"""Periodic statistics collection (the controller's measurement loop).

The stats service polls every switch at a fixed period, keeps a bounded
history of per-link observations, and maintains an EWMA congestion
detector per link.  This is the *network-level* visibility the paper
says InfPs are limited to today; the EONA-I2A congestion hints are
published from exactly this state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.network.linkstats import CongestionDetector
from repro.sdn.controller import SdnController
from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess


@dataclass(frozen=True)
class LinkObservation:
    """One polled sample of a link."""

    time: float
    link_id: str
    load_mbps: float
    capacity_mbps: float
    utilization: float


class StatsService:
    """Polls switches periodically and exposes recent link state.

    Args:
        sim: Simulator.
        controller: The controller whose switches to poll.
        period: Poll interval in seconds.
        history: Number of samples retained per link.
        congestion_threshold: EWMA utilization at which a link is
            declared congested.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: SdnController,
        period: float = 5.0,
        history: int = 120,
        congestion_threshold: float = 0.9,
    ):
        self.sim = sim
        self.controller = controller
        self.period = period
        self.history = history
        self.congestion_threshold = congestion_threshold
        self._samples: Dict[str, Deque[LinkObservation]] = {}
        self._detectors: Dict[str, CongestionDetector] = {}
        self.polls = 0
        self._process = PeriodicProcess(sim, period, self.poll_once, name="stats")

    def stop(self) -> None:
        self._process.stop()

    def reset(self) -> None:
        """Forget all samples and detector smoothing (restart semantics).

        The polling process keeps running; history rebuilds from the
        next poll, exactly as a freshly restarted stats service would.
        """
        self._samples.clear()
        self._detectors.clear()

    def poll_once(self) -> None:
        """Collect one sample from every switch (also runs periodically)."""
        self.polls += 1
        now = self.sim.now
        for switch in self.controller.switches.values():
            reply = switch.stats_reply(now)
            for port in reply.ports:
                observation = LinkObservation(
                    time=now,
                    link_id=port.link_id,
                    load_mbps=port.load_mbps,
                    capacity_mbps=port.capacity_mbps,
                    utilization=port.utilization,
                )
                samples = self._samples.setdefault(
                    port.link_id, deque(maxlen=self.history)
                )
                samples.append(observation)
                detector = self._detectors.get(port.link_id)
                if detector is None:
                    detector = CongestionDetector(threshold=self.congestion_threshold)
                    self._detectors[port.link_id] = detector
                detector.observe(port.utilization)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def latest(self, link_id: str) -> Optional[LinkObservation]:
        samples = self._samples.get(link_id)
        return samples[-1] if samples else None

    def samples_for(self, link_id: str) -> List[LinkObservation]:
        return list(self._samples.get(link_id, ()))

    def utilization(self, link_id: str) -> float:
        """Most recent polled utilization (0 if never observed)."""
        latest = self.latest(link_id)
        return latest.utilization if latest else 0.0

    def smoothed_utilization(self, link_id: str) -> float:
        detector = self._detectors.get(link_id)
        return detector.smoothed if detector else 0.0

    def is_congested(self, link_id: str) -> bool:
        detector = self._detectors.get(link_id)
        return detector.congested if detector else False

    def congested_links(self) -> List[str]:
        return [
            link_id
            for link_id, detector in self._detectors.items()
            if detector.congested
        ]
