"""The fluid flow-level network simulator.

:class:`FluidNetwork` binds a topology to a simulator.  Transfers and
persistent streams become :class:`~repro.network.flows.Flow` objects;
whenever the flow set, a demand, or a link capacity changes the network
tells its :class:`~repro.network.allocator.AllocationEngine` what
changed, and the engine re-solves only the affected component of the
flow–link graph, updating link statistics for the links whose load
moved and rescheduling the next completion event.  Between changes all
flows progress fluidly at constant rates, so the simulation cost scales
with the number and *locality* of changes, not with transferred bytes.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.network.allocator import AllocationEngine, EngineConfig
from repro.network.flows import Flow, FlowState
from repro.network.linkstats import LinkStats
from repro.network.routing import Router
from repro.network.topology import Link, Topology
from repro.simkernel.kernel import Simulator

_EPS = 1e-9


class Transfer:
    """User-facing handle for a flow started on a :class:`FluidNetwork`."""

    __slots__ = ("flow", "on_complete", "network")

    def __init__(
        self,
        flow: Flow,
        network: "FluidNetwork",
        on_complete: Optional[Callable[["Transfer"], None]],
    ) -> None:
        self.flow = flow
        self.network = network
        self.on_complete = on_complete

    @property
    def done(self) -> bool:
        return self.flow.done

    @property
    def rate_mbps(self) -> float:
        return self.flow.rate_mbps

    @property
    def remaining_mbit(self) -> float:
        return self.flow.remaining_mbit

    @property
    def duration(self) -> Optional[float]:
        if self.flow.finished_at is None:
            return None
        return self.flow.finished_at - self.flow.started_at

    def mean_throughput_mbps(self) -> Optional[float]:
        """Size over duration for completed finite transfers."""
        duration = self.duration
        if duration is None or self.flow.size_mbit is None:
            return None
        if duration <= 0:
            return math.inf
        return self.flow.size_mbit / duration

    def __repr__(self) -> str:
        return f"Transfer({self.flow!r})"


class _SplitState:
    """Deterministic weighted assignment of flows to via nodes."""

    __slots__ = ("weights", "assigned")

    def __init__(self, weights: Dict[str, float]) -> None:
        self.weights = weights
        self.assigned: Dict[str, int] = {via: 0 for via in weights}

    def next_via(self) -> str:
        """The via with the largest weight deficit gets the next flow.

        Ties break toward the lexicographically smallest via name, made
        explicit in the sort key so assignment order is deterministic
        across runs and Python versions.
        """
        total = sum(self.assigned.values()) + 1
        choice = min(
            self.weights,
            key=lambda via: (self.assigned[via] - self.weights[via] * total, via),
        )
        self.assigned[choice] += 1
        return choice


class FluidNetwork:
    """Flow-level network simulation over a topology.

    Args:
        sim: Simulator providing the clock and event queue.
        topology: The (mutable-capacity) topology.
        max_rate_mbps: Cap applied to any single flow, standing in for
            end-host NIC limits and keeping rates finite.  Ignored when
            ``engine_config`` is given (the config carries the cap).
        engine_config: Allocation-engine tuning; defaults to an
            incremental engine with ``max_rate_mbps`` as the flow cap.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        max_rate_mbps: float = 1e5,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.router = Router(topology)
        if engine_config is None:
            engine_config = EngineConfig(max_rate_mbps=max_rate_mbps)
        self.engine = AllocationEngine(engine_config)
        self._flows: Dict[str, Flow] = {}
        self._transfers: Dict[str, Transfer] = {}
        self._via_policy: Dict[str, str] = {}
        self._split_policy: Dict[str, _SplitState] = {}
        self._flow_counter = itertools.count()
        self._epoch = 0
        self._completion_scheduled = False
        self.link_stats: Dict[str, LinkStats] = {
            link.link_id: LinkStats(link.link_id, link.capacity_mbps)
            for link in topology.links()
        }
        self.completed_transfers = 0

    @property
    def max_rate_mbps(self) -> float:
        """Per-flow rate cap (lives in the engine config)."""
        return self.engine.config.max_rate_mbps

    def allocation_counters(self) -> Dict[str, int]:
        """Engine + routing-cache counters for benchmarks and tests."""
        counters = self.engine.counters.as_dict()
        counters["router_cache_hits"] = self.router.cache_hits
        counters["router_cache_misses"] = self.router.cache_misses
        return counters

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start_transfer(
        self,
        src: str,
        dst: str,
        size_mbit: float,
        on_complete: Optional[Callable[[Transfer], None]] = None,
        demand_mbps: float = math.inf,
        via: Optional[str] = None,
        path: Optional[List[str]] = None,
        owner: str = "",
        weight: float = 1.0,
    ) -> Transfer:
        """Start a finite transfer of ``size_mbit`` from ``src`` to ``dst``.

        Routing: an explicit node ``path`` wins; otherwise the shortest
        path (optionally constrained through ``via``) is used.
        ``on_complete`` fires, at the completion instant, with the
        transfer handle.
        """
        return self._start(
            src, dst, size_mbit, on_complete, demand_mbps, via, path, owner, weight
        )

    def start_stream(
        self,
        src: str,
        dst: str,
        demand_mbps: float,
        via: Optional[str] = None,
        path: Optional[List[str]] = None,
        owner: str = "",
        weight: float = 1.0,
    ) -> Transfer:
        """Start a persistent stream that runs until :meth:`abort`.

        ``weight`` sets the flow's fair-share weight (see
        :class:`~repro.network.flows.Flow`); a cohort stream carrying
        *n* sessions competes with weight *n*.
        """
        return self._start(src, dst, None, None, demand_mbps, via, path, owner, weight)

    def abort(self, transfer: Transfer) -> None:
        """Stop a flow without completing it.  Idempotent."""
        flow = transfer.flow
        if flow.done:
            return
        self._sync_to_now()
        flow.state = FlowState.ABORTED
        flow.finished_at = self.sim.now
        self._flows.pop(flow.flow_id, None)
        self._transfers.pop(flow.flow_id, None)
        self.engine.remove_flow(flow)
        self._reallocate()

    def set_demand(self, transfer: Transfer, demand_mbps: float) -> None:
        """Change a flow's rate cap (e.g. a player switching bitrate)."""
        if demand_mbps <= 0:
            raise ValueError(f"demand must be positive, got {demand_mbps!r}")
        if transfer.flow.done:
            return
        self._sync_to_now()
        transfer.flow.demand_mbps = demand_mbps
        self.engine.update_demand(transfer.flow)
        self._reallocate()

    def set_weight(self, transfer: Transfer, weight: float) -> None:
        """Change a flow's fair-share weight (e.g. a cohort's head count)."""
        if weight <= 0 or not math.isfinite(weight):
            raise ValueError(f"weight must be positive and finite, got {weight!r}")
        if transfer.flow.done:
            return
        self._sync_to_now()
        transfer.flow.weight = weight
        self.engine.update_weight(transfer.flow)
        self._reallocate()

    def update_streams(
        self,
        updates: Iterable[Tuple[Transfer, float, Optional[float]]],
    ) -> None:
        """Apply many ``(transfer, demand, weight)`` changes in one solve.

        ``weight`` may be ``None`` to leave a flow's weight unchanged.
        Routing each change through :meth:`set_demand` would trigger one
        reallocation per flow; the cohort engine updates every cohort
        stream once per tick, so batching keeps that tick at a single
        solve of the affected component.
        """
        self._sync_to_now()
        dirty = False
        for transfer, demand_mbps, weight in updates:
            flow = transfer.flow
            if flow.done:
                continue
            if demand_mbps <= 0:
                raise ValueError(f"demand must be positive, got {demand_mbps!r}")
            if weight is not None:
                if weight <= 0 or not math.isfinite(weight):
                    raise ValueError(
                        f"weight must be positive and finite, got {weight!r}"
                    )
                flow.weight = weight
            flow.demand_mbps = demand_mbps
            self.engine.update_demand(flow)
            dirty = True
        if dirty:
            self._reallocate()

    def reroute(
        self,
        transfer: Transfer,
        via: Optional[str] = None,
        path: Optional[List[str]] = None,
    ) -> None:
        """Move an active flow onto a new path (the InfP's path knob)."""
        flow = transfer.flow
        if flow.done:
            return
        self._sync_to_now()
        self.engine.set_path(flow, self._resolve_path(flow.src, flow.dst, via, path))
        self._reallocate()

    def set_link_capacity(self, link_id: str, capacity_mbps: float) -> None:
        """Change a link's capacity and reallocate (failures, energy saving)."""
        if capacity_mbps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mbps!r}")
        self._sync_to_now()
        self.topology.link(link_id).capacity_mbps = capacity_mbps
        self.link_stats[link_id].capacity_mbps = capacity_mbps
        self.engine.update_capacity(link_id)
        self._reallocate()

    def set_via_policy(self, owner: str, via: Optional[str]) -> None:
        """Route all traffic of ``owner`` through node ``via``.

        This is the hook the InfP's traffic-engineering app programs:
        future flows tagged with ``owner`` resolve their path through
        ``via``, and currently active flows are rerouted immediately.
        Passing ``None`` clears the policy (shortest-path routing).
        """
        self._split_policy.pop(owner, None)
        if via is None:
            self._via_policy.pop(owner, None)
        else:
            self._via_policy[owner] = via
        rerouted = False
        self._sync_to_now()
        for flow in self._flows.values():
            if flow.owner == owner:
                self.engine.set_path(
                    flow, self._resolve_path(flow.src, flow.dst, via, None)
                )
                rerouted = True
        if rerouted:
            self._reallocate()

    def set_split_policy(self, owner: str, weights: Dict[str, float]) -> None:
        """Split ``owner`` traffic across several via nodes by weight.

        The §4 global controller's third knob: "the traffic splits
        across the peering points for each CDN".  New flows are
        assigned a via so that the realized flow counts track the
        weights (deterministic largest-deficit assignment, so runs stay
        reproducible); active flows are re-balanced immediately.
        """
        if not weights:
            raise ValueError("weights must not be empty")
        total = sum(weights.values())
        if total <= 0 or any(w < 0 for w in weights.values()):
            raise ValueError(f"weights must be non-negative and sum > 0: {weights!r}")
        normalized = {via: w / total for via, w in weights.items() if w > 0}
        self._via_policy.pop(owner, None)
        self._split_policy[owner] = _SplitState(weights=normalized)
        self._sync_to_now()
        flows = [flow for flow in self._flows.values() if flow.owner == owner]
        if flows:
            state = self._split_policy[owner]
            state.assigned = {via: 0 for via in normalized}
            for flow in flows:
                via = state.next_via()
                self.engine.set_path(
                    flow, self._resolve_path(flow.src, flow.dst, via, None)
                )
            self._reallocate()

    def via_policy(self, owner: str) -> Optional[str]:
        """The via-node currently programmed for ``owner`` traffic."""
        return self._via_policy.get(owner)

    def split_policy(self, owner: str) -> Optional[Dict[str, float]]:
        """The split weights programmed for ``owner``, if any."""
        state = self._split_policy.get(owner)
        return dict(state.weights) if state else None

    def transfers_by_owner(self, owner: str) -> List[Transfer]:
        """Active transfers tagged with ``owner``."""
        return [
            transfer
            for transfer in self._transfers.values()
            if transfer.flow.owner == owner
        ]

    def active_flows(self) -> List[Flow]:
        return list(self._flows.values())

    def sync(self) -> None:
        """Bring flow progress and link-time integrals up to ``sim.now``.

        Rates only change at flow events, so the simulator does not
        advance these integrals during idle stretches; call this before
        reading time-averaged link statistics.
        """
        self._sync_to_now()

    def link_load_mbps(self, link_id: str) -> float:
        self._sync_to_now()
        return self.link_stats[link_id].current_load_mbps

    def link_utilization(self, link_id: str) -> float:
        self._sync_to_now()
        return self.link_stats[link_id].utilization

    def path_rtt_ms(self, src: str, dst: str, via: Optional[str] = None) -> float:
        """Round-trip propagation delay along the (possibly via-) path."""
        if via is None:
            forward = self.router.shortest_path(src, dst)
            backward = self.router.shortest_path(dst, src)
        else:
            forward = self.router.path_via(src, dst, via)
            backward = self.router.path_via(dst, src, via)
        return self.topology.path_delay_ms(forward) + self.topology.path_delay_ms(backward)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _start(
        self,
        src: str,
        dst: str,
        size_mbit: Optional[float],
        on_complete: Optional[Callable[[Transfer], None]],
        demand_mbps: float,
        via: Optional[str],
        path: Optional[List[str]],
        owner: str,
        weight: float = 1.0,
    ) -> Transfer:
        if via is None and path is None:
            split = self._split_policy.get(owner)
            if split is not None:
                via = split.next_via()
            else:
                via = self._via_policy.get(owner)
        links = self._resolve_path(src, dst, via, path)
        flow_id = f"f{next(self._flow_counter)}"
        flow = Flow(
            flow_id=flow_id,
            src=src,
            dst=dst,
            path=links,
            demand_mbps=demand_mbps,
            size_mbit=size_mbit,
            owner=owner,
            weight=weight,
        )
        flow.started_at = self.sim.now
        flow.last_progress_at = self.sim.now
        transfer = Transfer(flow, self, on_complete)
        self._sync_to_now()
        self._flows[flow_id] = flow
        self._transfers[flow_id] = transfer
        self.engine.add_flow(flow)
        if size_mbit is not None and size_mbit <= _EPS:
            # Zero-size transfers complete immediately.
            self._complete(transfer)
        self._reallocate()
        return transfer

    def _resolve_path(
        self,
        src: str,
        dst: str,
        via: Optional[str],
        path: Optional[List[str]],
    ) -> List[Link]:
        if path is not None:
            node_path = path
        elif via is not None:
            node_path = self.router.path_via(src, dst, via)
        else:
            node_path = self.router.shortest_path(src, dst)
        return self.topology.path_links(node_path)

    def _sync_to_now(self) -> None:
        """Progress all flows and link integrals to the current instant."""
        now = self.sim.now
        for stats in self.link_stats.values():
            stats.advance(now)
        for flow in self._flows.values():
            flow.progress(now)

    def _reallocate(self) -> None:
        """Re-solve the dirty component and reschedule the next completion.

        Callers must have already called :meth:`_sync_to_now` and routed
        their state change through the engine's mutation methods; the
        engine then recomputes rates for exactly the flows the change
        can affect and reports which link loads moved.
        """
        result = self.engine.solve()
        for flow_id, rate in result.rates.items():
            flow = self._flows.get(flow_id)
            if flow is not None:
                flow.rate_mbps = rate
        for link_id in result.changed_links:
            self.link_stats[link_id].set_load(
                self.engine.link_loads.get(link_id, 0.0)
            )
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        self._epoch += 1
        next_eta = math.inf
        for flow in self._flows.values():
            next_eta = min(next_eta, flow.eta(self.sim.now))
        if math.isfinite(next_eta):
            delay = max(0.0, next_eta - self.sim.now)
            self.sim.schedule(delay, self._on_completion_event, self._epoch)

    def _on_completion_event(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # superseded by a later reallocation
        self._sync_to_now()
        finished = [
            self._transfers[flow.flow_id]
            for flow in self._flows.values()
            if flow.is_finite and flow.remaining_mbit <= _EPS
        ]
        for transfer in finished:
            self._complete(transfer)
        self._reallocate()

    def _complete(self, transfer: Transfer) -> None:
        flow = transfer.flow
        flow.state = FlowState.COMPLETED
        flow.finished_at = self.sim.now
        flow.remaining_mbit = 0.0
        self._flows.pop(flow.flow_id, None)
        self._transfers.pop(flow.flow_id, None)
        self.engine.remove_flow(flow)
        self.completed_transfers += 1
        if transfer.on_complete is not None:
            # Fire via the event queue so completion callbacks observe a
            # consistent network state (rates already reallocated).
            self.sim.call_soon(transfer.on_complete, transfer)
