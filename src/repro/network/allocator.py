"""The stateful, incremental max-min allocation engine.

:class:`AllocationEngine` keeps the flow–link bookkeeping of a
:class:`~repro.network.fluidsim.FluidNetwork` alive across allocation
calls.  The network tells the engine *what changed* (a flow started,
finished, changed demand, moved to a new path; a link's capacity moved)
and the engine re-solves only the flows that can possibly be affected:
the connected component of the flow–link sharing graph reachable from
the dirty flows and links.

Why this is exact: the max-min fair allocation decomposes over the
connected components of the flow–link graph — a flow's rate depends
only on flows it (transitively) shares a link with.  Re-solving one
closed component with the original link capacities therefore yields
exactly the rates a from-scratch solve over all flows would, which the
equivalence property test pins to 1e-6.

When the dirty component spans most of the network (churn touching
everything, e.g. a core-link capacity change) the engine falls back to
one full solve — the component walk would cost as much as solving, so
there is nothing to save.  The fraction is the
``full_solve_fraction`` knob of :class:`EngineConfig`.

The engine also maintains per-link load totals incrementally, so the
network only refreshes statistics of links whose load actually moved.
Counters (:class:`EngineCounters`) make the saving observable:
``bench_allocator.py`` asserts the flash-crowd workload does strictly
fewer full solves with the engine than a from-scratch-per-change
baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.network.flows import Flow
from repro.network.maxmin import max_min_allocation
from repro.network.topology import Link
from repro.obs.trace import TRACER


@dataclass
class EngineConfig:
    """Tuning knobs of the allocation engine.

    Attributes:
        max_rate_mbps: Cap applied to any single flow (end-host NIC
            stand-in; also keeps infinite-demand, empty-path rates finite).
        full_solve_fraction: When the dirty component contains at least
            this fraction of all active flows, do a full solve instead
            of an incremental one.
        incremental: Master switch; ``False`` forces a full solve on
            every change (the from-scratch baseline the benchmarks
            compare against).
    """

    max_rate_mbps: float = 1e5
    full_solve_fraction: float = 0.6
    incremental: bool = True


@dataclass
class EngineCounters:
    """Observable cost of the allocation path.

    Attributes:
        solve_calls: Total :meth:`AllocationEngine.solve` invocations.
        full_solves: Calls that re-solved every active flow.
        incremental_solves: Calls that re-solved only a dirty component.
        noop_solves: Calls with nothing dirty (no work done).
        flows_touched: Cumulative number of flows passed to the solver.
        flows_active_peak: Largest concurrent flow count seen.
    """

    solve_calls: int = 0
    full_solves: int = 0
    incremental_solves: int = 0
    noop_solves: int = 0
    flows_touched: int = 0
    flows_active_peak: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "solve_calls": self.solve_calls,
            "full_solves": self.full_solves,
            "incremental_solves": self.incremental_solves,
            "noop_solves": self.noop_solves,
            "flows_touched": self.flows_touched,
            "flows_active_peak": self.flows_active_peak,
        }


@dataclass
class SolveResult:
    """What one :meth:`AllocationEngine.solve` call recomputed.

    Attributes:
        mode: ``"full"``, ``"incremental"``, or ``"noop"``.
        rates: New rate for every flow the solver touched (already
            capped at ``max_rate_mbps``).
        changed_links: Links whose aggregate load moved since the last
            solve (including links drained by removed/rerouted flows).
    """

    mode: str
    rates: Dict[str, float] = field(default_factory=dict)
    changed_links: Set[str] = field(default_factory=set)


class AllocationEngine:
    """Incremental max-min allocator with persistent bookkeeping.

    The owner (normally :class:`~repro.network.fluidsim.FluidNetwork`)
    routes every state change through the mutation methods below, then
    calls :meth:`solve` to bring rates up to date.  The engine is the
    single writer of its flows' allocation state between mutations: it
    keeps the applied rate per flow and the applied load per link, so it
    can both (a) seed the dirty-component walk and (b) report exactly
    which link loads moved.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.counters = EngineCounters()
        self._flows: Dict[str, Flow] = {}
        # link_id -> ids of flows currently routed over the link.
        self._members: Dict[str, Set[str]] = {}
        # flow_id -> the path whose link loads include this flow's rate.
        self._applied_path: Dict[str, List[Link]] = {}
        # flow_id -> the rate currently counted into link loads.
        self.rates: Dict[str, float] = {}
        self.link_loads: Dict[str, float] = {}
        self._dirty_flows: Set[str] = set()
        self._dirty_links: Set[str] = set()
        self._changed_links: Set[str] = set()

    # ------------------------------------------------------------------
    # mutations (the network's change notifications)
    # ------------------------------------------------------------------
    def add_flow(self, flow: Flow) -> None:
        """Register a newly started flow."""
        flow_id = flow.flow_id
        if flow_id in self._flows:
            raise ValueError(f"flow {flow_id!r} already registered")
        self._flows[flow_id] = flow
        self._applied_path[flow_id] = list(flow.path)
        self.rates[flow_id] = 0.0
        for link in flow.path:
            self._members.setdefault(link.link_id, set()).add(flow_id)
        self._dirty_flows.add(flow_id)
        if len(self._flows) > self.counters.flows_active_peak:
            self.counters.flows_active_peak = len(self._flows)

    def remove_flow(self, flow: Flow) -> None:
        """Drop a completed or aborted flow.  Idempotent."""
        flow_id = flow.flow_id
        if flow_id not in self._flows:
            return
        rate = self.rates.pop(flow_id, 0.0)
        for link in self._applied_path.pop(flow_id, ()):
            link_id = link.link_id
            members = self._members.get(link_id)
            if members is not None:
                members.discard(flow_id)
            if rate != 0.0:  # simlint: ignore[float-eq] -- exact sentinel, never arithmetic
                self.link_loads[link_id] = self.link_loads.get(link_id, 0.0) - rate
                self._changed_links.add(link_id)
            # The survivors on this link may now speed up.
            self._dirty_links.add(link_id)
        del self._flows[flow_id]
        self._dirty_flows.discard(flow_id)

    def update_demand(self, flow: Flow) -> None:
        """Note that ``flow.demand_mbps`` changed."""
        if flow.flow_id in self._flows:
            self._dirty_flows.add(flow.flow_id)

    def update_weight(self, flow: Flow) -> None:
        """Note that ``flow.weight`` changed."""
        if flow.flow_id in self._flows:
            self._dirty_flows.add(flow.flow_id)

    def set_path(self, flow: Flow, new_path: List[Link]) -> None:
        """Move a flow onto ``new_path``, updating all bookkeeping.

        The engine performs the ``flow.path`` assignment itself so the
        membership maps and link loads can never drift from the flow
        objects.
        """
        flow_id = flow.flow_id
        if flow_id not in self._flows:
            flow.path = list(new_path)
            return
        rate = self.rates.get(flow_id, 0.0)
        for link in self._applied_path[flow_id]:
            link_id = link.link_id
            members = self._members.get(link_id)
            if members is not None:
                members.discard(flow_id)
            if rate != 0.0:  # simlint: ignore[float-eq] -- exact sentinel, never arithmetic
                self.link_loads[link_id] = self.link_loads.get(link_id, 0.0) - rate
                self._changed_links.add(link_id)
            self._dirty_links.add(link_id)
        flow.path = list(new_path)
        self._applied_path[flow_id] = list(new_path)
        for link in new_path:
            link_id = link.link_id
            self._members.setdefault(link_id, set()).add(flow_id)
            if rate != 0.0:  # simlint: ignore[float-eq] -- exact sentinel, never arithmetic
                self.link_loads[link_id] = self.link_loads.get(link_id, 0.0) + rate
                self._changed_links.add(link_id)
        self._dirty_flows.add(flow_id)

    def update_capacity(self, link_id: str) -> None:
        """Note that a link's capacity changed (value lives on the Link)."""
        self._dirty_links.add(link_id)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self) -> SolveResult:
        """Bring rates up to date; returns what was recomputed."""
        self.counters.solve_calls += 1
        if not self._dirty_flows and not self._dirty_links:
            self.counters.noop_solves += 1
            self._refresh_changed_loads()
            return SolveResult("noop", {}, self._drain_changed())

        touched = self._affected_flows()
        total = len(self._flows)
        if (
            not self.config.incremental
            or total == 0
            or len(touched) >= self.config.full_solve_fraction * total
        ):
            mode = "full"
            self.counters.full_solves += 1
            targets = list(self._flows.values())
        else:
            mode = "incremental"
            self.counters.incremental_solves += 1
            targets = [self._flows[flow_id] for flow_id in touched]
        self.counters.flows_touched += len(targets)

        raw = max_min_allocation(targets)
        cap = self.config.max_rate_mbps
        new_rates: Dict[str, float] = {}
        for flow in targets:
            rate = min(raw.get(flow.flow_id, 0.0), cap)
            new_rates[flow.flow_id] = rate
            self._apply_rate(flow.flow_id, rate)

        self._dirty_flows.clear()
        self._dirty_links.clear()
        self._refresh_changed_loads()
        if TRACER.enabled:
            # Noop solves are skipped: at one solve per network change
            # they would dominate the trace with zero-information events.
            TRACER.emit(
                "allocator-solve",
                mode=mode,
                flows_solved=len(targets),
                flows_active=total,
            )
        return SolveResult(mode, new_rates, self._drain_changed())

    def active_flow_count(self) -> int:
        return len(self._flows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _apply_rate(self, flow_id: str, new_rate: float) -> None:
        old_rate = self.rates.get(flow_id, 0.0)
        if new_rate == old_rate:
            return
        delta = new_rate - old_rate
        for link in self._applied_path[flow_id]:
            link_id = link.link_id
            self.link_loads[link_id] = self.link_loads.get(link_id, 0.0) + delta
            self._changed_links.add(link_id)
        self.rates[flow_id] = new_rate

    def _refresh_changed_loads(self) -> None:
        """Recompute each changed link's load exactly from member rates.

        The per-mutation delta updates keep loads usable between solves,
        but accumulated deltas drift by float residue (a drained link
        ends at ``-1e-16`` instead of ``0.0``).  Summing the members in
        sorted order at each solve boundary makes the reported loads
        exact and run-to-run deterministic.
        """
        for link_id in self._changed_links:
            members = self._members.get(link_id)
            if members:
                self.link_loads[link_id] = sum(
                    self.rates.get(flow_id, 0.0) for flow_id in sorted(members)
                )
            else:
                self.link_loads[link_id] = 0.0

    def _drain_changed(self) -> Set[str]:
        changed = self._changed_links
        self._changed_links = set()
        return changed

    def _affected_flows(self) -> Set[str]:
        """Closure of the dirty seeds over the flow–link sharing graph.

        Every link reached contributes *all* its member flows, so the
        returned set is closed: no untouched flow shares a link with a
        touched one, which is what makes the component solve exact.
        """
        touched: Set[str] = set()
        seen_links: Set[str] = set()
        pending: deque = deque()
        for flow_id in self._dirty_flows:
            if flow_id in self._flows and flow_id not in touched:
                touched.add(flow_id)
                pending.append(flow_id)
        for link_id in self._dirty_links:
            if link_id in seen_links:
                continue
            seen_links.add(link_id)
            for flow_id in self._members.get(link_id, ()):
                if flow_id not in touched:
                    touched.add(flow_id)
                    pending.append(flow_id)
        while pending:
            flow_id = pending.popleft()
            for link in self._flows[flow_id].path:
                link_id = link.link_id
                if link_id in seen_links:
                    continue
                seen_links.add(link_id)
                for other_id in self._members.get(link_id, ()):
                    if other_id not in touched:
                        touched.add(other_id)
                        pending.append(other_id)
        return touched

    def check_consistency(self, flows: Iterable[Flow]) -> None:
        """Assert bookkeeping matches ``flows`` (test/debug helper)."""
        expected = {flow.flow_id: flow for flow in flows if not flow.done}
        if set(expected) != set(self._flows):
            raise AssertionError(
                f"flow registry drift: engine={sorted(self._flows)} "
                f"expected={sorted(expected)}"
            )
        loads: Dict[str, float] = {}
        for flow_id, path in self._applied_path.items():
            rate = self.rates.get(flow_id, 0.0)
            for link in path:
                loads[link.link_id] = loads.get(link.link_id, 0.0) + rate
        for link_id, load in loads.items():
            if abs(self.link_loads.get(link_id, 0.0) - load) > 1e-6:
                raise AssertionError(
                    f"link {link_id}: tracked load "
                    f"{self.link_loads.get(link_id, 0.0)} != recomputed {load}"
                )
