"""Path computation over a :class:`~repro.network.topology.Topology`.

The router computes delay-weighted shortest paths, k-shortest
alternatives, and waypoint-constrained paths.  Waypoint routing is how
the InfP's peering-point knob is expressed: "egress traffic for CDN X
via peering point B" is a path constrained through node B (Figure 5 of
the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.network.topology import Link, Topology


class NoRouteError(Exception):
    """Raised when no path exists between the requested endpoints."""


class Router:
    """Computes and caches paths on a topology.

    The cache is keyed on the topology's structural version: adding
    nodes or links invalidates it automatically, while capacity changes
    (which leave delay-weighted routes untouched) do not.
    :meth:`invalidate` remains for forcing a drop by hand, and
    :attr:`cache_hits` / :attr:`cache_misses` make the cache's value
    observable in the engine counters.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[str, str, Optional[str]], List[str]] = {}
        self._cached_version = topology.version
        self.cache_hits = 0
        self.cache_misses = 0

    def invalidate(self) -> None:
        """Drop all cached paths."""
        self._cache.clear()
        self._cached_version = self.topology.version

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Delay-weighted shortest node path from ``src`` to ``dst``."""
        return self._cached_path(src, dst, via=None)

    def path_via(self, src: str, dst: str, via: str) -> List[str]:
        """Shortest path constrained to pass through node ``via``.

        The two segments are computed independently; a node shared by
        both segments (other than ``via``) is tolerated because the
        topologies here are small and loop-free in practice.
        """
        return self._cached_path(src, dst, via=via)

    def k_shortest_paths(self, src: str, dst: str, k: int) -> List[List[str]]:
        """Up to ``k`` loop-free paths in increasing delay order."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k!r}")
        generator = nx.shortest_simple_paths(
            self.topology.graph, src, dst, weight="delay_ms"
        )
        paths: List[List[str]] = []
        try:
            for path in generator:
                paths.append(path)
                if len(paths) >= k:
                    break
        except nx.NetworkXNoPath as exc:
            raise NoRouteError(f"no route {src!r}->{dst!r}") from exc
        return paths

    def links_for(self, node_path: List[str]) -> List[Link]:
        """Convenience passthrough to :meth:`Topology.path_links`."""
        return self.topology.path_links(node_path)

    def _cached_path(self, src: str, dst: str, via: Optional[str]) -> List[str]:
        if self._cached_version != self.topology.version:
            self.invalidate()
        key = (src, dst, via)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return list(cached)
        self.cache_misses += 1
        if via is None:
            path = self._shortest(src, dst)
        else:
            head = self._shortest(src, via)
            tail = self._shortest(via, dst)
            path = head + tail[1:]
        self._cache[key] = path
        return list(path)

    def _shortest(self, src: str, dst: str) -> List[str]:
        try:
            return nx.shortest_path(self.topology.graph, src, dst, weight="delay_ms")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route {src!r}->{dst!r}") from exc
