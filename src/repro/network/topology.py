"""Topology model: nodes, capacitated links, and the graph around them.

A :class:`Topology` is a thin, validated layer over a
:class:`networkx.DiGraph`.  Links are directed (an access link's two
directions are two links), carry a capacity in Mbit/s and a propagation
delay in milliseconds, and can be tagged (e.g. ``"peering"``,
``"access"``) so scenarios and controllers can find the links they care
about without hard-coding IDs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

import networkx as nx


class NodeKind(enum.Enum):
    """Role of a node in the delivery chain (Figure 1 of the paper)."""

    CLIENT = "client"
    ROUTER = "router"
    SWITCH = "switch"
    SERVER = "server"
    ORIGIN = "origin"
    PEERING = "peering"
    CACHE = "cache"
    BASE_STATION = "base_station"


@dataclass(frozen=True)
class Node:
    """A topology node.

    Attributes:
        node_id: Unique name, e.g. ``"isp.core1"``.
        kind: Its :class:`NodeKind`.
        owner: The provider that owns it (``"isp"``, ``"cdnX"``, ...);
            EONA's knob/data ownership mapping is keyed on this.
        tags: Free-form labels for scenario queries.
    """

    node_id: str
    kind: NodeKind = NodeKind.ROUTER
    owner: str = ""
    tags: FrozenSet[str] = frozenset()


@dataclass
class Link:
    """A directed, capacitated link.

    Attributes:
        link_id: Unique name, e.g. ``"peerB->isp"``.
        src: Source node id.
        dst: Destination node id.
        capacity_mbps: Capacity in Mbit/s.  May be changed at runtime
            (failures, energy saving); the fluid simulator reallocates.
        delay_ms: One-way propagation delay in milliseconds.
        owner: Provider that owns the link.
        tags: Labels such as ``"peering"`` or ``"access"``.
    """

    link_id: str
    src: str
    dst: str
    capacity_mbps: float
    delay_ms: float = 1.0
    owner: str = ""
    tags: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError(f"link {self.link_id}: capacity must be positive")
        if self.delay_ms < 0:
            raise ValueError(f"link {self.link_id}: delay must be non-negative")
        self.tags = frozenset(self.tags)

    def __hash__(self) -> int:
        return hash(self.link_id)


class Topology:
    """Validated container of nodes and links with graph queries."""

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        self._graph = nx.DiGraph()
        self._auto_link = itertools.count()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every node/link addition.

        Path caches key their validity on this: capacity changes do not
        bump it (delay-weighted routes are unaffected), structural
        changes do.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        kind: NodeKind = NodeKind.ROUTER,
        owner: str = "",
        tags: Iterable[str] = (),
    ) -> Node:
        """Add a node; raises if the id is already taken."""
        if node_id in self._nodes:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = Node(node_id=node_id, kind=kind, owner=owner, tags=frozenset(tags))
        self._nodes[node_id] = node
        self._graph.add_node(node_id)
        self._version += 1
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        capacity_mbps: float,
        delay_ms: float = 1.0,
        link_id: Optional[str] = None,
        owner: str = "",
        tags: Iterable[str] = (),
    ) -> Link:
        """Add a directed link from ``src`` to ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise KeyError(f"unknown node {endpoint!r}")
        if link_id is None:
            link_id = f"{src}->{dst}"
            if link_id in self._links:
                link_id = f"{src}->{dst}#{next(self._auto_link)}"
        if link_id in self._links:
            raise ValueError(f"duplicate link id {link_id!r}")
        link = Link(
            link_id=link_id,
            src=src,
            dst=dst,
            capacity_mbps=capacity_mbps,
            delay_ms=delay_ms,
            owner=owner,
            tags=frozenset(tags),
        )
        self._links[link_id] = link
        self._graph.add_edge(src, dst, link_id=link_id, delay_ms=delay_ms)
        self._version += 1
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        capacity_mbps: float,
        delay_ms: float = 1.0,
        owner: str = "",
        tags: Iterable[str] = (),
    ) -> Tuple[Link, Link]:
        """Add both directions with identical parameters."""
        forward = self.add_link(a, b, capacity_mbps, delay_ms, owner=owner, tags=tags)
        backward = self.add_link(b, a, capacity_mbps, delay_ms, owner=owner, tags=tags)
        return forward, backward

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def link(self, link_id: str) -> Link:
        return self._links[link_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self, kind: Optional[NodeKind] = None, owner: Optional[str] = None) -> List[Node]:
        """All nodes, optionally filtered by kind and/or owner."""
        result = []
        for node in self._nodes.values():
            if kind is not None and node.kind is not kind:
                continue
            if owner is not None and node.owner != owner:
                continue
            result.append(node)
        return result

    def links(self, tag: Optional[str] = None, owner: Optional[str] = None) -> List[Link]:
        """All links, optionally filtered by tag and/or owner."""
        result = []
        for link in self._links.values():
            if tag is not None and tag not in link.tags:
                continue
            if owner is not None and link.owner != owner:
                continue
            result.append(link)
        return result

    def link_between(self, src: str, dst: str) -> Link:
        """The link from ``src`` to ``dst``; raises ``KeyError`` if absent."""
        data = self._graph.get_edge_data(src, dst)
        if data is None:
            raise KeyError(f"no link {src!r}->{dst!r}")
        return self._links[data["link_id"]]

    def path_links(self, node_path: List[str]) -> List[Link]:
        """Translate a node path into the list of links it traverses."""
        return [
            self.link_between(a, b) for a, b in zip(node_path, node_path[1:])
        ]

    def path_delay_ms(self, node_path: List[str]) -> float:
        """Total one-way propagation delay along ``node_path``."""
        return sum(link.delay_ms for link in self.path_links(node_path))

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )
