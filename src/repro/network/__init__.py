"""Flow-level network substrate.

Models a provider topology as nodes and capacitated links, and traffic
as fluid flows that share link bandwidth max-min fairly.  Transfers are
simulated at flow granularity: whenever the set of flows (or a link
capacity) changes, rates are recomputed and completion events are
rescheduled.  This is the level of abstraction at which EONA's
motivating scenarios play out -- congestion at access links and peering
points, not per-packet behaviour.
"""

from repro.network.topology import Link, Node, NodeKind, Topology
from repro.network.flows import Flow, FlowState
from repro.network.maxmin import max_min_allocation
from repro.network.allocator import (
    AllocationEngine,
    EngineConfig,
    EngineCounters,
    SolveResult,
)
from repro.network.routing import Router
from repro.network.fluidsim import FluidNetwork, Transfer
from repro.network.linkstats import CongestionDetector, LinkStats

__all__ = [
    "AllocationEngine",
    "CongestionDetector",
    "EngineConfig",
    "EngineCounters",
    "Flow",
    "FlowState",
    "FluidNetwork",
    "Link",
    "LinkStats",
    "Node",
    "NodeKind",
    "Router",
    "SolveResult",
    "Topology",
    "Transfer",
    "max_min_allocation",
]
