"""Per-link load accounting and congestion detection.

These statistics are the InfP's *internal* view of its network: they
feed the SDN stats service, the traffic-engineering app, and -- when
the InfP opts in -- the EONA-I2A congestion hints.
"""

from __future__ import annotations

from typing import Optional


class LinkStats:
    """Time-weighted load statistics for one link.

    The fluid simulator calls :meth:`advance` at every reallocation
    boundary with the load that has been flowing since the previous
    boundary, so the utilization integral is exact (loads are piecewise
    constant between boundaries).
    """

    def __init__(self, link_id: str, capacity_mbps: float) -> None:
        self.link_id = link_id
        self.capacity_mbps = capacity_mbps
        self.current_load_mbps = 0.0
        self.mbit_carried = 0.0
        self.busy_seconds = 0.0  # seconds with load > 95% of capacity
        self.observed_seconds = 0.0
        self._last_time = 0.0

    def advance(self, now: float) -> None:
        """Integrate the current load up to ``now``."""
        elapsed = now - self._last_time
        if elapsed < 0:
            raise ValueError(f"link {self.link_id}: time moved backwards")
        if elapsed > 0:
            self.mbit_carried += self.current_load_mbps * elapsed
            self.observed_seconds += elapsed
            if self.current_load_mbps >= 0.95 * self.capacity_mbps:
                self.busy_seconds += elapsed
            self._last_time = now

    def set_load(self, load_mbps: float) -> None:
        """Record the new piecewise-constant load (after ``advance``)."""
        self.current_load_mbps = load_mbps

    @property
    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1+]."""
        if self.capacity_mbps <= 0:
            return 0.0
        return self.current_load_mbps / self.capacity_mbps

    @property
    def mean_utilization(self) -> float:
        """Time-averaged utilization since the start of the run."""
        if self.observed_seconds <= 0 or self.capacity_mbps <= 0:
            return 0.0
        return self.mbit_carried / (self.capacity_mbps * self.observed_seconds)

    @property
    def congested_fraction(self) -> float:
        """Fraction of observed time the link spent near saturation."""
        if self.observed_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.observed_seconds


class CongestionDetector:
    """EWMA-smoothed congestion signal for one link.

    The detector declares congestion when the smoothed utilization
    exceeds ``threshold``; hysteresis (``clear_threshold``) prevents the
    signal from flapping right at the boundary -- flapping signals are
    exactly what re-introduces oscillation in coupled control loops.
    """

    def __init__(
        self,
        threshold: float = 0.9,
        clear_threshold: Optional[float] = None,
        alpha: float = 0.3,
    ) -> None:
        if not 0 < threshold <= 1.5:
            raise ValueError(f"threshold out of range: {threshold!r}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha out of range: {alpha!r}")
        self.threshold = threshold
        self.clear_threshold = (
            clear_threshold if clear_threshold is not None else 0.8 * threshold
        )
        if self.clear_threshold > self.threshold:
            raise ValueError("clear_threshold must not exceed threshold")
        self.alpha = alpha
        self.smoothed = 0.0
        self.congested = False

    def observe(self, utilization: float) -> bool:
        """Feed one utilization sample; returns the congestion state."""
        self.smoothed = self.alpha * utilization + (1 - self.alpha) * self.smoothed
        if self.congested:
            if self.smoothed < self.clear_threshold:
                self.congested = False
        elif self.smoothed >= self.threshold:
            self.congested = True
        return self.congested
