"""Weighted max-min fair bandwidth allocation with per-flow demand caps.

The allocator implements progressive filling: a per-unit-weight water
level rises uniformly, so every unfrozen flow's rate grows at
``weight`` times the level, until either a link saturates (its flows
freeze at the water level) or a flow reaches its demand cap (it freezes
at its demand).  The result is the unique weighted max-min fair
allocation subject to demands, the allocation used by the fluid
simulator whenever the flow set changes.  With all weights at the
default 1.0 the arithmetic reduces exactly to the classic unweighted
filling, which the equivalence property tests pin.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.network.flows import Flow
from repro.network.topology import Link

_EPS = 1e-9


def max_min_allocation(flows: Iterable[Flow]) -> Dict[str, float]:
    """Compute weighted max-min fair rates for ``flows``.

    Link capacities are read from each flow's path links.  Flows with an
    empty path are granted their full demand (they traverse no shared
    resource).  Flow objects are *not* mutated; the caller applies the
    returned mapping ``flow_id -> rate_mbps``.

    The allocation satisfies, and the property-based tests verify:

    * feasibility -- no link's capacity is exceeded;
    * demand caps -- no flow exceeds its demand;
    * max-min optimality -- a flow below its demand is bottlenecked on
      some saturated link where its per-weight rate is maximal;
    * weighted fairness -- two flows sharing a bottleneck and below
      demand receive rates proportional to their weights.
    """
    flow_list = [f for f in flows if not f.done]
    rates: Dict[str, float] = {}

    active: List[Flow] = []
    for flow in flow_list:
        if not flow.path:
            rates[flow.flow_id] = flow.demand_mbps if math.isfinite(flow.demand_mbps) else math.inf
        else:
            active.append(flow)

    # Per-link bookkeeping over the links actually used.  ``link_weight``
    # is the total weight of unfrozen flows crossing the link, so the
    # per-unit-weight increment consumes ``delta * link_weight`` of it.
    link_capacity: Dict[str, float] = {}
    link_objects: Dict[str, Link] = {}
    link_weight: Dict[str, float] = {}
    for flow in active:
        for link in flow.path:
            link_objects[link.link_id] = link
            link_capacity.setdefault(link.link_id, link.capacity_mbps)
            link_weight[link.link_id] = link_weight.get(link.link_id, 0.0) + flow.weight

    level: Dict[str, float] = {f.flow_id: 0.0 for f in active}
    remaining: Dict[str, float] = dict(link_capacity)

    while active:
        # Largest uniform per-weight increment before a link saturates...
        delta = math.inf
        for link_id, weight_sum in link_weight.items():
            if weight_sum > _EPS:
                delta = min(delta, remaining[link_id] / weight_sum)
        # ...or a flow hits its demand cap.
        for flow in active:
            headroom = (flow.demand_mbps - level[flow.flow_id]) / flow.weight
            delta = min(delta, headroom)

        if not math.isfinite(delta):
            # Only infinite-demand flows on unconstrained links remain;
            # this cannot happen for capacitated paths, so guard anyway.
            for flow in active:
                rates[flow.flow_id] = math.inf
            break

        delta = max(delta, 0.0)
        for flow in active:
            level[flow.flow_id] += delta * flow.weight
        for link_id, weight_sum in link_weight.items():
            remaining[link_id] -= delta * weight_sum

        saturated = {
            link_id
            for link_id, cap in remaining.items()
            if cap <= _EPS and link_weight[link_id] > _EPS
        }

        still_active: List[Flow] = []
        for flow in active:
            at_demand = level[flow.flow_id] >= flow.demand_mbps - _EPS
            on_saturated = any(link.link_id in saturated for link in flow.path)
            if at_demand or on_saturated:
                rates[flow.flow_id] = min(level[flow.flow_id], flow.demand_mbps)
                for link in flow.path:
                    link_weight[link.link_id] -= flow.weight
            else:
                still_active.append(flow)
        if len(still_active) == len(active):
            # Numerical stall guard: freeze everything at current level.
            for flow in active:
                rates[flow.flow_id] = min(level[flow.flow_id], flow.demand_mbps)
            break
        active = still_active

    return rates
