"""Flow objects shared by the allocator and the fluid simulator."""

from __future__ import annotations

import enum
import math
from typing import List, Optional

from repro.network.topology import Link


class FlowState(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"
    ABORTED = "aborted"


class Flow:
    """A fluid flow along a fixed path of links.

    A flow is either a *finite transfer* (``size_mbit`` set; it completes
    when the remaining volume reaches zero) or a *persistent stream*
    (``size_mbit`` is ``None``; it runs until aborted).  ``demand_mbps``
    caps the rate the flow will use even when the network could give it
    more (e.g. a video player pacing at the encoded bitrate).

    Attributes:
        flow_id: Unique identifier.
        path: Links traversed, in order.  May be empty for co-located
            endpoints, in which case the flow is never bottlenecked.
        demand_mbps: Rate cap in Mbit/s (``math.inf`` = unconstrained).
        rate_mbps: Current allocated rate, set by the allocator.
        weight: Fair-share weight.  A flow of weight *w* receives *w*
            times the rate of a weight-1 flow sharing its bottleneck,
            which is how an aggregate (e.g. a cohort of *w* sessions)
            competes as *w* individual flows would.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "path",
        "demand_mbps",
        "weight",
        "size_mbit",
        "remaining_mbit",
        "rate_mbps",
        "state",
        "started_at",
        "finished_at",
        "last_progress_at",
        "owner",
    )

    def __init__(
        self,
        flow_id: str,
        src: str,
        dst: str,
        path: List[Link],
        demand_mbps: float = math.inf,
        size_mbit: Optional[float] = None,
        owner: str = "",
        weight: float = 1.0,
    ) -> None:
        if demand_mbps <= 0:
            raise ValueError(f"flow {flow_id}: demand must be positive")
        if size_mbit is not None and size_mbit < 0:
            raise ValueError(f"flow {flow_id}: size must be non-negative")
        if weight <= 0 or not math.isfinite(weight):
            raise ValueError(f"flow {flow_id}: weight must be positive and finite")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.path = list(path)
        self.demand_mbps = demand_mbps
        self.weight = weight
        self.size_mbit = size_mbit
        self.remaining_mbit = size_mbit if size_mbit is not None else math.inf
        self.rate_mbps = 0.0
        self.state = FlowState.ACTIVE
        self.started_at = 0.0
        self.finished_at: Optional[float] = None
        self.last_progress_at = 0.0
        self.owner = owner

    @property
    def is_finite(self) -> bool:
        return self.size_mbit is not None

    @property
    def done(self) -> bool:
        return self.state is not FlowState.ACTIVE

    def progress(self, now: float) -> float:
        """Advance the transfer to ``now`` at the current rate.

        Returns the volume (Mbit) delivered since the last progress call.
        """
        elapsed = now - self.last_progress_at
        if elapsed < 0:
            raise ValueError(f"flow {self.flow_id}: time moved backwards")
        delivered = self.rate_mbps * elapsed
        if self.is_finite:
            delivered = min(delivered, self.remaining_mbit)
            self.remaining_mbit -= delivered
        self.last_progress_at = now
        return delivered

    def eta(self, now: float) -> float:
        """Predicted completion time at the current rate (may be ``inf``)."""
        if not self.is_finite or self.rate_mbps <= 0:
            return math.inf
        return now + self.remaining_mbit / self.rate_mbps

    def __repr__(self) -> str:
        return (
            f"Flow({self.flow_id}, {self.src}->{self.dst}, "
            f"rate={self.rate_mbps:.2f}Mbps, state={self.state.value})"
        )
