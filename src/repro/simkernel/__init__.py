"""Discrete-event simulation kernel.

The kernel is deliberately small: a simulated clock, a priority queue of
events, cancellable event handles, periodic processes, and named,
reproducible random-number streams.  Every other subsystem (network,
CDN, video players, controllers) is built as callbacks scheduled on a
:class:`~repro.simkernel.kernel.Simulator`.
"""

from repro.simkernel.events import Event, EventHandle, EventQueue
from repro.simkernel.kernel import SimError, Simulator
from repro.simkernel.processes import PeriodicProcess
from repro.simkernel.rngstreams import RngStreams

__all__ = [
    "Event",
    "EventHandle",
    "EventQueue",
    "PeriodicProcess",
    "RngStreams",
    "SimError",
    "Simulator",
]
