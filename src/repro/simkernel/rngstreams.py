"""Named, reproducible random-number streams.

Experiments draw randomness from several logically independent sources
(arrivals, radio noise, content popularity, ...).  Giving each source
its own named stream, derived deterministically from one root seed,
means adding a new consumer of randomness never perturbs the draws seen
by existing ones -- runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict


class RngStreams:
    """A lazy registry of named :class:`random.Random` streams.

    Each stream's seed is ``sha256(root_seed || name)``, so streams are
    independent of the order in which they are first requested.

    Example:
        >>> streams = RngStreams(42)
        >>> a1 = streams.get("arrivals").random()
        >>> streams2 = RngStreams(42)
        >>> _ = streams2.get("radio")   # different request order...
        >>> a2 = streams2.get("arrivals").random()
        >>> a1 == a2                    # ...same draws
        True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._generators: Dict[str, Any] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def generator(self, name: str) -> Any:
        """A named ``numpy.random.Generator``, seeded like :meth:`get`.

        Vectorized consumers (the cohort engine) need numpy bit
        generators; minting them here keeps every random stream -- stdlib
        or numpy -- derived from the one root seed, named, and
        independent of request order.  numpy is imported lazily so the
        kernel itself stays dependency-free; the return type is ``Any``
        for the same reason.  Distinct from :meth:`get`: the two stream
        families never share state even under the same name.
        """
        generator = self._generators.get(name)
        if generator is None:
            import numpy

            generator = numpy.random.default_rng(self._derive_seed(name))
            self._generators[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child registry (e.g. one per simulated provider)."""
        return RngStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        material = f"{self.root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
