"""Named, reproducible random-number streams.

Experiments draw randomness from several logically independent sources
(arrivals, radio noise, content popularity, ...).  Giving each source
its own named stream, derived deterministically from one root seed,
means adding a new consumer of randomness never perturbs the draws seen
by existing ones -- runs stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A lazy registry of named :class:`random.Random` streams.

    Each stream's seed is ``sha256(root_seed || name)``, so streams are
    independent of the order in which they are first requested.

    Example:
        >>> streams = RngStreams(42)
        >>> a1 = streams.get("arrivals").random()
        >>> streams2 = RngStreams(42)
        >>> _ = streams2.get("radio")   # different request order...
        >>> a2 = streams2.get("arrivals").random()
        >>> a1 == a2                    # ...same draws
        True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child registry (e.g. one per simulated provider)."""
        return RngStreams(self._derive_seed(name))

    def _derive_seed(self, name: str) -> int:
        material = f"{self.root_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
