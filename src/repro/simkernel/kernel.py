"""The discrete-event simulator.

A :class:`Simulator` owns the clock and the event queue.  Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the main loop fires
them in time order.  The simulator never advances time except by
executing events, so the clock is exact and deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.simkernel.events import EventHandle, EventQueue
from repro.simkernel.rngstreams import RngStreams

#: Signature of a dispatch hook: ``hook(now, fn, args)``.  The hook takes
#: over execution of the event -- it must call ``fn(*args)`` itself.
DispatchHook = Callable[[float, Callable[..., Any], Tuple[Any, ...]], None]


class SimError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class Simulator:
    """Event-driven simulator with a float-seconds clock.

    Args:
        seed: Root seed for the simulator's named RNG streams.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(2.0, fired.append, "a")
        >>> _ = sim.schedule(1.0, fired.append, "b")
        >>> sim.run()
        >>> fired
        ['b', 'a']
    """

    #: Hook copied onto new instances at construction.  The kernel knows
    #: nothing about observers; ``repro.obs.profile`` installs its timing
    #: hook here.  ``None`` (the default) keeps dispatch a direct call.
    default_dispatch_hook: Optional[DispatchHook] = None

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self.rng = RngStreams(seed)
        self._events_executed = 0
        self._running = False
        self._dispatch_hook: Optional[DispatchHook] = type(self).default_dispatch_hook

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for bench/introspection)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay!r})")
        return self._queue.push(self._now + delay, fn, args, priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimError(
                f"cannot schedule into the past (time={time!r} < now={self._now!r})"
            )
        return self._queue.push(time, fn, args, priority)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events in time order.

        Args:
            until: Stop once the clock would pass this time; the clock is
                left at ``until`` (events at exactly ``until`` do fire).
            max_events: Stop after executing this many events (a guard
                against runaway feedback loops in experiments).

        Returns:
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimError("run() called re-entrantly from within an event")
        self._running = True
        executed = 0
        hook = self._dispatch_hook
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    if until is not None:
                        self._now = max(self._now, until)
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                if hook is None:
                    event.fn(*event.args)
                else:
                    hook(self._now, event.fn, event.args)
                self._events_executed += 1
                executed += 1
        finally:
            self._running = False
        return self._now

    def run_until(self, time: float) -> float:
        """Alias for ``run(until=time)``."""
        return self.run(until=time)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, fn, *args)
