"""Event objects and the time-ordered event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number breaks ties deterministically, so two runs with the same seed
schedule identical histories -- a property the reproduction experiments
rely on and the test suite checks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulated time at which the event fires.
        priority: Lower fires first among events at the same time.
        seq: Monotone tie-breaker assigned by the queue.
        fn: Callback invoked as ``fn(*args)`` when the event fires.
        args: Positional arguments for ``fn``.
        cancelled: Set by :meth:`EventHandle.cancel`; cancelled events
            are skipped (and discarded) when popped.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class EventQueue:
    """A heap of events ordered by (time, priority, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(
        self,
        time: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time`` and return a handle."""
        event = Event(time=time, priority=priority, seq=next(self._counter), fn=fn, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
