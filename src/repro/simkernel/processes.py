"""Periodic processes built on the simulator.

Control loops in EONA run periodically on very different timescales
(players every few seconds, ISP traffic engineering every tens of
minutes).  :class:`PeriodicProcess` captures that pattern: a callback
fired every ``period`` seconds with optional start jitter, which can be
stopped, restarted, or re-paced at runtime (the timescale experiments
sweep the period).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.events import EventHandle
from repro.simkernel.kernel import Simulator


class PeriodicProcess:
    """Fires ``fn()`` every ``period`` simulated seconds.

    Args:
        sim: The simulator to schedule on.
        period: Interval between firings, in seconds.  Must be positive.
        fn: Zero-argument callback.
        start_at: Absolute time of the first firing; defaults to
            ``sim.now + period``.
        name: Optional label used in ``repr`` and experiment logs.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], Any],
        start_at: Optional[float] = None,
        name: str = "",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.period = float(period)
        self.fn = fn
        self.name = name
        self.fire_count = 0
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        first = sim.now + self.period if start_at is None else start_at
        self._handle = sim.schedule_at(first, self._fire)

    def __repr__(self) -> str:
        label = self.name or getattr(self.fn, "__name__", "fn")
        return f"PeriodicProcess({label}, period={self.period})"

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Cancel the next firing; the process stops permanently unless restarted."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, delay: float = 0.0) -> None:
        """Resume firing, first after ``delay`` then every ``period``."""
        self.stop()
        self._stopped = False
        self._handle = self.sim.schedule(delay, self._fire)

    def set_period(self, period: float) -> None:
        """Change the interval; takes effect from the next firing."""
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.period = float(period)

    def _fire(self) -> None:
        self._handle = None
        self.fire_count += 1
        self.fn()
        # ``fn`` may have stopped or restarted the process; reschedule only
        # when it did neither.
        if not self._stopped and self._handle is None:
            self._handle = self.sim.schedule(self.period, self._fire)
