"""Command-line entry point: run any experiment and print its table.

The experiment list is not maintained here: every ``exp_*`` module
registers an :class:`~repro.experiments.spec.ExperimentSpec` and the
CLI drives :mod:`repro.experiments.registry`.

Examples::

    eona list
    eona run e4
    eona run e2 --seeds 0..4 --parallel
    eona run all --seed 0 --out results/ --format json
    eona trace e2 --seeds 0 --out traces/
    eona profile e2 --seeds 0 --top 10
    eona lint
    eona lint src/repro/network --format json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.spec import seeds_arg


def _version() -> str:
    """Installed package version; pyproject's version for src-tree runs."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


def _cmd_list(_args: argparse.Namespace) -> int:
    specs = registry.all_specs()
    width = max(len(spec.exp_id) for spec in specs)
    for spec in specs:
        print(f"  {spec.exp_id.ljust(width)}  {spec.title}")
        variants = ", ".join(variant.name for variant in spec.variants)
        checks = sum(len(variant.checks) for variant in spec.variants)
        print(f"  {''.ljust(width)}  variants: {variants}; {checks} checks")
    return 0


def _resolve_seeds(args: argparse.Namespace) -> List[int]:
    if args.seeds is not None:
        return seeds_arg(args.seeds)
    return [args.seed]


def _resolve_specs(experiment: str) -> Optional[List[object]]:
    if experiment == "all":
        return list(registry.all_specs())
    try:
        return [registry.get(experiment)]
    except KeyError:
        print(
            f"unknown experiment {experiment!r}; try 'eona list'",
            file=sys.stderr,
        )
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    evaluate = not args.no_checks
    # With --format json, stdout carries nothing but the run artifact(s)
    # so the output can be piped; the human narration moves to stderr.
    json_stdout = args.format == "json"
    chatter = sys.stderr if json_stdout else sys.stdout
    failures = 0
    artifacts = []
    for spec in specs:
        print(f"\n### {spec.exp_id}: {spec.title}", file=chatter)
        tables, artifact = registry.run_experiment(
            spec, seeds, parallel=args.parallel, evaluate=evaluate
        )
        artifacts.append(artifact)
        for table in tables:
            print(file=chatter)
            print(table.table_str(), file=chatter)
            if args.out:
                table.save(args.out, fmt=args.format)
        if evaluate:
            failed = artifact.failed_checks()
            failures += len(failed)
            print(
                f"\n({spec.exp_id}: {len(artifact.checks)} checks over seeds "
                f"{artifact.seeds}, {len(failed)} failed; "
                f"{artifact.wall_time_s:.1f}s wall clock)",
                file=chatter,
            )
            for entry in failed:
                print(
                    f"  FAIL [{entry['variant']} seed={entry['seed']}] "
                    f"{entry['check']}: {entry['detail']}",
                    file=chatter,
                )
        else:
            print(
                f"\n({spec.exp_id} took {artifact.wall_time_s:.1f}s wall clock)",
                file=chatter,
            )
        if args.out:
            path = artifact.save(args.out)
            print(f"(run artifact: {path})", file=chatter)
    if json_stdout:
        if len(artifacts) == 1:
            print(artifacts[0].to_json())
        else:
            print(
                json.dumps(
                    [artifact.to_dict() for artifact in artifacts],
                    indent=2,
                    default=str,
                )
            )
    return 1 if failures else 0


def _trace_diff(args: argparse.Namespace) -> int:
    """``eona trace diff A.jsonl B.jsonl``: structural + latency diff."""
    from repro.obs import analyze, spans

    paths = list(args.extra)
    if len(paths) != 2:
        print("usage: eona trace diff <a.jsonl> <b.jsonl>", file=sys.stderr)
        return 2
    sides = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                sides.append(spans.load_jsonl(handle.read()))
        except (OSError, ValueError) as error:
            print(f"cannot read trace {path!r}: {error}", file=sys.stderr)
            return 2
    labels = [os.path.basename(path) for path in paths]
    if labels[0] == labels[1]:
        labels = ["a", "b"]
    print(
        analyze.render_diff(
            analyze.trace_diff(
                sides[0], sides[1], label_a=labels[0], label_b=labels[1]
            )
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run an experiment with the tracer enabled and report/emit the trace."""
    from repro.obs.trace import TRACER

    if args.experiment == "diff":
        return _trace_diff(args)
    if args.extra:
        print(
            f"unexpected trace arguments {args.extra!r} "
            "(extra paths are only for 'eona trace diff')",
            file=sys.stderr,
        )
        return 2
    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    status = 0
    for spec in specs:
        sink = None
        if args.out:
            sink = os.path.join(args.out, f"TRACE_{spec.exp_id}.jsonl")
        TRACER.enable(capacity=args.capacity, sink=sink)
        try:
            # Serial on purpose: the tracer is per-process, and forked
            # workers deliberately deactivate inherited tracers.
            registry.run_experiment(spec, seeds, parallel=False, evaluate=False)
        except Exception as error:  # noqa: BLE001 -- the trace must survive
            # A failed run is exactly when the trace matters: flush what
            # was captured before re-raising would lose it.
            TRACER.disable()
            print(
                f"{spec.exp_id}: run failed after {TRACER.emitted} events: "
                f"{type(error).__name__}: {error}",
                file=sys.stderr,
            )
            if sink is None:
                sys.stdout.write(TRACER.to_jsonl())
            else:
                print(f"(partial trace: {sink})", file=sys.stderr)
            TRACER.close()
            return 1
        finally:
            TRACER.disable()
        counts = TRACER.kind_counts()
        print(
            f"{spec.exp_id}: {TRACER.emitted} events over seeds {seeds}",
            file=sys.stderr,
        )
        for kind, count in counts.items():
            print(f"  {count:>8}  {kind}", file=sys.stderr)
        if sink is not None:
            print(f"(trace: {sink})", file=sys.stderr)
        else:
            # No sink: the ring buffer's JSONL goes to stdout for piping.
            sys.stdout.write(TRACER.to_jsonl())
        if TRACER.emitted == 0:
            print(f"{spec.exp_id}: trace is empty", file=sys.stderr)
            status = 1
        TRACER.close()
    return status


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Causal control-loop analytics over a traced run (DESIGN.md §13).

    The target is an experiment id (the experiment runs serially under
    the tracer) or an existing ``.jsonl`` trace file.  Prints the
    per-phase and per-CDN/group loop-latency tables plus the slowest
    spans; ``--chrome`` additionally exports a ``chrome://tracing``
    JSON, and ``--out`` saves the run artifact with the ``loop.*``
    metrics absorbed into its ``metrics`` block.
    """
    from repro.obs import analyze, spans
    from repro.obs.trace import TRACER

    target = args.target
    artifact = None
    if target.endswith(".jsonl") or os.path.isfile(target):
        try:
            with open(target, encoding="utf-8") as handle:
                events = spans.load_jsonl(handle.read())
        except (OSError, ValueError) as error:
            print(f"cannot read trace {target!r}: {error}", file=sys.stderr)
            return 2
        label = os.path.basename(target)
    else:
        specs = _resolve_specs(target)
        if specs is None or len(specs) != 1:
            if specs is not None:
                print("'analyze' takes one experiment, not 'all'", file=sys.stderr)
            return 2
        spec = specs[0]
        label = spec.exp_id
        seeds = _resolve_seeds(args)
        TRACER.enable(capacity=args.capacity)
        try:
            # Serial: the tracer is per-process (workers deactivate it).
            _tables, artifact = registry.run_experiment(
                spec, seeds, parallel=False, evaluate=True
            )
        finally:
            TRACER.disable()
        events = TRACER.events()
        TRACER.close()
    if not events:
        print(f"{label}: trace is empty, nothing to analyze", file=sys.stderr)
        return 1

    print(f"== {label}: loop latency by phase ==")
    print(analyze.render_latency_table(analyze.loop_latency_rows(events, by="phase")))
    print(f"\n== {label}: loop latency by CDN/group ==")
    print(
        analyze.render_latency_table(
            analyze.loop_latency_rows(events, by="group"), by="group"
        )
    )
    print(f"\n== {label}: slowest spans (top {args.top} per stage) ==")
    print(analyze.render_slowest(analyze.slowest_spans(events, top=args.top)))
    if args.chrome:
        analyze.dump_chrome_trace(events, args.chrome)
        print(f"(chrome trace: {args.chrome})", file=sys.stderr)
    if artifact is not None:
        loop = analyze.loop_metrics_snapshot(events)
        artifact.metrics.setdefault("counters", {}).update(loop["counters"])  # type: ignore[union-attr]
        artifact.metrics.setdefault("histograms", {}).update(loop["histograms"])  # type: ignore[union-attr]
        if args.out:
            path = artifact.save(args.out)
            print(f"(run artifact with loop metrics: {path})", file=sys.stderr)
    elif args.out:
        print("--out needs an experiment target, not a trace file", file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``eona bench compare``: regression-gate runs against artifacts.

    Re-runs each committed ``BENCH_<exp>.json``'s experiment with the
    baseline's seeds and diffs the artifacts: checks that passed must
    still pass, deterministic table numbers must stay within tolerance
    (environment-dependent columns are ignored).  Nonzero exit on any
    regression -- the CI gate.
    """
    from repro.experiments.spec import RunArtifact
    from repro.obs import analyze

    paths: List[str] = []
    for target in args.paths or ["benchmarks/results"]:
        if os.path.isdir(target):
            entries = sorted(
                os.path.join(target, name)
                for name in os.listdir(target)
                if name.startswith("BENCH_") and name.endswith(".json")
            )
            if not entries:
                print(f"no BENCH_*.json under {target!r}", file=sys.stderr)
                return 2
            paths.extend(entries)
        elif os.path.isfile(target):
            paths.append(target)
        else:
            print(f"no such artifact or directory: {target!r}", file=sys.stderr)
            return 2
    regressions = 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                baseline = RunArtifact.from_json(handle.read())
        except (OSError, ValueError) as error:
            print(f"cannot load artifact {path!r}: {error}", file=sys.stderr)
            return 2
        try:
            spec = registry.get(baseline.experiment)
        except KeyError:
            print(
                f"{path}: baseline names unknown experiment "
                f"{baseline.experiment!r}",
                file=sys.stderr,
            )
            regressions += 1
            continue
        seeds = seeds_arg(args.seeds) if args.seeds else baseline.seeds
        print(
            f"{baseline.experiment}: re-running seeds {seeds} "
            f"against {path}",
            file=sys.stderr,
        )
        _tables, current = registry.run_experiment(
            spec, seeds, parallel=args.parallel, evaluate=True
        )
        found = analyze.compare_artifacts(
            baseline.to_dict(), current.to_dict(), rtol=args.rtol
        )
        print(analyze.render_regressions(found, baseline.experiment))
        regressions += len(found)
    return 1 if regressions else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run an experiment under the handler profiler and print hot handlers."""
    from repro.obs.profile import HandlerProfiler

    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    profiler = HandlerProfiler()
    profiler.install()
    try:
        for spec in specs:
            for variant in spec.variants:
                with profiler.phase(f"{spec.exp_id}/{variant.name}"):
                    for seed in seeds:
                        variant.run(seed)
    finally:
        profiler.uninstall()
    print(profiler.report(top=args.top))
    if profiler.events == 0:
        print("no events were dispatched under the profiler", file=sys.stderr)
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """List registered fault plans; describe or apply one by name."""
    from repro.faults import get_plan, named_plans

    registry.all_specs()  # importing the experiments registers their plans
    target = args.target
    if target is not None:
        try:
            named = get_plan(target)
        except KeyError:
            named = None
        if named is not None:
            plan = named.factory()
            print(plan.describe())
            if args.apply:
                if named.apply is None:
                    print(
                        f"plan {named.name!r} has no canonical applier",
                        file=sys.stderr,
                    )
                    return 2
                counters = named.apply(plan)
                print()
                for key in sorted(counters):
                    print(f"  {counters[key]:>8}  {key}")
            return 0
        if args.apply:
            print(f"--apply needs a plan name, got {target!r}", file=sys.stderr)
            return 2
    plans = named_plans(target)
    if not plans:
        known = ", ".join(plan.name for plan in named_plans())
        print(
            f"no fault plans registered under {target!r}"
            + (f" (known plans: {known})" if known else ""),
            file=sys.stderr,
        )
        return 2
    width = max(len(plan.name) for plan in plans)
    for named in plans:
        events = len(named.factory())
        owner = named.experiment or "-"
        print(
            f"  {named.name.ljust(width)}  [{owner}] {events} events"
            + (f" -- {named.description}" if named.description else "")
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List, show, or validate the committed declarative scenario library."""
    from repro.scenarios import (
        ScenarioError,
        dump_spec,
        library_dir,
        library_names,
        load_file,
        load_library_spec,
        validate_spec,
    )

    if args.action == "list":
        names = library_names()
        if not names:
            print("scenario library is empty", file=sys.stderr)
            return 1
        width = max(len(name) for name in names)
        for name in names:
            spec = load_library_spec(name)
            facts = [f"{len(spec.params)} params"]
            if spec.populations:
                facts.append(f"{len(spec.populations)} populations")
            if spec.phases:
                facts.append(f"{len(spec.phases)} phases")
            if spec.faults:
                facts.append(f"{len(spec.faults)} fault plans")
            print(f"  {name.ljust(width)}  {spec.description.strip()}")
            print(f"  {''.ljust(width)}  {'; '.join(facts)}")
        return 0

    if args.action == "show":
        if not args.names:
            print("'show' needs a scenario name", file=sys.stderr)
            return 2
        try:
            for name in args.names:
                spec = load_library_spec(name)
                print(f"# {library_dir() / (name + '.yaml')}")
                sys.stdout.write(dump_spec(spec))
        except ScenarioError as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0

    # validate: committed library by default; names or .yaml paths when given.
    registry.all_specs()  # importing the experiments registers named fault plans
    targets = args.names or library_names()
    problems = 0
    for target in targets:
        label = target
        try:
            if target.endswith((".yaml", ".yml")) or os.sep in target:
                spec = load_file(target)
            else:
                spec = load_library_spec(target)
            found = validate_spec(spec, strict_named_plans=True)
        except ScenarioError as error:
            found = [str(error)]
        if found:
            problems += len(found)
            for problem in found:
                print(f"  {label}: {problem}")
        else:
            print(f"  {label}: ok")
    if problems:
        print(f"\n{problems} problem(s) across {len(targets)} spec(s)")
        return 1
    print(f"\n{len(targets)} spec(s) valid")
    return 0


def _serve_infp(args: argparse.Namespace) -> int:
    """Run the InfP plane as a TCP service (the server half of §14)."""
    from repro.experiments.service_worlds import build_infp_service
    from repro.obs.trace import TRACER
    from repro.transport import FrameRecorder, SimPacer, TcpGlassServer

    world = build_infp_service(seed=args.seed, horizon_s=args.horizon)
    # Ring-buffer tracing (no sink): the __trace__ control query streams
    # the server's control-loop events to clients over the same wire.
    TRACER.enable()
    handler = world.service.handle_frame
    recorder = None
    if args.record:
        recorder = FrameRecorder(
            handler, args.record, clock=lambda: world.sim.now
        )
        handler = recorder
    pacer = SimPacer(world.sim, time_scale=args.time_scale)
    server = TcpGlassServer(
        handler,
        host=args.host,
        port=args.port,
        pacer=pacer,
        horizon_s=args.horizon,
        run_for_s=args.run_for,
    )

    def on_bound(port: int) -> None:
        # The parent process synchronizes on this exact line (see
        # service_worlds.spawn_infp_server): keep it first and flushed.
        print(
            f"SERVING port={port} host={args.host} seed={args.seed} "
            f"time_scale={args.time_scale:g} horizon={args.horizon:g}",
            flush=True,
        )
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "port": port,
                        "host": args.host,
                        "seed": args.seed,
                        "time_scale": args.time_scale,
                        "horizon_s": args.horizon,
                        "owners": world.service.owners(),
                    },
                    handle,
                )

    server.on_bound = on_bound
    try:
        server.serve()
    except KeyboardInterrupt:
        pass
    finally:
        if recorder is not None:
            recorder.close()
        world.infp.stop()
        TRACER.close()
    print(
        f"served connections={server.connections} "
        f"frames={server.frames_served} sim_t={world.sim.now:g}",
        flush=True,
    )
    return 0


def _serve_appp(args: argparse.Namespace, connect: str) -> int:
    """Run the AppP plane against a remote InfP (the client half)."""
    from repro.experiments.service_worlds import run_appp_client
    from repro.transport import RemoteLookingGlass, TcpTransport

    host, _, port_text = connect.rpartition(":")
    transport = TcpTransport(
        host=host or "127.0.0.1", port=int(port_text)
    )
    proxy = RemoteLookingGlass(
        transport,
        owner="isp",
        kind="i2a",
        timeout_s=args.timeout,
        retries=2,
    )
    try:
        row = run_appp_client(proxy, seed=args.seed, horizon_s=args.horizon)
    finally:
        transport.close()
    for key in sorted(row):
        if not key.startswith("_"):
            print(f"{key}: {row[key]}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Launch a plane (or the two-process demo) in live service mode."""
    if args.plane == "infp":
        return _serve_infp(args)
    if args.plane == "appp":
        if not args.connect:
            print("serve appp needs --connect HOST:PORT", file=sys.stderr)
            return 2
        return _serve_appp(args, args.connect)

    # demo: the InfP as a real second OS process, the AppP against it.
    from repro.experiments.service_worlds import spawn_infp_server, stop_server
    from repro.transport import (
        CONTROL_OWNER,
        RemoteLookingGlass,
        TcpTransport,
        drain_trace,
    )

    process, port = spawn_infp_server(
        seed=args.seed,
        time_scale=args.time_scale,
        horizon_s=args.horizon,
        run_for_s=args.run_for or 120.0,
    )
    print(f"infp serving on 127.0.0.1:{port} (pid {process.pid})")
    try:
        exit_code = _serve_appp(args, f"127.0.0.1:{port}")
        transport = TcpTransport(port=port)
        try:
            control = RemoteLookingGlass(
                transport, owner=CONTROL_OWNER, timeout_s=args.timeout
            )
            events, _ = drain_trace(control, requester="appp")
            print(f"server trace events streamed: {len(events)}")
        finally:
            transport.close()
        return exit_code
    finally:
        code = stop_server(process)
        print(f"infp stopped (exit {code})")


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run simlint (repro.analysis) with the arguments collected after 'lint'."""
    from repro.analysis import runner

    return runner.main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eona",
        description=(
            "EONA (HotNets 2014) reproduction: run the per-figure "
            "experiments and print the tables they regenerate."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their variants"
    )
    list_parser.set_defaults(fn=_cmd_list)

    known = ", ".join(registry.experiment_ids())
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help=f"{known}, or 'all'")
    run_parser.add_argument("--seed", type=int, default=0, help="single seed")
    run_parser.add_argument(
        "--seeds",
        help="seed sweep, e.g. '0..9' or '0,3,7'; tables become mean±std",
    )
    run_parser.add_argument(
        "--parallel", action="store_true",
        help="run the seed sweep in worker processes",
    )
    run_parser.add_argument(
        "--no-checks", action="store_true",
        help="skip evaluating the spec's shape checks",
    )
    run_parser.add_argument(
        "--out", help="directory to save tables and BENCH_<id>.json artifacts into"
    )
    run_parser.add_argument(
        "--format", choices=("txt", "csv", "json"), default="txt",
        help="file format for --out tables (default: txt)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run an experiment with tracing on; JSONL to --out or stdout; "
        "'trace diff A B' diffs two traces",
    )
    trace_parser.add_argument(
        "experiment", help=f"{known}, 'all', or 'diff' (then two .jsonl paths)"
    )
    trace_parser.add_argument(
        "extra", nargs="*",
        help="for 'diff': the two trace files to compare",
    )
    trace_parser.add_argument("--seed", type=int, default=0, help="single seed")
    trace_parser.add_argument(
        "--seeds", help="seed list, e.g. '0..4' or '0,3' (runs serially)"
    )
    trace_parser.add_argument(
        "--out",
        help="directory receiving TRACE_<id>.jsonl; omit to dump JSONL to stdout",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=65536,
        help="in-memory ring-buffer size (the sink gets every event)",
    )
    trace_parser.set_defaults(fn=_cmd_trace, parallel=False)

    analyze_parser = subparsers.add_parser(
        "analyze",
        help="loop-latency tables, slowest spans, and Chrome-trace export "
        "from a traced run (DESIGN.md §13)",
    )
    analyze_parser.add_argument(
        "target", help=f"experiment to run under the tracer ({known}) "
        "or an existing TRACE_*.jsonl",
    )
    analyze_parser.add_argument("--seed", type=int, default=0, help="single seed")
    analyze_parser.add_argument(
        "--seeds", help="seed list, e.g. '0..4' or '0,3' (runs serially)"
    )
    analyze_parser.add_argument(
        "--top", type=int, default=3,
        help="slowest spans listed per loop stage (default: 3)",
    )
    analyze_parser.add_argument(
        "--chrome", metavar="PATH",
        help="write a chrome://tracing / Perfetto JSON export here",
    )
    analyze_parser.add_argument(
        "--out",
        help="directory to save the BENCH_<id>.json artifact (loop.* "
        "metrics absorbed) into",
    )
    analyze_parser.add_argument(
        "--capacity", type=int, default=65536,
        help="in-memory ring-buffer size for the traced run",
    )
    analyze_parser.set_defaults(fn=_cmd_analyze, parallel=False)

    bench_parser = subparsers.add_parser(
        "bench",
        help="compare committed BENCH_*.json artifacts against fresh runs; "
        "nonzero exit on regression",
    )
    bench_parser.add_argument(
        "action", choices=("compare",),
        help="'compare' re-runs each baseline's experiment and diffs artifacts",
    )
    bench_parser.add_argument(
        "paths", nargs="*",
        help="BENCH_*.json files or directories holding them "
        "(default: benchmarks/results)",
    )
    bench_parser.add_argument(
        "--seeds", help="override the baseline's seeds, e.g. '0..4'"
    )
    bench_parser.add_argument(
        "--rtol", type=float, default=0.05,
        help="relative tolerance for deterministic numeric columns "
        "(default: 0.05)",
    )
    bench_parser.add_argument(
        "--parallel", action="store_true",
        help="run the seed sweep in worker processes",
    )
    bench_parser.set_defaults(fn=_cmd_bench)

    profile_parser = subparsers.add_parser(
        "profile",
        help="run an experiment under the event-handler wall-clock profiler",
    )
    profile_parser.add_argument("experiment", help=f"{known}, or 'all'")
    profile_parser.add_argument("--seed", type=int, default=0, help="single seed")
    profile_parser.add_argument(
        "--seeds", help="seed list, e.g. '0..4' or '0,3' (runs serially)"
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, help="how many hot handlers to print"
    )
    profile_parser.set_defaults(fn=_cmd_profile, parallel=False)

    faults_parser = subparsers.add_parser(
        "faults",
        help="list registered fault plans; describe or apply one (DESIGN.md §10)",
    )
    faults_parser.add_argument(
        "target", nargs="?",
        help="experiment id (list its plans) or plan name (describe it); "
        "omit to list every registered plan",
    )
    faults_parser.add_argument(
        "--apply", action="store_true",
        help="apply the named plan to its experiment's canonical world "
        "and print the resulting faults.* counters",
    )
    faults_parser.set_defaults(fn=_cmd_faults)

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list, show, or validate the declarative scenario library (DESIGN.md §12)",
    )
    scenarios_parser.add_argument(
        "action", choices=("list", "show", "validate"),
        help="'list' the library, 'show' a spec as YAML, or 'validate' specs",
    )
    scenarios_parser.add_argument(
        "names", nargs="*",
        help="scenario names (or .yaml paths for 'validate'); "
        "'validate' with no names checks every committed spec",
    )
    scenarios_parser.set_defaults(fn=_cmd_scenarios)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run a plane as a live service over TCP (DESIGN.md §14)",
    )
    serve_parser.add_argument(
        "plane",
        choices=("appp", "infp", "demo"),
        help=(
            "infp: serve the ISP's I2A glass on a TCP port; appp: run the "
            "application plane against --connect; demo: both, as two "
            "processes"
        ),
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (infp)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 picks a free one (infp)",
    )
    serve_parser.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="remote InfP service to query (appp)",
    )
    serve_parser.add_argument(
        "--time-scale", type=float, default=60.0,
        help="sim seconds per wall second for the serving world (infp/demo)",
    )
    serve_parser.add_argument(
        "--horizon", type=float, default=600.0,
        help="sim-time horizon of the world on either side",
    )
    serve_parser.add_argument(
        "--run-for", type=float, default=None,
        help="wall-clock lifetime of the server (default: until killed)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-query TCP timeout before retry (appp/demo)",
    )
    serve_parser.add_argument(
        "--ready-file", default=None,
        help="write a JSON readiness blob (port, owners) here once bound",
    )
    serve_parser.add_argument(
        "--record", default=None,
        help="tee every served frame into this JSONL feed (infp)",
    )
    serve_parser.set_defaults(fn=_cmd_serve)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run simlint, the determinism & layering analyzer (DESIGN.md §7)",
    )
    lint_parser.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to simlint (paths, --format, --select, ...)",
    )
    lint_parser.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forward everything after 'lint' verbatim: argparse.REMAINDER
        # rejects option-like tokens (e.g. 'lint --list-rules') otherwise.
        from repro.analysis import runner

        return runner.main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
