"""Command-line entry point: run any experiment and print its table.

The experiment list is not maintained here: every ``exp_*`` module
registers an :class:`~repro.experiments.spec.ExperimentSpec` and the
CLI drives :mod:`repro.experiments.registry`.

Examples::

    eona list
    eona run e4
    eona run e2 --seeds 0..4 --parallel
    eona run all --seed 0 --out results/ --format json
    eona trace e2 --seeds 0 --out traces/
    eona profile e2 --seeds 0 --top 10
    eona lint
    eona lint src/repro/network --format json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.spec import seeds_arg


def _version() -> str:
    """Installed package version; pyproject's version for src-tree runs."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


def _cmd_list(_args: argparse.Namespace) -> int:
    specs = registry.all_specs()
    width = max(len(spec.exp_id) for spec in specs)
    for spec in specs:
        print(f"  {spec.exp_id.ljust(width)}  {spec.title}")
        variants = ", ".join(variant.name for variant in spec.variants)
        checks = sum(len(variant.checks) for variant in spec.variants)
        print(f"  {''.ljust(width)}  variants: {variants}; {checks} checks")
    return 0


def _resolve_seeds(args: argparse.Namespace) -> List[int]:
    if args.seeds is not None:
        return seeds_arg(args.seeds)
    return [args.seed]


def _resolve_specs(experiment: str) -> Optional[List[object]]:
    if experiment == "all":
        return list(registry.all_specs())
    try:
        return [registry.get(experiment)]
    except KeyError:
        print(
            f"unknown experiment {experiment!r}; try 'eona list'",
            file=sys.stderr,
        )
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    evaluate = not args.no_checks
    # With --format json, stdout carries nothing but the run artifact(s)
    # so the output can be piped; the human narration moves to stderr.
    json_stdout = args.format == "json"
    chatter = sys.stderr if json_stdout else sys.stdout
    failures = 0
    artifacts = []
    for spec in specs:
        print(f"\n### {spec.exp_id}: {spec.title}", file=chatter)
        tables, artifact = registry.run_experiment(
            spec, seeds, parallel=args.parallel, evaluate=evaluate
        )
        artifacts.append(artifact)
        for table in tables:
            print(file=chatter)
            print(table.table_str(), file=chatter)
            if args.out:
                table.save(args.out, fmt=args.format)
        if evaluate:
            failed = artifact.failed_checks()
            failures += len(failed)
            print(
                f"\n({spec.exp_id}: {len(artifact.checks)} checks over seeds "
                f"{artifact.seeds}, {len(failed)} failed; "
                f"{artifact.wall_time_s:.1f}s wall clock)",
                file=chatter,
            )
            for entry in failed:
                print(
                    f"  FAIL [{entry['variant']} seed={entry['seed']}] "
                    f"{entry['check']}: {entry['detail']}",
                    file=chatter,
                )
        else:
            print(
                f"\n({spec.exp_id} took {artifact.wall_time_s:.1f}s wall clock)",
                file=chatter,
            )
        if args.out:
            path = artifact.save(args.out)
            print(f"(run artifact: {path})", file=chatter)
    if json_stdout:
        if len(artifacts) == 1:
            print(artifacts[0].to_json())
        else:
            print(
                json.dumps(
                    [artifact.to_dict() for artifact in artifacts],
                    indent=2,
                    default=str,
                )
            )
    return 1 if failures else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run an experiment with the tracer enabled and report/emit the trace."""
    from repro.obs.trace import TRACER

    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    status = 0
    for spec in specs:
        sink = None
        if args.out:
            sink = os.path.join(args.out, f"TRACE_{spec.exp_id}.jsonl")
        TRACER.enable(capacity=args.capacity, sink=sink)
        try:
            # Serial on purpose: the tracer is per-process, and forked
            # workers deliberately deactivate inherited tracers.
            registry.run_experiment(spec, seeds, parallel=False, evaluate=False)
        finally:
            TRACER.disable()
        counts = TRACER.kind_counts()
        print(
            f"{spec.exp_id}: {TRACER.emitted} events over seeds {seeds}",
            file=sys.stderr,
        )
        for kind, count in counts.items():
            print(f"  {count:>8}  {kind}", file=sys.stderr)
        if sink is not None:
            print(f"(trace: {sink})", file=sys.stderr)
        else:
            # No sink: the ring buffer's JSONL goes to stdout for piping.
            sys.stdout.write(TRACER.to_jsonl())
        if TRACER.emitted == 0:
            print(f"{spec.exp_id}: trace is empty", file=sys.stderr)
            status = 1
        TRACER.close()
    return status


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run an experiment under the handler profiler and print hot handlers."""
    from repro.obs.profile import HandlerProfiler

    specs = _resolve_specs(args.experiment)
    if specs is None:
        return 2
    seeds = _resolve_seeds(args)
    profiler = HandlerProfiler()
    profiler.install()
    try:
        for spec in specs:
            for variant in spec.variants:
                with profiler.phase(f"{spec.exp_id}/{variant.name}"):
                    for seed in seeds:
                        variant.run(seed)
    finally:
        profiler.uninstall()
    print(profiler.report(top=args.top))
    if profiler.events == 0:
        print("no events were dispatched under the profiler", file=sys.stderr)
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """List registered fault plans; describe or apply one by name."""
    from repro.faults import get_plan, named_plans

    registry.all_specs()  # importing the experiments registers their plans
    target = args.target
    if target is not None:
        try:
            named = get_plan(target)
        except KeyError:
            named = None
        if named is not None:
            plan = named.factory()
            print(plan.describe())
            if args.apply:
                if named.apply is None:
                    print(
                        f"plan {named.name!r} has no canonical applier",
                        file=sys.stderr,
                    )
                    return 2
                counters = named.apply(plan)
                print()
                for key in sorted(counters):
                    print(f"  {counters[key]:>8}  {key}")
            return 0
        if args.apply:
            print(f"--apply needs a plan name, got {target!r}", file=sys.stderr)
            return 2
    plans = named_plans(target)
    if not plans:
        known = ", ".join(plan.name for plan in named_plans())
        print(
            f"no fault plans registered under {target!r}"
            + (f" (known plans: {known})" if known else ""),
            file=sys.stderr,
        )
        return 2
    width = max(len(plan.name) for plan in plans)
    for named in plans:
        events = len(named.factory())
        owner = named.experiment or "-"
        print(
            f"  {named.name.ljust(width)}  [{owner}] {events} events"
            + (f" -- {named.description}" if named.description else "")
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List, show, or validate the committed declarative scenario library."""
    from repro.scenarios import (
        ScenarioError,
        dump_spec,
        library_dir,
        library_names,
        load_file,
        load_library_spec,
        validate_spec,
    )

    if args.action == "list":
        names = library_names()
        if not names:
            print("scenario library is empty", file=sys.stderr)
            return 1
        width = max(len(name) for name in names)
        for name in names:
            spec = load_library_spec(name)
            facts = [f"{len(spec.params)} params"]
            if spec.populations:
                facts.append(f"{len(spec.populations)} populations")
            if spec.phases:
                facts.append(f"{len(spec.phases)} phases")
            if spec.faults:
                facts.append(f"{len(spec.faults)} fault plans")
            print(f"  {name.ljust(width)}  {spec.description.strip()}")
            print(f"  {''.ljust(width)}  {'; '.join(facts)}")
        return 0

    if args.action == "show":
        if not args.names:
            print("'show' needs a scenario name", file=sys.stderr)
            return 2
        try:
            for name in args.names:
                spec = load_library_spec(name)
                print(f"# {library_dir() / (name + '.yaml')}")
                sys.stdout.write(dump_spec(spec))
        except ScenarioError as error:
            print(str(error), file=sys.stderr)
            return 2
        return 0

    # validate: committed library by default; names or .yaml paths when given.
    registry.all_specs()  # importing the experiments registers named fault plans
    targets = args.names or library_names()
    problems = 0
    for target in targets:
        label = target
        try:
            if target.endswith((".yaml", ".yml")) or os.sep in target:
                spec = load_file(target)
            else:
                spec = load_library_spec(target)
            found = validate_spec(spec, strict_named_plans=True)
        except ScenarioError as error:
            found = [str(error)]
        if found:
            problems += len(found)
            for problem in found:
                print(f"  {label}: {problem}")
        else:
            print(f"  {label}: ok")
    if problems:
        print(f"\n{problems} problem(s) across {len(targets)} spec(s)")
        return 1
    print(f"\n{len(targets)} spec(s) valid")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run simlint (repro.analysis) with the arguments collected after 'lint'."""
    from repro.analysis import runner

    return runner.main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eona",
        description=(
            "EONA (HotNets 2014) reproduction: run the per-figure "
            "experiments and print the tables they regenerate."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their variants"
    )
    list_parser.set_defaults(fn=_cmd_list)

    known = ", ".join(registry.experiment_ids())
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help=f"{known}, or 'all'")
    run_parser.add_argument("--seed", type=int, default=0, help="single seed")
    run_parser.add_argument(
        "--seeds",
        help="seed sweep, e.g. '0..9' or '0,3,7'; tables become mean±std",
    )
    run_parser.add_argument(
        "--parallel", action="store_true",
        help="run the seed sweep in worker processes",
    )
    run_parser.add_argument(
        "--no-checks", action="store_true",
        help="skip evaluating the spec's shape checks",
    )
    run_parser.add_argument(
        "--out", help="directory to save tables and BENCH_<id>.json artifacts into"
    )
    run_parser.add_argument(
        "--format", choices=("txt", "csv", "json"), default="txt",
        help="file format for --out tables (default: txt)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    trace_parser = subparsers.add_parser(
        "trace",
        help="run an experiment with tracing on; JSONL to --out or stdout",
    )
    trace_parser.add_argument("experiment", help=f"{known}, or 'all'")
    trace_parser.add_argument("--seed", type=int, default=0, help="single seed")
    trace_parser.add_argument(
        "--seeds", help="seed list, e.g. '0..4' or '0,3' (runs serially)"
    )
    trace_parser.add_argument(
        "--out",
        help="directory receiving TRACE_<id>.jsonl; omit to dump JSONL to stdout",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=65536,
        help="in-memory ring-buffer size (the sink gets every event)",
    )
    trace_parser.set_defaults(fn=_cmd_trace, parallel=False)

    profile_parser = subparsers.add_parser(
        "profile",
        help="run an experiment under the event-handler wall-clock profiler",
    )
    profile_parser.add_argument("experiment", help=f"{known}, or 'all'")
    profile_parser.add_argument("--seed", type=int, default=0, help="single seed")
    profile_parser.add_argument(
        "--seeds", help="seed list, e.g. '0..4' or '0,3' (runs serially)"
    )
    profile_parser.add_argument(
        "--top", type=int, default=10, help="how many hot handlers to print"
    )
    profile_parser.set_defaults(fn=_cmd_profile, parallel=False)

    faults_parser = subparsers.add_parser(
        "faults",
        help="list registered fault plans; describe or apply one (DESIGN.md §10)",
    )
    faults_parser.add_argument(
        "target", nargs="?",
        help="experiment id (list its plans) or plan name (describe it); "
        "omit to list every registered plan",
    )
    faults_parser.add_argument(
        "--apply", action="store_true",
        help="apply the named plan to its experiment's canonical world "
        "and print the resulting faults.* counters",
    )
    faults_parser.set_defaults(fn=_cmd_faults)

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list, show, or validate the declarative scenario library (DESIGN.md §12)",
    )
    scenarios_parser.add_argument(
        "action", choices=("list", "show", "validate"),
        help="'list' the library, 'show' a spec as YAML, or 'validate' specs",
    )
    scenarios_parser.add_argument(
        "names", nargs="*",
        help="scenario names (or .yaml paths for 'validate'); "
        "'validate' with no names checks every committed spec",
    )
    scenarios_parser.set_defaults(fn=_cmd_scenarios)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run simlint, the determinism & layering analyzer (DESIGN.md §7)",
    )
    lint_parser.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to simlint (paths, --format, --select, ...)",
    )
    lint_parser.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forward everything after 'lint' verbatim: argparse.REMAINDER
        # rejects option-like tokens (e.g. 'lint --list-rules') otherwise.
        from repro.analysis import runner

        return runner.main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
