"""Command-line entry point: run any experiment and print its table.

Examples::

    eona list
    eona run e4
    eona run e2 --seed 3
    eona run all --out results/
    eona lint
    eona lint src/repro/network --format json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.experiments import (
    exp_e1_coarse_control,
    exp_e2_flash_crowd,
    exp_e3_inference,
    exp_e4_oscillation,
    exp_e5_energy,
    exp_e6_staleness,
    exp_e7_scalability,
    exp_e8_fairness,
    exp_e9_recipe,
    exp_e10_timescales,
    exp_e11_privacy,
    exp_e12_attributes,
    exp_e13_controlplane,
    exp_e14_splits,
)
from repro.experiments.common import ExperimentResult

#: Experiment id -> (description, runner).  Runners take only ``seed``.
EXPERIMENTS: Dict[str, tuple] = {
    "e1": (
        "coarse control: bad server, intra-CDN switch vs CDN switch (§2)",
        lambda seed: [exp_e1_coarse_control.run(seed=seed)],
    ),
    "e2": (
        "flash crowd behind congested access ISP (Figure 3)",
        lambda seed: [
            exp_e2_flash_crowd.run(seed=seed),
            exp_e2_flash_crowd.run_abr_ablation(seed=seed),
        ],
    ),
    "e3": (
        "inferring web QoE from network features vs direct A2I (Figure 4)",
        lambda seed: [
            exp_e3_inference.run(seed=seed),
            exp_e3_inference.run_volatility_sweep(seed=seed),
        ],
    ),
    "e4": (
        "CDN/peering control-loop oscillation (Figure 5)",
        lambda seed: [
            exp_e4_oscillation.run(seed=seed),
            exp_e4_oscillation.run_switch_growth(seed=seed),
        ],
    ),
    "e5": (
        "server energy saving with/without A2I feedback (§2, §5)",
        lambda seed: [exp_e5_energy.run(seed=seed)],
    ),
    "e6": (
        "EONA benefit vs interface staleness (§5)",
        lambda seed: [
            exp_e6_staleness.run(seed=seed),
            exp_e6_staleness.run_te_staleness(seed=seed),
        ],
    ),
    "e7": (
        "A2I analytics and allocator scalability (§5)",
        lambda seed: [exp_e7_scalability.run()],
    ),
    "e8": (
        "fairness across multiple AppPs (§5)",
        lambda seed: [exp_e8_fairness.run(seed=seed)],
    ),
    "e9": (
        "interface narrowing recipe vs the oracle (§4)",
        lambda seed: [exp_e9_recipe.run(seed=seed)],
    ),
    "e10": (
        "timescale coupling and damping ablation (§5)",
        lambda seed: [
            exp_e10_timescales.run_partial(seed=seed),
            exp_e10_timescales.run_full(seed=seed),
            exp_e10_timescales.run_te_damping(seed=seed),
        ],
    ),
    "e11": (
        "privacy blinding (Laplace noise on A2I demand) vs effectiveness (§4)",
        lambda seed: [exp_e11_privacy.run(seed=seed)],
    ),
    "e12": (
        "why A2I carries the client-ISP attribute: scoped congestion response (§3)",
        lambda seed: [exp_e12_attributes.run(seed=seed)],
    ),
    "e13": (
        "coordinated control plane (C3-style) vs per-session reaction (§1 trend 3)",
        lambda seed: [exp_e13_controlplane.run(seed=seed)],
    ),
    "e14": (
        "traffic splits across peering points when no single egress fits (§4)",
        lambda seed: [exp_e14_splits.run(seed=seed)],
    ),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key, (description, _runner) in EXPERIMENTS.items():
        print(f"  {key.ljust(width)}  {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    keys: List[str]
    if args.experiment == "all":
        keys = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        keys = [args.experiment]
    else:
        print(f"unknown experiment {args.experiment!r}; try 'eona list'",
              file=sys.stderr)
        return 2
    for key in keys:
        description, runner = EXPERIMENTS[key]
        print(f"\n### {key}: {description}")
        started = time.perf_counter()
        results: List[ExperimentResult] = runner(args.seed)
        elapsed = time.perf_counter() - started
        for result in results:
            print()
            print(result.table_str())
            if args.out:
                result.save(args.out, fmt=args.format)
        print(f"\n({key} took {elapsed:.1f}s wall clock)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run simlint (repro.analysis) with the arguments collected after 'lint'."""
    from repro.analysis import runner

    return runner.main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eona",
        description=(
            "EONA (HotNets 2014) reproduction: run the per-figure "
            "experiments and print the tables they regenerate."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(fn=_cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="e1..e10, or 'all'")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--out", help="directory to save tables into")
    run_parser.add_argument(
        "--format", choices=("txt", "csv", "json"), default="txt",
        help="file format for --out (default: txt)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run simlint, the determinism & layering analyzer (DESIGN.md §7)",
    )
    lint_parser.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to simlint (paths, --format, --select, ...)",
    )
    lint_parser.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forward everything after 'lint' verbatim: argparse.REMAINDER
        # rejects option-like tokens (e.g. 'lint --list-rules') otherwise.
        from repro.analysis import runner

        return runner.main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
