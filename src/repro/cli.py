"""Command-line entry point: run any experiment and print its table.

The experiment list is not maintained here: every ``exp_*`` module
registers an :class:`~repro.experiments.spec.ExperimentSpec` and the
CLI drives :mod:`repro.experiments.registry`.

Examples::

    eona list
    eona run e4
    eona run e2 --seeds 0..4 --parallel
    eona run all --seed 0 --out results/ --format json
    eona lint
    eona lint src/repro/network --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import registry
from repro.experiments.spec import seeds_arg


def _cmd_list(_args: argparse.Namespace) -> int:
    specs = registry.all_specs()
    width = max(len(spec.exp_id) for spec in specs)
    for spec in specs:
        print(f"  {spec.exp_id.ljust(width)}  {spec.title}")
        variants = ", ".join(variant.name for variant in spec.variants)
        checks = sum(len(variant.checks) for variant in spec.variants)
        print(f"  {''.ljust(width)}  variants: {variants}; {checks} checks")
    return 0


def _resolve_seeds(args: argparse.Namespace) -> List[int]:
    if args.seeds is not None:
        return seeds_arg(args.seeds)
    return [args.seed]


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment == "all":
        specs = registry.all_specs()
    else:
        try:
            specs = [registry.get(args.experiment)]
        except KeyError:
            print(
                f"unknown experiment {args.experiment!r}; try 'eona list'",
                file=sys.stderr,
            )
            return 2
    seeds = _resolve_seeds(args)
    evaluate = not args.no_checks
    failures = 0
    for spec in specs:
        print(f"\n### {spec.exp_id}: {spec.title}")
        tables, artifact = registry.run_experiment(
            spec, seeds, parallel=args.parallel, evaluate=evaluate
        )
        for table in tables:
            print()
            print(table.table_str())
            if args.out:
                table.save(args.out, fmt=args.format)
        if evaluate:
            failed = artifact.failed_checks()
            failures += len(failed)
            print(
                f"\n({spec.exp_id}: {len(artifact.checks)} checks over seeds "
                f"{artifact.seeds}, {len(failed)} failed; "
                f"{artifact.wall_time_s:.1f}s wall clock)"
            )
            for entry in failed:
                print(
                    f"  FAIL [{entry['variant']} seed={entry['seed']}] "
                    f"{entry['check']}: {entry['detail']}"
                )
        else:
            print(f"\n({spec.exp_id} took {artifact.wall_time_s:.1f}s wall clock)")
        if args.out:
            path = artifact.save(args.out)
            print(f"(run artifact: {path})")
    return 1 if failures else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run simlint (repro.analysis) with the arguments collected after 'lint'."""
    from repro.analysis import runner

    return runner.main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="eona",
        description=(
            "EONA (HotNets 2014) reproduction: run the per-figure "
            "experiments and print the tables they regenerate."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their variants"
    )
    list_parser.set_defaults(fn=_cmd_list)

    known = ", ".join(registry.experiment_ids())
    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help=f"{known}, or 'all'")
    run_parser.add_argument("--seed", type=int, default=0, help="single seed")
    run_parser.add_argument(
        "--seeds",
        help="seed sweep, e.g. '0..9' or '0,3,7'; tables become mean±std",
    )
    run_parser.add_argument(
        "--parallel", action="store_true",
        help="run the seed sweep in worker processes",
    )
    run_parser.add_argument(
        "--no-checks", action="store_true",
        help="skip evaluating the spec's shape checks",
    )
    run_parser.add_argument(
        "--out", help="directory to save tables and BENCH_<id>.json artifacts into"
    )
    run_parser.add_argument(
        "--format", choices=("txt", "csv", "json"), default="txt",
        help="file format for --out tables (default: txt)",
    )
    run_parser.set_defaults(fn=_cmd_run)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run simlint, the determinism & layering analyzer (DESIGN.md §7)",
    )
    lint_parser.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to simlint (paths, --format, --select, ...)",
    )
    lint_parser.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # Forward everything after 'lint' verbatim: argparse.REMAINDER
        # rejects option-like tokens (e.g. 'lint --list-rules') otherwise.
        from repro.analysis import runner

        return runner.main(arguments[1:])
    args = build_parser().parse_args(arguments)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
