"""The content provider's origin: the authoritative copy of the catalog.

On an edge-cache miss, content is pulled through the origin, so the
delivered flow traverses origin → edge → client and pays the (longer,
possibly narrower) origin path.  That extra cost is what makes the
"coarse control" scenario's cold-CDN switch expensive.
"""

from __future__ import annotations


class Origin:
    """Origin server attached to a topology node.

    Attributes:
        node_id: Topology node holding the origin.
        fetches: Count of pull-through fetches (cache misses served).
        mbit_served: Volume pulled from the origin.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.fetches = 0
        self.mbit_served = 0.0

    def record_fetch(self, size_mbit: float) -> None:
        self.fetches += 1
        self.mbit_served += size_mbit

    def __repr__(self) -> str:
        return f"Origin({self.node_id}, fetches={self.fetches})"
