"""Content catalog with Zipf-distributed popularity.

Video catalogs are heavily skewed: a small head of titles receives most
requests (the flash-crowd scenario is the extreme case -- one title
receives nearly all of them).  The catalog owns the popularity
distribution so that workload generators and caches agree on item
identities and sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ContentItem:
    """One piece of content.

    Attributes:
        content_id: Stable identifier, e.g. ``"video-0042"``.
        size_mbit: Full size at the reference bitrate (cache accounting).
        duration_s: Playback duration for video items; 0 for web objects.
    """

    content_id: str
    size_mbit: float
    duration_s: float = 0.0


class ContentCatalog:
    """A fixed set of items with Zipf(α) request popularity.

    Args:
        n_items: Catalog size.
        zipf_alpha: Skew parameter; 0 = uniform, ~0.8-1.2 is typical for
            VoD catalogs.
        item_size_mbit: Size of each item (uniform for simplicity; the
            cache experiments vary hit behaviour through skew, not size).
        duration_s: Playback duration attached to every item.
        prefix: Content id prefix.
    """

    def __init__(
        self,
        n_items: int,
        zipf_alpha: float = 1.0,
        item_size_mbit: float = 100.0,
        duration_s: float = 120.0,
        prefix: str = "video",
    ):
        if n_items <= 0:
            raise ValueError(f"n_items must be positive, got {n_items!r}")
        if zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {zipf_alpha!r}")
        self.zipf_alpha = zipf_alpha
        self._items: List[ContentItem] = [
            ContentItem(
                content_id=f"{prefix}-{index:05d}",
                size_mbit=item_size_mbit,
                duration_s=duration_s,
            )
            for index in range(n_items)
        ]
        weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(n_items)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against float drift

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def item(self, content_id: str) -> ContentItem:
        index = int(content_id.rsplit("-", 1)[1])
        return self._items[index]

    def by_rank(self, rank: int) -> ContentItem:
        """The ``rank``-th most popular item (0 = most popular)."""
        return self._items[rank]

    def sample(self, rng: random.Random) -> ContentItem:
        """Draw one item according to the Zipf popularity."""
        u = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self._items[lo]

    def popularity(self, rank: int) -> float:
        """Request probability of the item at ``rank``."""
        if rank == 0:
            return self._cumulative[0]
        return self._cumulative[rank] - self._cumulative[rank - 1]
