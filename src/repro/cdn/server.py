"""A CDN edge server (cluster) with capacity, load, and power state.

Server load and health are the quantities a CDN can export over
EONA-I2A ("hints on alternative servers", "server load information"),
and the power state is the knob in the energy-saving scenario: the InfP
turns clusters off during off-peak hours and needs A2I feedback to know
whether it went too far.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cdn.cache import LruCache


class ServerOverloadedError(Exception):
    """Raised when a session is assigned to a server beyond capacity."""


class CdnServer:
    """One edge cluster attached to a topology node.

    Args:
        server_id: Unique name, e.g. ``"cdnX.edge1"``.
        node_id: Topology node the cluster is attached to.
        capacity_sessions: Maximum concurrent sessions served.
        cache_mbit: Edge cache size.
        degraded_rate_mbps: When set, per-session throughput from this
            server is capped at this rate -- the paper's "issue with a
            particular server within a CDN" in the coarse-control
            scenario.
    """

    def __init__(
        self,
        server_id: str,
        node_id: str,
        capacity_sessions: int,
        cache_mbit: float = 10_000.0,
        degraded_rate_mbps: Optional[float] = None,
    ):
        if capacity_sessions <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_sessions!r}")
        self.server_id = server_id
        self.node_id = node_id
        self.capacity_sessions = capacity_sessions
        self.cache = LruCache(cache_mbit)
        self.degraded_rate_mbps = degraded_rate_mbps
        self.powered_on = True
        self._sessions: Set[str] = set()
        self.total_assigned = 0
        self.rejected = 0

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    @property
    def load(self) -> float:
        """Fractional load in [0, 1]."""
        return len(self._sessions) / self.capacity_sessions

    @property
    def available(self) -> bool:
        return self.powered_on and len(self._sessions) < self.capacity_sessions

    @property
    def degraded(self) -> bool:
        return self.degraded_rate_mbps is not None

    def assign(self, session_id: str) -> None:
        """Attach a session; raises if the server cannot take it."""
        if not self.powered_on:
            self.rejected += 1
            raise ServerOverloadedError(f"{self.server_id} is powered off")
        if len(self._sessions) >= self.capacity_sessions:
            self.rejected += 1
            raise ServerOverloadedError(f"{self.server_id} is at capacity")
        self._sessions.add(session_id)
        self.total_assigned += 1

    def release(self, session_id: str) -> None:
        """Detach a session.  Idempotent."""
        self._sessions.discard(session_id)

    def power_off(self) -> Set[str]:
        """Turn the cluster off; returns sessions that must be re-homed."""
        self.powered_on = False
        displaced, self._sessions = self._sessions, set()
        return displaced

    def power_on(self) -> None:
        self.powered_on = True

    def __repr__(self) -> str:
        state = "on" if self.powered_on else "off"
        return (
            f"CdnServer({self.server_id}@{self.node_id}, "
            f"{self.active_sessions}/{self.capacity_sessions}, {state})"
        )
