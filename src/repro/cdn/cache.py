"""Edge caches: LRU and LFU with byte-capacity accounting.

Cache locality is why the paper's "coarse control" scenario hurts:
switching a session to a different CDN lands it on cold caches.  The
cache model tracks hit/miss counts and evicts by recency (LRU) or
frequency (LFU); admission is on-miss (pull-through).
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class LruCache:
    """Least-recently-used cache keyed by content id.

    Args:
        capacity_mbit: Total storage; items larger than this are never
            admitted (served pull-through every time).
    """

    def __init__(self, capacity_mbit: float):
        if capacity_mbit < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_mbit!r}")
        self.capacity_mbit = capacity_mbit
        self.used_mbit = 0.0
        self._items: "OrderedDict[str, float]" = OrderedDict()
        self.stats = CacheStats()

    def __contains__(self, content_id: str) -> bool:
        return content_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def lookup(self, content_id: str) -> bool:
        """Record a request; returns True on hit (and refreshes recency)."""
        if content_id in self._items:
            self._items.move_to_end(content_id)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, content_id: str, size_mbit: float) -> bool:
        """Admit an item after a miss; returns False if it cannot fit."""
        if content_id in self._items:
            self._items.move_to_end(content_id)
            return True
        if size_mbit > self.capacity_mbit:
            return False
        while self.used_mbit + size_mbit > self.capacity_mbit and self._items:
            _, evicted_size = self._items.popitem(last=False)
            self.used_mbit -= evicted_size
            self.stats.evictions += 1
        self._items[content_id] = size_mbit
        self.used_mbit += size_mbit
        self.stats.insertions += 1
        return True

    def warm(self, items: Dict[str, float]) -> None:
        """Pre-populate (e.g. a CDN that already serves the catalog)."""
        for content_id, size_mbit in items.items():
            self.insert(content_id, size_mbit)

    def clear(self) -> None:
        self._items.clear()
        self.used_mbit = 0.0


class LfuCache:
    """Least-frequently-used cache (ties broken by insertion order).

    Uses a lazy-deletion heap of (frequency, seq, content_id); stale
    heap entries are skipped at eviction time.
    """

    def __init__(self, capacity_mbit: float):
        if capacity_mbit < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity_mbit!r}")
        self.capacity_mbit = capacity_mbit
        self.used_mbit = 0.0
        self._sizes: Dict[str, float] = {}
        self._freq: Dict[str, int] = {}
        self._heap: list = []
        self._counter = itertools.count()
        self.stats = CacheStats()

    def __contains__(self, content_id: str) -> bool:
        return content_id in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def lookup(self, content_id: str) -> bool:
        if content_id in self._sizes:
            self._freq[content_id] += 1
            heapq.heappush(
                self._heap, (self._freq[content_id], next(self._counter), content_id)
            )
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(self, content_id: str, size_mbit: float) -> bool:
        if content_id in self._sizes:
            return True
        if size_mbit > self.capacity_mbit:
            return False
        while self.used_mbit + size_mbit > self.capacity_mbit and self._sizes:
            self._evict_one()
        self._sizes[content_id] = size_mbit
        self._freq[content_id] = 1
        heapq.heappush(self._heap, (1, next(self._counter), content_id))
        self.used_mbit += size_mbit
        self.stats.insertions += 1
        return True

    def warm(self, items: Dict[str, float]) -> None:
        for content_id, size_mbit in items.items():
            self.insert(content_id, size_mbit)

    def _evict_one(self) -> None:
        while self._heap:
            freq, _, content_id = heapq.heappop(self._heap)
            current = self._freq.get(content_id)
            if current is None or current != freq:
                continue  # stale entry
            self.used_mbit -= self._sizes.pop(content_id)
            del self._freq[content_id]
            self.stats.evictions += 1
            return
