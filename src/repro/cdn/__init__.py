"""CDN substrate: content, caches, servers, and request routing.

CDNs sit "in the middle of the delivery infrastructure" (paper, §1);
this package models them at the granularity EONA's scenarios need:
server clusters with load and power state, per-server caches whose
hit/miss behaviour determines whether a chunk is served edge-local or
pulled through the origin, and a request-routing front end.  The
information a CDN can export over EONA-I2A -- alternative server hints
and server load -- comes straight from these objects.
"""

from repro.cdn.content import ContentCatalog, ContentItem
from repro.cdn.cache import CacheStats, LfuCache, LruCache
from repro.cdn.server import CdnServer
from repro.cdn.provider import Cdn, ServedRequest
from repro.cdn.origin import Origin
from repro.cdn.transcoder import TranscodeJob, Transcoder

__all__ = [
    "CacheStats",
    "Cdn",
    "CdnServer",
    "ContentCatalog",
    "ContentItem",
    "LfuCache",
    "LruCache",
    "Origin",
    "ServedRequest",
    "TranscodeJob",
    "Transcoder",
]
