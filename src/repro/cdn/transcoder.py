"""Edge transcoders (Figure 1(b) of the paper).

The video delivery chain the paper draws includes transcoders between
the origin and the CDN.  Modelled here as an edge-side capability: when
a chunk is requested at a rung the cache does not hold, but a *higher*
rung of the same chunk is cached, the edge can derive the lower rung
locally -- paying bounded compute latency and a job slot -- instead of
pulling through the origin.  This keeps traffic on the edge exactly the
way the coarse-control scenario wants, at a compute cost the operator
can size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class TranscodeStats:
    jobs_started: int = 0
    jobs_rejected: int = 0
    seconds_of_media: float = 0.0


class Transcoder:
    """A fixed pool of transcode slots at one edge site.

    Args:
        node_id: Topology node the transcoder sits at.
        slots: Concurrent jobs supported.
        speed: Realtime multiple -- transcoding `d` seconds of media
            takes ``d / speed`` seconds of wall clock.

    Slot accounting is coarse (a job occupies a slot for its full
    latency); callers release slots via the handle returned by
    :meth:`try_start`.
    """

    def __init__(self, node_id: str, slots: int = 4, speed: float = 8.0):
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots!r}")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        self.node_id = node_id
        self.slots = slots
        self.speed = speed
        self.active_jobs = 0
        self.stats = TranscodeStats()

    @property
    def available(self) -> bool:
        return self.active_jobs < self.slots

    def latency_s(self, media_duration_s: float) -> float:
        """Wall-clock time to derive one chunk of this duration."""
        return media_duration_s / self.speed

    def try_start(self, media_duration_s: float) -> Optional["TranscodeJob"]:
        """Claim a slot; returns a job handle or ``None`` if saturated."""
        if not self.available:
            self.stats.jobs_rejected += 1
            return None
        self.active_jobs += 1
        self.stats.jobs_started += 1
        self.stats.seconds_of_media += media_duration_s
        return TranscodeJob(self, self.latency_s(media_duration_s))


class TranscodeJob:
    """One in-flight transcode; release the slot when done."""

    __slots__ = ("transcoder", "latency_s", "_released")

    def __init__(self, transcoder: Transcoder, latency_s: float):
        self.transcoder = transcoder
        self.latency_s = latency_s
        self._released = False

    def release(self) -> None:
        """Free the slot.  Idempotent."""
        if not self._released:
            self._released = True
            self.transcoder.active_jobs -= 1
