"""The CDN provider: request routing over edge servers.

A :class:`Cdn` owns a set of :class:`~repro.cdn.server.CdnServer`
clusters and an optional origin.  Sessions attach to a server; chunk
requests resolve to a *source* (the edge node on a cache hit, the
origin pulled through the edge on a miss).  The provider also exposes
the two pieces of information the paper proposes a CDN share over
EONA-I2A: per-server load and alternative-server hints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cdn.content import ContentCatalog, ContentItem
from repro.cdn.origin import Origin
from repro.cdn.server import CdnServer
from repro.cdn.transcoder import TranscodeJob, Transcoder


@dataclass(frozen=True)
class ServedRequest:
    """Resolution of one chunk request.

    Attributes:
        server_id: The edge server handling the request.
        src_node: Topology node the bits originate from (edge node on a
            hit, origin node on a pull-through).
        via_node: Intermediate node the flow is pinned through (the edge
            node, on a pull-through), else ``None``.
        cache_hit: Whether the edge cache held the content.
        rate_cap_mbps: Per-session server-side rate cap (degraded
            servers); ``inf`` when unconstrained.
        transcode_job: When the chunk is being derived at the edge from
            a cached higher rung, the in-flight job (the caller waits
            ``job.latency_s`` and releases the slot); else ``None``.
    """

    server_id: str
    src_node: str
    via_node: Optional[str]
    cache_hit: bool
    rate_cap_mbps: float
    transcode_job: Optional[TranscodeJob] = None


@dataclass(frozen=True)
class ServerHint:
    """One entry of the I2A alternative-server hint."""

    server_id: str
    node_id: str
    load: float
    degraded: bool


class NoServerAvailableError(Exception):
    """Raised when every server is full, off, or excluded."""


class Cdn:
    """A CDN provider.

    Args:
        name: Provider name, also used as the traffic-group label for
            flows this CDN serves (the ISP steers groups by this name).
        servers: Edge clusters.
        origin: Origin for pull-through on cache misses; when ``None``,
            misses are served from the edge anyway (cache-oblivious CDN)
            but still counted as misses.
        selection: ``"least_loaded"`` (default) or ``"first_fit"``.
        transcoder: Optional edge transcoder pool; on a chunk miss with
            a cached higher rung, chunks are derived locally instead of
            pulled through the origin (Figure 1(b)'s transcoders).
        ctx: The :class:`~repro.core.context.SimContext` this provider
            belongs to; when given, the CDN registers itself so
            context-built controllers find it without bespoke wiring.
    """

    def __init__(
        self,
        name: str,
        servers: Iterable[CdnServer],
        origin: Optional[Origin] = None,
        selection: str = "least_loaded",
        transcoder: Optional[Transcoder] = None,
        ctx=None,
    ):
        if selection not in ("least_loaded", "first_fit"):
            raise ValueError(f"unknown selection policy {selection!r}")
        self.name = name
        self.servers: Dict[str, CdnServer] = {s.server_id: s for s in servers}
        if not self.servers:
            raise ValueError(f"cdn {name}: needs at least one server")
        self.origin = origin
        self.selection = selection
        self.transcoder = transcoder
        self._assignments: Dict[str, str] = {}  # session -> server_id
        if ctx is not None:
            ctx.register_cdn(self)

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def attach(
        self,
        session_id: str,
        exclude: Iterable[str] = (),
        server_id: Optional[str] = None,
    ) -> CdnServer:
        """Assign a session to a server and return it.

        Args:
            session_id: Session key; re-attaching moves the session.
            exclude: Server ids to avoid (e.g. one the player found bad).
            server_id: Pin to a specific server (EONA server hints).
        """
        self.detach(session_id)
        if server_id is not None:
            server = self.servers[server_id]
            if not server.available:
                raise NoServerAvailableError(f"{server_id} unavailable")
        else:
            server = self._pick_server(set(exclude))
        server.assign(session_id)
        self._assignments[session_id] = server.server_id
        return server

    def detach(self, session_id: str) -> None:
        """Release a session's server.  Idempotent."""
        server_id = self._assignments.pop(session_id, None)
        if server_id is not None:
            self.servers[server_id].release(session_id)

    def server_of(self, session_id: str) -> Optional[CdnServer]:
        server_id = self._assignments.get(session_id)
        return self.servers[server_id] if server_id else None

    @property
    def active_sessions(self) -> int:
        return len(self._assignments)

    @property
    def total_capacity(self) -> int:
        return sum(
            s.capacity_sessions for s in self.servers.values() if s.powered_on
        )

    @property
    def mean_load(self) -> float:
        powered = [s for s in self.servers.values() if s.powered_on]
        if not powered:
            return 1.0
        return sum(s.active_sessions for s in powered) / sum(
            s.capacity_sessions for s in powered
        )

    def has_capacity(self) -> bool:
        return any(s.available for s in self.servers.values())

    def power_off_server(self, server_id: str) -> int:
        """Power a server down, evicting its sessions; returns how many."""
        server = self.servers[server_id]
        displaced = server.power_off()
        for session_id in displaced:
            self._assignments.pop(session_id, None)
        return len(displaced)

    # ------------------------------------------------------------------
    # content serving
    # ------------------------------------------------------------------
    def serve_chunk(
        self,
        session_id: str,
        content: ContentItem,
        chunk_key: Optional[str] = None,
        chunk_mbit: Optional[float] = None,
        fallback_keys: Iterable[str] = (),
        media_duration_s: float = 0.0,
    ) -> ServedRequest:
        """Resolve where one chunk for ``session_id`` comes from.

        Caching is chunk-granular when the caller passes ``chunk_key``
        (e.g. ``"video-3#12@1.5"``): a cold cache misses on *every*
        chunk until each one has been pulled through -- the real cost of
        landing on a cold CDN.  A whole-item entry (from
        :meth:`warm_caches`) short-circuits to a hit for all chunks.

        With an edge transcoder configured, a miss whose ``fallback_keys``
        (higher-rung variants of the same chunk, best first) include a
        cached entry is derived locally instead of pulled through the
        origin; the returned request carries the in-flight
        ``transcode_job``.  The caller starts the actual transfer.
        """
        server = self.server_of(session_id)
        if server is None:
            raise KeyError(f"session {session_id!r} is not attached to {self.name}")
        rate_cap = (
            server.degraded_rate_mbps
            if server.degraded_rate_mbps is not None
            else math.inf
        )
        if chunk_key is not None and content.content_id not in server.cache:
            hit = server.cache.lookup(chunk_key)
            miss_key = chunk_key
            miss_mbit = chunk_mbit if chunk_mbit is not None else content.size_mbit
        else:
            hit = server.cache.lookup(content.content_id)
            miss_key = content.content_id
            miss_mbit = content.size_mbit
        if hit or self.origin is None:
            return ServedRequest(
                server_id=server.server_id,
                src_node=server.node_id,
                via_node=None,
                cache_hit=hit,
                rate_cap_mbps=rate_cap,
            )
        if self.transcoder is not None and media_duration_s > 0:
            job = self._try_transcode(server, fallback_keys, media_duration_s)
            if job is not None:
                server.cache.insert(miss_key, miss_mbit)
                return ServedRequest(
                    server_id=server.server_id,
                    src_node=server.node_id,
                    via_node=None,
                    cache_hit=False,
                    rate_cap_mbps=rate_cap,
                    transcode_job=job,
                )
        server.cache.insert(miss_key, miss_mbit)
        self.origin.record_fetch(miss_mbit)
        return ServedRequest(
            server_id=server.server_id,
            src_node=self.origin.node_id,
            via_node=server.node_id,
            cache_hit=False,
            rate_cap_mbps=rate_cap,
        )

    def _try_transcode(
        self,
        server: CdnServer,
        fallback_keys: Iterable[str],
        media_duration_s: float,
    ) -> Optional[TranscodeJob]:
        for fallback in fallback_keys:
            if fallback in server.cache:
                return self.transcoder.try_start(media_duration_s)
        return None

    def warm_caches(self, catalog: ContentCatalog, top_fraction: float = 1.0) -> None:
        """Pre-load the most popular ``top_fraction`` of the catalog."""
        if not 0 <= top_fraction <= 1:
            raise ValueError(f"top_fraction out of range: {top_fraction!r}")
        n_warm = int(len(catalog) * top_fraction)
        for server in self.servers.values():
            for rank in range(n_warm):
                item = catalog.by_rank(rank)
                server.cache.insert(item.content_id, item.size_mbit)

    # ------------------------------------------------------------------
    # I2A-exportable state
    # ------------------------------------------------------------------
    def server_hints(self, exclude: Iterable[str] = ()) -> List[ServerHint]:
        """Alternative-server hints, best (least loaded, healthy) first."""
        excluded = set(exclude)
        hints = [
            ServerHint(
                server_id=s.server_id,
                node_id=s.node_id,
                load=s.load,
                degraded=s.degraded,
            )
            for s in self.servers.values()
            if s.available and s.server_id not in excluded
        ]
        hints.sort(key=lambda h: (h.degraded, h.load))
        return hints

    def cache_hit_rate(self) -> float:
        requests = sum(s.cache.stats.requests for s in self.servers.values())
        if requests == 0:
            return 0.0
        hits = sum(s.cache.stats.hits for s in self.servers.values())
        return hits / requests

    # ------------------------------------------------------------------
    def _pick_server(self, excluded: set) -> CdnServer:
        candidates = [
            s
            for s in self.servers.values()
            if s.available and s.server_id not in excluded
        ]
        if not candidates:
            raise NoServerAvailableError(
                f"cdn {self.name}: no server available (excluded={sorted(excluded)})"
            )
        if self.selection == "least_loaded":
            return min(candidates, key=lambda s: s.load)
        return candidates[0]
