"""Baselines EONA is compared against.

* **status quo** -- no information sharing; the blackbox AppP and the
  network-metrics-only InfP (implemented in :mod:`repro.core.appp` /
  :mod:`repro.core.infp` and selected here by mode).
* **one-way sharing** -- the prior-work designs the paper contrasts
  itself with: I2A-only (P4P/ALTO-style, infrastructure hints flow to
  applications) and A2I-only (the application shares measurements but
  gets nothing back).
* **oracle** -- the hypothetical global controller of §4's recipe,
  which reads every provider's ground truth directly and tunes every
  knob; the upper bound the narrowed interface is measured against.
"""

from repro.baselines.modes import Mode
from repro.baselines.oracle import OracleAppP, oracle_te_policy

__all__ = ["Mode", "OracleAppP", "oracle_te_policy"]
