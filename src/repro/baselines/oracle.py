"""The hypothetical global controller (recipe step 2).

The oracle cheats by construction: it reads every provider's internal
state directly -- true link loads, true server health, true demands --
and tunes every knob (CDN, server, bitrate, peering).  It exists to
upper-bound what any interface can achieve; E9 measures how close the
narrowed EONA interface gets.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.cdn.provider import Cdn
from repro.core.appp import AppPController, _SessionState
from repro.network.fluidsim import FluidNetwork
from repro.sdn.te import EgressGroup, TrafficEngineeringApp
from repro.video.player import AdaptivePlayer, ChunkRecord, SessionAssignment


class OracleAppP(AppPController):
    """Global-knowledge session control.

    * Assignment: the least-loaded *healthy* server across every CDN.
    * Reaction: reads the true access-link utilization; if the access
      network is the bottleneck it caps the session at its fair share
      of the access link; if the server is truly degraded it jumps to
      the globally best healthy server.
    """

    def __init__(
        self,
        sim,
        cdns: List[Cdn],
        network: FluidNetwork,
        access_links: Optional[List[str]] = None,
        **kwargs,
    ):
        super().__init__(sim, cdns, **kwargs)
        self.network = network
        self.access_links = access_links or []

    def assign(self, player: AdaptivePlayer) -> SessionAssignment:
        self._sessions[player.session_id] = _SessionState()
        self._active_players[player.session_id] = player
        cdn, server_id = self._best_server_globally()
        return SessionAssignment(cdn=cdn, server_id=server_id)

    def _best_server_globally(self) -> Tuple[Cdn, Optional[str]]:
        best: Tuple[float, Cdn, Optional[str]] = (math.inf, self.cdns[0], None)
        for cdn in self.cdns:
            for server in cdn.servers.values():
                if not server.available or server.degraded:
                    continue
                if server.load < best[0]:
                    best = (server.load, cdn, server.server_id)
        return best[1], best[2]

    def _access_truly_congested(self) -> Optional[str]:
        for link_id in self.access_links:
            if self.network.link_utilization(link_id) >= 0.95:
                return link_id
        return None

    def rate_cap_mbps(self, player: AdaptivePlayer) -> float:
        """Plan, don't react: cap every session at the highest ladder
        rung the access capacity can sustain for the current population.

        This is what a true global controller computes -- it needs the
        exact capacity and the exact session count, neither of which any
        single real provider has.
        """
        base = super().rate_cap_mbps(player)
        if not self.access_links:
            return base
        capacity = min(
            self.network.topology.link(link_id).capacity_mbps
            for link_id in self.access_links
        )
        population = max(1, len(self._active_players))
        sustainable = player.ladder.highest_at_most(0.95 * capacity / population)
        return min(base, max(player.ladder.lowest, sustainable))

    def _react(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        congested_link = self._access_truly_congested()
        if congested_link is not None:
            # Cap at the session's fair share of the true capacity.
            capacity = self.network.topology.link(congested_link).capacity_mbps
            competitors = max(1, len(self._active_players))
            fair_share = capacity / competitors
            state.rate_cap_mbps = max(player.ladder.lowest, fair_share)
            return True
        server = player.cdn.server_of(player.session_id) if player.cdn else None
        if server is not None and server.degraded:
            cdn, server_id = self._best_server_globally()
            if server_id is not None:
                if cdn is player.cdn:
                    return player.switch_server(server_id)
                return player.switch_cdn(cdn, server_id=server_id)
        return False

    def on_chunk(self, player: AdaptivePlayer, record: ChunkRecord) -> None:
        super().on_chunk(player, record)
        state = self._sessions.get(player.session_id)
        if (
            state is not None
            and math.isfinite(state.rate_cap_mbps)
            and self._access_truly_congested() is None
        ):
            state.rate_cap_mbps = math.inf


def oracle_te_policy(network: FluidNetwork, appp: Optional[AppPController] = None):
    """Build a TE policy that places groups using *true* current demands.

    With an ``appp`` reference the demand is read straight out of the
    application's session state (ground truth no real ISP has); without
    one it falls back to summing active flow rates.  Placement is the
    same largest-first best-fit used by the EONA InfP, so E9 isolates
    the value of the *information*, not the algorithm.
    """

    def policy(app: TrafficEngineeringApp, group: EgressGroup) -> str:
        demands: Dict[str, float] = {}
        if appp is not None:
            demands = dict(appp.demand_estimate().demand_mbps)
        for other in app.groups.values():
            if other.name in demands:
                continue
            demands[other.name] = sum(
                flow.demand_mbps if math.isfinite(flow.demand_mbps) else flow.rate_mbps
                for flow in network.active_flows()
                if flow.owner == other.name
            )
        remaining: Dict[str, float] = {}
        for other in app.groups.values():
            for candidate in other.candidates:
                link_id = other.egress_links[candidate]
                remaining.setdefault(
                    link_id, network.topology.link(link_id).capacity_mbps
                )
        plan: Dict[str, str] = {}
        ordered = sorted(
            app.groups.values(), key=lambda g: demands.get(g.name, 0.0), reverse=True
        )
        for other in ordered:
            demand = demands.get(other.name, 0.0)
            current = other.selection
            if (
                current in other.candidates
                and remaining[other.egress_links[current]] >= demand * 1.1
            ):
                choice = current
            else:
                choice = max(
                    other.candidates,
                    key=lambda candidate: remaining[other.egress_links[candidate]],
                )
            plan[other.name] = choice
            remaining[other.egress_links[choice]] -= demand
        return plan[group.name]

    return policy
