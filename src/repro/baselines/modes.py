"""Deployment modes: which interfaces exist in a given world."""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """Information-sharing configuration of a scenario run.

    Attributes:
        STATUS_QUO: No EONA interfaces at all (today's world).
        I2A_ONLY: Infrastructure exports hints to applications, nothing
            flows back (P4P / ALTO lineage).
        A2I_ONLY: Applications export measurements to infrastructure,
            nothing flows back.
        EONA: Both interfaces active (the paper's proposal).
        ORACLE: A single global controller with every provider's ground
            truth (recipe step 2's hypothetical).
    """

    STATUS_QUO = "status_quo"
    I2A_ONLY = "i2a_only"
    A2I_ONLY = "a2i_only"
    EONA = "eona"
    ORACLE = "oracle"

    @property
    def has_i2a(self) -> bool:
        return self in (Mode.I2A_ONLY, Mode.EONA)

    @property
    def has_a2i(self) -> bool:
        return self in (Mode.A2I_ONLY, Mode.EONA)
