"""Causal span graphs over deterministic traces (DESIGN.md §13).

PR 4's tracer records *events*; this module recovers the *loop*.  Every
control-loop event carries a ``cause`` ID minted by
:meth:`~repro.obs.trace.Tracer.new_cause`, and downstream events point
back with ``parent`` (single cause) or ``parents`` (fan-in, e.g. an
aggregation flush absorbing many beacons).  From a trace alone --
in-memory events or a JSONL file -- :class:`SpanForest` rebuilds the
causal DAG:

    a2i-report ──▶ agg-flush ──▶ a2i-report(query) ──▶ i2a-hint
        ──▶ bitrate-cap / server-switch / cdn-switch / infp-reroute
        ──▶ qoe-recovery

and :func:`loop_latencies` turns it into the paper's reaction-time
distributions.  Everything here is a pure function of the event list,
so same-seed runs produce byte-identical forests (the correctness gate
``tests/obs/test_spans.py`` enforces serially vs in a worker process).

Stage definitions (:data:`LOOP_STAGES`):

* ``beacon_to_flush`` -- causal: a flush's ``parents`` are the beacons
  it absorbed.
* ``beacon_to_hint`` -- causal when the hint's ancestor chain reaches a
  beacon/flush (fully coupled worlds); otherwise the latest beacon
  before the hint (temporal attribution -- in E2's EONA world the
  ISP detects congestion from its own link stats, so no causal edge
  exists, yet "how stale is the newest experience evidence when the
  hint arrives" is still the loop-reaction question).
* ``hint_to_action`` -- causal only: actions whose ``parent`` is an
  ``i2a-hint``.
* ``action_to_recovery`` -- causal only: ``qoe-recovery`` pointing at
  the action that preceded the session's next good chunk.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs.trace import DEFAULT_CAPACITY, TRACER

#: One trace event, as emitted (``t``/``kind`` plus free-form fields).
Event = Dict[str, object]

#: Event kinds that are control *actions* (the hint→action hop's end).
ACTION_KINDS = frozenset(
    {"cdn-switch", "bitrate-cap", "server-switch", "infp-reroute"}
)

#: The loop stages :func:`loop_latencies` measures, in loop order.
LOOP_STAGES: Tuple[str, ...] = (
    "beacon_to_flush",
    "beacon_to_hint",
    "hint_to_action",
    "action_to_recovery",
)


def load_jsonl(text: str) -> List[Event]:
    """Parse a JSONL trace (as written by a sink or ``to_jsonl``)."""
    events: List[Event] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {line_no} is not JSON: {error}") from None
        if not isinstance(event, dict) or "kind" not in event or "t" not in event:
            raise ValueError(f"trace line {line_no} is not an event: {line[:80]}")
        events.append(event)
    return events


def parent_ids(event: Event) -> List[int]:
    """An event's causal parents (``parent`` and/or ``parents``)."""
    parents: List[int] = []
    single = event.get("parent")
    if isinstance(single, int):
        parents.append(single)
    many = event.get("parents")
    if isinstance(many, list):
        parents.extend(p for p in many if isinstance(p, int))
    return parents


@dataclass
class SpanNode:
    """One causal span: an event plus the spans it caused."""

    event: Event
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def cause(self) -> int:
        return int(self.event["cause"])  # only cause-bearing events get nodes

    @property
    def kind(self) -> str:
        return str(self.event["kind"])

    @property
    def t(self) -> float:
        return float(self.event["t"])  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Nested tree form (children in emission order)."""
        return {
            "event": self.event,
            "children": [child.to_dict() for child in self.children],
        }


class SpanForest:
    """The causal DAG of one trace, rendered as a forest.

    Only cause-bearing events become nodes.  A node with at least one
    resolvable parent is nested under its *first* parent (emission
    order); fan-in beyond the first parent stays visible through the
    event's own ``parents`` field.  Nodes whose parents all fall
    outside the trace (ring-buffer eviction, cross-world IDs) are
    roots, as are genuinely parentless spans.
    """

    def __init__(self, events: Iterable[Event]):
        self.events: List[Event] = list(events)
        self.nodes: Dict[int, SpanNode] = {}
        self.roots: List[SpanNode] = []
        for event in self.events:
            cause = event.get("cause")
            if isinstance(cause, int):
                self.nodes[cause] = SpanNode(event)
        for event in self.events:
            cause = event.get("cause")
            if not isinstance(cause, int):
                continue
            node = self.nodes[cause]
            attached = False
            for parent in parent_ids(event):
                owner = self.nodes.get(parent)
                if owner is not None and owner is not node:
                    owner.children.append(node)
                    attached = True
                    break
            if not attached:
                self.roots.append(node)

    def node(self, cause: int) -> Optional[SpanNode]:
        return self.nodes.get(cause)

    def ancestry(self, cause: int) -> List[Event]:
        """The first-parent chain from ``cause`` up to its root."""
        chain: List[Event] = []
        seen: set = set()
        current = self.nodes.get(cause)
        while current is not None and current.cause not in seen:
            seen.add(current.cause)
            chain.append(current.event)
            parents = parent_ids(current.event)
            current = self.nodes.get(parents[0]) if parents else None
        return chain

    def chain_counts(self) -> Dict[str, int]:
        """``"parent-kind->child-kind"`` edge counts (sorted keys)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            cause = event.get("cause")
            if not isinstance(cause, int):
                continue
            for parent in parent_ids(event):
                owner = self.nodes.get(parent)
                if owner is None:
                    continue
                key = f"{owner.kind}->{event['kind']}"
                counts[key] = counts.get(key, 0) + 1
        return {key: counts[key] for key in sorted(counts)}

    def to_jsonl(self) -> str:
        """One JSON tree per root, sorted keys -- byte-stable."""
        return "".join(
            json.dumps(root.to_dict(), sort_keys=True, default=str) + "\n"
            for root in self.roots
        )


def build_span_forest(events: Iterable[Event]) -> SpanForest:
    """Convenience constructor mirroring the other obs factories."""
    return SpanForest(events)


# ----------------------------------------------------------------------
# loop latencies
# ----------------------------------------------------------------------
def phase_timeline(events: Iterable[Event]) -> List[Tuple[float, str]]:
    """``(t, phase)`` transitions from the trace, in order."""
    return [
        (float(event["t"]), str(event.get("phase", "")))  # type: ignore[arg-type]
        for event in events
        if event.get("kind") == "phase-transition"
    ]


def _phase_at(timeline: List[Tuple[float, str]], t: float) -> str:
    current = "-"
    for start, name in timeline:
        if start <= t:
            current = name
        else:
            break
    return current


def _group_of(event: Event) -> str:
    for key in ("to_cdn", "cdn", "group", "isp", "owner"):
        value = event.get(key)
        if value:
            return str(value)
    return "-"


def split_worlds(events: Iterable[Event]) -> List[List[Event]]:
    """Split a trace at sim-time resets (one sublist per world).

    One tracer enable may span several sequentially built worlds (an
    experiment comparing modes); each world's clock restarts at 0, so a
    backwards ``t`` step marks the boundary.  Within a world time is
    monotone -- the tracer's :class:`~repro.obs.trace.TraceOrderError`
    watermark enforces it at emission.
    """
    worlds: List[List[Event]] = []
    current: List[Event] = []
    last_t: Optional[float] = None
    for event in events:
        t = float(event["t"])  # type: ignore[arg-type]
        if last_t is not None and t < last_t:
            worlds.append(current)
            current = []
        current.append(event)
        last_t = t
    if current:
        worlds.append(current)
    return worlds


def loop_latencies(events: Iterable[Event]) -> Dict[str, List[Dict[str, object]]]:
    """Per-stage latency samples from one trace.

    Returns ``{stage: [sample, ...]}`` over :data:`LOOP_STAGES`; each
    sample carries ``latency_s``, the end event's ``t``/``kind``/
    ``cause`` (when present), the scenario ``phase`` active at the end,
    and a ``group`` attribution key (CDN / TE group / ISP / owner).
    Multi-world traces are split at sim-time resets so temporal
    attribution never crosses a world boundary.  Pure and
    deterministic: same trace, same samples.
    """
    samples: Dict[str, List[Dict[str, object]]] = {
        stage: [] for stage in LOOP_STAGES
    }
    for world in split_worlds(events):
        _world_latencies(world, samples)
    return samples


def _world_latencies(
    ordered: List[Event], samples: Dict[str, List[Dict[str, object]]]
) -> None:
    timeline = phase_timeline(ordered)
    by_cause: Dict[int, Event] = {
        int(e["cause"]): e  # type: ignore[arg-type]
        for e in ordered
        if isinstance(e.get("cause"), int)
    }

    def add(stage: str, start_t: float, end_event: Event) -> None:
        end_t = float(end_event["t"])  # type: ignore[arg-type]
        sample: Dict[str, object] = {
            "latency_s": end_t - start_t,
            "t": end_t,
            "kind": end_event["kind"],
            "phase": _phase_at(timeline, end_t),
            "group": _group_of(end_event),
        }
        if isinstance(end_event.get("cause"), int):
            sample["cause"] = end_event["cause"]
        samples[stage].append(sample)

    def root_ancestor(event: Event) -> Optional[Event]:
        seen: set = set()
        current = event
        while True:
            parents = parent_ids(current)
            nxt = by_cause.get(parents[0]) if parents else None
            if nxt is None or id(nxt) in seen:
                return None if current is event else current
            seen.add(id(nxt))
            current = nxt

    last_beacon_t: Optional[float] = None
    for event in ordered:
        kind = event.get("kind")
        t = float(event["t"])  # type: ignore[arg-type]
        if kind == "a2i-report" and event.get("via") in ("beacon", "cohort-beacon"):
            last_beacon_t = t
        elif kind == "agg-flush":
            for parent in parent_ids(event):
                beacon = by_cause.get(parent)
                if beacon is not None:
                    add("beacon_to_flush", float(beacon["t"]), event)  # type: ignore[arg-type]
        elif kind == "i2a-hint":
            origin = root_ancestor(event)
            if origin is not None:
                add("beacon_to_hint", float(origin["t"]), event)  # type: ignore[arg-type]
            elif last_beacon_t is not None:
                add("beacon_to_hint", last_beacon_t, event)
        elif kind in ACTION_KINDS:
            for parent in parent_ids(event):
                hint = by_cause.get(parent)
                if hint is not None and hint.get("kind") == "i2a-hint":
                    add("hint_to_action", float(hint["t"]), event)  # type: ignore[arg-type]
                    break
        elif kind == "qoe-recovery":
            for parent in parent_ids(event):
                action = by_cause.get(parent)
                if action is not None and action.get("kind") in ACTION_KINDS:
                    add("action_to_recovery", float(action["t"]), event)  # type: ignore[arg-type]
                    break


# ----------------------------------------------------------------------
# capture helper
# ----------------------------------------------------------------------
@contextmanager
def capture(capacity: int = DEFAULT_CAPACITY) -> Iterator[List[Event]]:
    """Collect the trace events emitted inside the ``with`` block.

    Composes with an outer trace: if the tracer is already enabled
    (``eona trace``/``eona analyze`` driving the run), its buffer and
    sink are left untouched and only events emitted after entry are
    returned.  Otherwise a private in-memory trace is enabled for the
    block and fully closed afterwards, so untraced callers see the
    tracer exactly as they left it.  The yielded list is filled at
    exit.
    """
    owned = not TRACER.enabled
    if owned:
        TRACER.enable(capacity=capacity)
        start = 0
    else:
        start = TRACER.emitted
    events: List[Event] = []
    try:
        yield events
    finally:
        buffered = TRACER.events()
        # Events that fell off the ring's front shift our start index.
        dropped = TRACER.emitted - len(buffered)
        events.extend(buffered[max(0, start - dropped):])
        if owned:
            TRACER.close()
