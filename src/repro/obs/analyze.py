"""Trace analytics: loop-latency tables, diffs, Chrome export, bench gate.

The reporting half of the causal-span subsystem (DESIGN.md §13).
Everything here is a pure function from trace events (or run-artifact
dicts) to plain data and preformatted strings; printing belongs to the
CLI layer.  Four tools:

* :func:`loop_latency_rows` / :func:`render_latency_table` -- per-stage,
  per-phase (or per-CDN/group) loop-reaction distributions with
  p50/p95/p99 from :class:`~repro.obs.metrics.Histogram`.
* :func:`slowest_spans` / :func:`render_slowest` -- drilldown into the
  slowest spans of each stage, with their causal ancestry.
* :func:`trace_diff` / :func:`render_diff` -- structural (event kinds,
  causal chain edges) plus latency diff of two traces, e.g. EONA vs the
  status-quo ablation of the same seed.
* :func:`chrome_trace` -- ``chrome://tracing`` / Perfetto JSON export
  (instants + spans + flow arrows along causal edges).
* :func:`compare_artifacts` -- the bench-regression gate: diffs a
  committed ``BENCH_*.json`` run artifact against a fresh run of the
  same experiment, with tolerances; environment-dependent columns
  (wall time, RSS, throughput) are ignored by default.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.spans import (
    Event,
    LOOP_STAGES,
    SpanForest,
    loop_latencies,
    parent_ids,
)

#: Bucket edges (simulated seconds) for loop-reaction histograms.  The
#: loop reacts on beacon windows and control periods of seconds to a
#: few minutes; the explicit 0 edge keeps same-tick hint→action spans
#: (a legitimate, common latency) exact instead of smeared over (0, 0.5].
LOOP_LATENCY_EDGES: Tuple[float, ...] = (
    0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0,
)

#: Substrings marking a row column as environment-dependent -- never
#: compared by the bench gate (wall clock, RSS, and rates derived from
#: them vary by host; everything else in an artifact is deterministic).
ENV_DEPENDENT_MARKERS: Tuple[str, ...] = ("wall", "rss", "per_sec", "time")


# ----------------------------------------------------------------------
# loop-latency tables
# ----------------------------------------------------------------------
def loop_latency_rows(
    events: Iterable[Event], by: str = "phase"
) -> List[Dict[str, object]]:
    """Aggregate loop-latency samples into table rows.

    Args:
        events: Trace events.
        by: Attribution column -- ``"phase"`` (scenario phase at the
            span's end) or ``"group"`` (CDN / TE group / ISP).

    Returns one row per (stage, bucket) with count/mean/p50/p95/p99/max,
    stages in loop order, buckets sorted; plus an ``all`` bucket per
    stage when more than one bucket exists.
    """
    if by not in ("phase", "group"):
        raise ValueError(f"unknown attribution {by!r} (use 'phase' or 'group')")
    samples = loop_latencies(events)
    rows: List[Dict[str, object]] = []
    for stage in LOOP_STAGES:
        stage_samples = samples[stage]
        if not stage_samples:
            continue
        buckets: Dict[str, List[float]] = {}
        for sample in stage_samples:
            buckets.setdefault(str(sample[by]), []).append(
                float(sample["latency_s"])  # type: ignore[arg-type]
            )
        keys = sorted(buckets)
        if len(keys) > 1:
            buckets["all"] = [
                float(s["latency_s"]) for s in stage_samples  # type: ignore[arg-type]
            ]
            keys = keys + ["all"]
        for key in keys:
            values = buckets[key]
            histogram = Histogram(f"loop.{stage}", LOOP_LATENCY_EDGES)
            for value in values:
                histogram.observe(value)
            rows.append(
                {
                    "stage": stage,
                    by: key,
                    "count": len(values),
                    "mean_s": histogram.sum / histogram.total,
                    "p50_s": histogram.percentile(0.50),
                    "p95_s": histogram.percentile(0.95),
                    "p99_s": histogram.percentile(0.99),
                    "max_s": max(values),
                }
            )
    return rows


def loop_metrics_snapshot(events: Iterable[Event]) -> Dict[str, object]:
    """Loop latencies as a ``metrics``-block fragment for run artifacts.

    Returns ``{"counters": {...}, "histograms": {...}}`` with one
    ``loop.<stage>`` histogram (and a ``loop.<stage>_samples`` counter)
    per non-empty stage, shaped exactly like
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` so the CLI can
    merge it into an ``eona-run-artifact`` ``metrics`` block.
    """
    samples = loop_latencies(events)
    counters: Dict[str, int] = {}
    histograms: Dict[str, object] = {}
    for stage in LOOP_STAGES:
        values = [float(s["latency_s"]) for s in samples[stage]]  # type: ignore[arg-type]
        if not values:
            continue
        histogram = Histogram(f"loop.{stage}", LOOP_LATENCY_EDGES)
        for value in values:
            histogram.observe(value)
        counters[f"loop.{stage}_samples"] = histogram.total
        histograms[f"loop.{stage}"] = {
            "edges": list(histogram.edges),
            "counts": list(histogram.counts),
            "total": histogram.total,
            "sum": histogram.sum,
            "p50": histogram.percentile(0.50),
            "p95": histogram.percentile(0.95),
            "p99": histogram.percentile(0.99),
        }
    return {"counters": counters, "histograms": histograms}


def render_latency_table(
    rows: Sequence[Mapping[str, object]], by: str = "phase"
) -> str:
    """Fixed-width table of :func:`loop_latency_rows` output."""
    if not rows:
        return "(no loop-latency samples: no causal chains in this trace)"
    headers = ["stage", by, "count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"]
    table = [headers]
    for row in rows:
        rendered = []
        for header in headers:
            value = row.get(header, "")
            if isinstance(value, float):
                rendered.append(f"{value:.2f}")
            else:
                rendered.append(str(value))
        table.append(rendered)
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# slowest-span drilldown
# ----------------------------------------------------------------------
def slowest_spans(
    events: Iterable[Event], top: int = 3
) -> List[Dict[str, object]]:
    """The ``top`` slowest samples of each stage, with causal ancestry."""
    ordered = list(events)
    forest = SpanForest(ordered)
    samples = loop_latencies(ordered)
    out: List[Dict[str, object]] = []
    for stage in LOOP_STAGES:
        ranked = sorted(
            samples[stage],
            key=lambda s: (-float(s["latency_s"]), float(s["t"])),  # type: ignore[arg-type]
        )[:top]
        for sample in ranked:
            entry: Dict[str, object] = {"stage": stage, **sample}
            cause = sample.get("cause")
            if isinstance(cause, int):
                entry["ancestry"] = [
                    f"{e['kind']}@t={float(e['t']):g}"  # type: ignore[arg-type]
                    for e in forest.ancestry(cause)
                ]
            out.append(entry)
    return out


def render_slowest(entries: Sequence[Mapping[str, object]]) -> str:
    lines = []
    for entry in entries:
        chain = entry.get("ancestry")
        suffix = f"  [{' <- '.join(chain)}]" if isinstance(chain, list) else ""
        lines.append(
            f"{entry['stage']}: {float(entry['latency_s']):.2f}s "  # type: ignore[arg-type]
            f"ending {entry['kind']}@t={float(entry['t']):g} "  # type: ignore[arg-type]
            f"(phase={entry['phase']}, group={entry['group']}){suffix}"
        )
    return "\n".join(lines) if lines else "(no spans)"


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
def trace_diff(
    events_a: Iterable[Event],
    events_b: Iterable[Event],
    label_a: str = "a",
    label_b: str = "b",
) -> Dict[str, object]:
    """Structural + latency diff of two traces.

    Structure is compared as event-kind counts and causal chain-edge
    counts (``"i2a-hint->cdn-switch"``); latency as per-stage
    count/mean/p95.  Keys present in either trace appear in the diff,
    so a chain existing only in one run (the EONA-vs-ablation
    signature) shows up as ``[n, 0]``.
    """
    a, b = list(events_a), list(events_b)

    def kind_counts(events: List[Event]) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in events:
            kind = str(event["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def merge(
        left: Mapping[str, int], right: Mapping[str, int]
    ) -> Dict[str, List[int]]:
        return {
            key: [left.get(key, 0), right.get(key, 0)]
            for key in sorted(set(left) | set(right))
        }

    def stage_stats(events: List[Event]) -> Dict[str, Dict[str, float]]:
        stats: Dict[str, Dict[str, float]] = {}
        for stage, samples in loop_latencies(events).items():
            if not samples:
                continue
            histogram = Histogram(stage, LOOP_LATENCY_EDGES)
            for sample in samples:
                histogram.observe(float(sample["latency_s"]))  # type: ignore[arg-type]
            stats[stage] = {
                "count": float(histogram.total),
                "mean_s": histogram.sum / histogram.total,
                "p95_s": histogram.percentile(0.95),
            }
        return stats

    stats_a, stats_b = stage_stats(a), stage_stats(b)
    latency = {
        stage: {label_a: stats_a.get(stage), label_b: stats_b.get(stage)}
        for stage in LOOP_STAGES
        if stage in stats_a or stage in stats_b
    }
    return {
        "labels": [label_a, label_b],
        "events": [len(a), len(b)],
        "kinds": merge(kind_counts(a), kind_counts(b)),
        "chains": merge(
            SpanForest(a).chain_counts(), SpanForest(b).chain_counts()
        ),
        "latency": latency,
    }


def render_diff(diff: Mapping[str, object]) -> str:
    label_a, label_b = diff["labels"]  # type: ignore[misc]
    lines = [
        f"events: {label_a}={diff['events'][0]} {label_b}={diff['events'][1]}",  # type: ignore[index]
        "",
        f"{'event kind':<24} {label_a:>10} {label_b:>10}  delta",
    ]
    for key, (na, nb) in diff["kinds"].items():  # type: ignore[union-attr]
        marker = "" if na == nb else "  *"
        lines.append(f"{key:<24} {na:>10} {nb:>10}  {nb - na:+d}{marker}")
    lines += ["", f"{'causal chain':<32} {label_a:>8} {label_b:>8}"]
    chains = diff["chains"]  # type: ignore[assignment]
    if chains:
        for key, (na, nb) in chains.items():  # type: ignore[union-attr]
            only = ""
            if na and not nb:
                only = f"  (only in {label_a})"
            elif nb and not na:
                only = f"  (only in {label_b})"
            lines.append(f"{key:<32} {na:>8} {nb:>8}{only}")
    else:
        lines.append("(no causal chains in either trace)")
    latency = diff["latency"]  # type: ignore[assignment]
    if latency:
        lines += ["", f"{'stage':<20} {'side':>6} {'count':>7} {'mean_s':>8} {'p95_s':>8}"]
        for stage, sides in latency.items():  # type: ignore[union-attr]
            for label in (label_a, label_b):
                stats = sides[label]
                if stats is None:
                    lines.append(f"{stage:<20} {label:>6} {'-':>7} {'-':>8} {'-':>8}")
                else:
                    lines.append(
                        f"{stage:<20} {label:>6} {int(stats['count']):>7} "
                        f"{stats['mean_s']:>8.2f} {stats['p95_s']:>8.2f}"
                    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
def chrome_trace(events: Iterable[Event]) -> Dict[str, object]:
    """Events as Chrome Trace Event Format (``chrome://tracing``).

    Sim seconds become microseconds.  Events with a duration (tracer
    spans) render as complete slices (``X``), the rest as instants
    (``i``); causal ``parent``/``parents`` edges become flow arrows
    (``s``/``f``) so the beacon→hint→action chain is visible as arrows
    across threads.  Threads are one per event owner/policy, in order
    of first appearance -- deterministic for same-seed traces.
    """
    ordered = list(events)
    tids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []

    def tid_of(event: Event) -> int:
        owner = str(event.get("owner") or event.get("policy") or event["kind"])
        if owner not in tids:
            tids[owner] = len(tids) + 1
        return tids[owner]

    position: Dict[int, Tuple[float, int]] = {}
    for event in ordered:
        t = float(event["t"])  # type: ignore[arg-type]
        tid = tid_of(event)
        args = {
            key: value
            for key, value in event.items()
            if key not in ("t", "kind", "t_start", "dur")
        }
        record: Dict[str, object] = {
            "name": str(event["kind"]),
            "cat": str(event["kind"]),
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if "dur" in event and "t_start" in event:
            record["ph"] = "X"
            record["ts"] = float(event["t_start"]) * 1e6  # type: ignore[arg-type]
            record["dur"] = float(event["dur"]) * 1e6  # type: ignore[arg-type]
        else:
            record["ph"] = "i"
            record["s"] = "t"
            record["ts"] = t * 1e6
        trace_events.append(record)
        cause = event.get("cause")
        if isinstance(cause, int):
            position[cause] = (t, tid)

    arrow = 0
    for event in ordered:
        cause = event.get("cause")
        if not isinstance(cause, int):
            continue
        end_t = float(event["t"])  # type: ignore[arg-type]
        end_tid = tid_of(event)
        for parent in parent_ids(event):
            start = position.get(parent)
            if start is None:
                continue
            arrow += 1
            start_t, start_tid = start
            common = {"cat": "cause", "name": "cause", "pid": 1, "id": arrow}
            trace_events.append(
                {**common, "ph": "s", "ts": start_t * 1e6, "tid": start_tid}
            )
            trace_events.append(
                {**common, "ph": "f", "bp": "e", "ts": end_t * 1e6, "tid": end_tid}
            )
    thread_names = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": owner},
        }
        for owner, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    return {"traceEvents": thread_names + trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# bench-regression gate
# ----------------------------------------------------------------------
def _is_env_dependent(column: str, markers: Sequence[str]) -> bool:
    lowered = column.lower()
    return any(marker in lowered for marker in markers)


def compare_artifacts(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    rtol: float = 0.05,
    atol: float = 1e-9,
    ignore: Sequence[str] = ENV_DEPENDENT_MARKERS,
) -> List[Dict[str, object]]:
    """Regressions of ``current`` against a committed run artifact.

    Three regression classes, in severity order:

    * ``check-regressed`` / ``check-missing`` -- a declarative check
      that passed in the baseline fails (or vanished) now.  Checks that
      already failed in the baseline are not regressions (the "no worse
      than seed" rule).
    * ``structure`` -- a baseline variant or row has no counterpart.
    * ``value-drift`` -- a deterministic numeric column moved by more
      than ``atol + rtol * |baseline|``.  Columns matching ``ignore``
      substrings (wall clock, RSS, rates) are skipped; so are
      non-numeric values and columns absent from the current row.

    Returns a list of plain dicts (``where``/``what``/``baseline``/
    ``current``/``kind``), empty when the run is clean.
    """
    regressions: List[Dict[str, object]] = []

    def check_key(check: Mapping[str, object]) -> Tuple[str, str, str]:
        return (
            str(check.get("variant", "")),
            str(check.get("seed", "")),
            str(check.get("check", "")),
        )

    current_checks = {
        check_key(check): check
        for check in current.get("checks", [])  # type: ignore[union-attr]
    }
    for check in baseline.get("checks", []):  # type: ignore[union-attr]
        if not check.get("passed"):
            continue
        key = check_key(check)
        counterpart = current_checks.get(key)
        where = f"check {key[2]!r} (variant={key[0]}, seed={key[1]})"
        if counterpart is None:
            regressions.append(
                {
                    "kind": "check-missing",
                    "where": where,
                    "what": "check passed in baseline but is absent now",
                    "baseline": check.get("detail", ""),
                    "current": None,
                }
            )
        elif not counterpart.get("passed"):
            regressions.append(
                {
                    "kind": "check-regressed",
                    "where": where,
                    "what": "check passed in baseline but fails now",
                    "baseline": check.get("detail", ""),
                    "current": counterpart.get("detail", ""),
                }
            )

    current_tables = {
        str(table.get("variant", "")): table
        for table in current.get("tables", [])  # type: ignore[union-attr]
    }
    for table in baseline.get("tables", []):  # type: ignore[union-attr]
        variant = str(table.get("variant", ""))
        counterpart = current_tables.get(variant)
        if counterpart is None:
            regressions.append(
                {
                    "kind": "structure",
                    "where": f"variant {variant!r}",
                    "what": "variant present in baseline but absent now",
                    "baseline": len(table.get("rows", [])),
                    "current": None,
                }
            )
            continue
        base_rows = table.get("rows", [])
        cur_rows = counterpart.get("rows", [])
        if len(base_rows) != len(cur_rows):
            regressions.append(
                {
                    "kind": "structure",
                    "where": f"variant {variant!r}",
                    "what": "row count changed",
                    "baseline": len(base_rows),
                    "current": len(cur_rows),
                }
            )
            continue
        for index, (base_row, cur_row) in enumerate(zip(base_rows, cur_rows)):
            for column in sorted(base_row):
                base_value = base_row[column]
                if isinstance(base_value, bool) or not isinstance(
                    base_value, (int, float)
                ):
                    continue
                if _is_env_dependent(column, ignore):
                    continue
                cur_value = cur_row.get(column)
                if isinstance(cur_value, bool) or not isinstance(
                    cur_value, (int, float)
                ):
                    continue
                if abs(cur_value - base_value) > atol + rtol * abs(base_value):
                    regressions.append(
                        {
                            "kind": "value-drift",
                            "where": f"variant {variant!r} row {index} column {column!r}",
                            "what": f"moved beyond rtol={rtol:g}",
                            "baseline": base_value,
                            "current": cur_value,
                        }
                    )
    return regressions


def render_regressions(
    regressions: Sequence[Mapping[str, object]], experiment: str
) -> str:
    if not regressions:
        return f"{experiment}: no regressions"
    lines = [f"{experiment}: {len(regressions)} regression(s)"]
    for reg in regressions:
        lines.append(
            f"  [{reg['kind']}] {reg['where']}: {reg['what']} "
            f"(baseline={reg['baseline']!r}, current={reg['current']!r})"
        )
    return "\n".join(lines)


def dump_chrome_trace(events: Iterable[Event], path: str) -> None:
    """Write :func:`chrome_trace` output as JSON (sorted keys)."""
    import os

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle, sort_keys=True)
        handle.write("\n")


__all__ = [
    "ENV_DEPENDENT_MARKERS",
    "LOOP_LATENCY_EDGES",
    "chrome_trace",
    "compare_artifacts",
    "dump_chrome_trace",
    "loop_latency_rows",
    "loop_metrics_snapshot",
    "render_diff",
    "render_latency_table",
    "render_regressions",
    "render_slowest",
    "slowest_spans",
    "trace_diff",
]
