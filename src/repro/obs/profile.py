"""Wall-clock profiling of event-handler execution.

The simulator's determinism discipline (simlint's ``wallclock`` and
``obs-hotpath`` rules) bans host timers everywhere except this layer.
Two things live here:

* :func:`wall_clock` -- the sanctioned way for any layer to read the
  host's monotonic clock (the experiment registry and e7's scalability
  measurements route through it instead of importing :mod:`time`).
* :class:`HandlerProfiler` -- installs itself as the kernel's dispatch
  hook (:attr:`repro.simkernel.kernel.Simulator.default_dispatch_hook`)
  and accumulates wall seconds per handler qualname, answering "where
  does e7's wall time go?" with a top-N table and per-phase totals.

Profiling measures the host, not the simulation: it never touches the
event queue or the sim clock, so enabling it cannot change simulated
behavior -- only slow it down.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.simkernel.kernel import Simulator


def wall_clock() -> float:
    """Monotonic host seconds (``time.perf_counter``).

    Non-``obs`` layers that legitimately need wall time (the experiment
    registry's run timing, e7's scalability measurements) call this
    instead of importing :mod:`time`, keeping the ``obs-hotpath`` lint
    rule's guarantee: every host-timer read is auditable in one layer.
    """
    return time.perf_counter()


def _qualname(fn: Callable[..., Any]) -> str:
    """Stable display key for a handler: module-qualified where possible."""
    name = getattr(fn, "__qualname__", None)
    if name is None:
        # functools.partial and other callables without a qualname.
        inner = getattr(fn, "func", None)
        if inner is not None:
            return f"partial({_qualname(inner)})"
        return repr(type(fn).__name__)
    module = getattr(fn, "__module__", "")
    return f"{module}.{name}" if module else str(name)


class HandlerProfiler:
    """Accumulates wall-clock time per event-handler qualname.

    Usage::

        profiler = HandlerProfiler()
        profiler.install()
        try:
            with profiler.phase("e2/eona"):
                ...  # build world, sim.run()
        finally:
            profiler.uninstall()
        print(profiler.report(top=10))

    ``install()`` sets :attr:`Simulator.default_dispatch_hook`, so only
    simulators constructed *after* it take the hook -- existing
    instances are untouched.  The profiler itself is not thread-safe
    and not meant to be shared across processes.
    """

    def __init__(self) -> None:
        self._by_handler: Dict[str, Tuple[int, float]] = {}
        self._by_phase: Dict[str, float] = {}
        self._phase_stack: List[str] = []
        self._installed = False
        self.events = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Become the dispatch hook for subsequently built simulators."""
        if Simulator.default_dispatch_hook is not None:
            raise RuntimeError("another dispatch hook is already installed")
        Simulator.default_dispatch_hook = self._dispatch
        self._installed = True

    def uninstall(self) -> None:
        """Clear the class-level hook (idempotent)."""
        if self._installed:
            Simulator.default_dispatch_hook = None
            self._installed = False

    # ------------------------------------------------------------------
    # the hook
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        now: float,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
    ) -> None:
        started = time.perf_counter()
        try:
            fn(*args)
        finally:
            elapsed = time.perf_counter() - started
            key = _qualname(fn)
            count, total = self._by_handler.get(key, (0, 0.0))
            self._by_handler[key] = (count + 1, total + elapsed)
            self.events += 1
            if self._phase_stack:
                phase = self._phase_stack[-1]
                self._by_phase[phase] = self._by_phase.get(phase, 0.0) + elapsed

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute handler time inside the block to ``name``."""
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def top_handlers(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """The ``top`` hottest handlers as (qualname, calls, wall_s)."""
        rows = [
            (name, count, total)
            for name, (count, total) in self._by_handler.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:top]

    def phase_totals(self) -> Dict[str, float]:
        """Accumulated handler wall seconds per phase (sorted by name)."""
        return {name: self._by_phase[name] for name in sorted(self._by_phase)}

    def snapshot(self) -> Dict[str, object]:
        """All accumulated data as plain dicts (JSON-ready)."""
        return {
            "events": self.events,
            "handlers": {
                name: {"calls": count, "wall_s": total}
                for name, (count, total) in sorted(self._by_handler.items())
            },
            "phases": self.phase_totals(),
        }

    def report(self, top: int = 10) -> str:
        """Human-readable top-N table plus per-phase totals."""
        lines = [f"{'calls':>8}  {'wall_s':>10}  handler"]
        for name, count, total in self.top_handlers(top):
            lines.append(f"{count:>8}  {total:>10.4f}  {name}")
        if self._by_phase:
            lines.append("")
            lines.append("phase totals:")
            for name, total in self.phase_totals().items():
                lines.append(f"  {total:>10.4f}  {name}")
        return "\n".join(lines)
