"""Deterministic, sim-time-stamped event tracing.

One process-global :data:`TRACER` answers "why did the control plane do
that at t=412s?".  Instrumentation sites guard every emission with::

    if TRACER.enabled:
        TRACER.emit("cdn-switch", session=..., to_cdn=...)

so disabled tracing (the default) costs exactly one attribute check.
Events are stamped with *simulated* time through a clock bound by
:func:`repro.core.context.build_context`, carry only run-deterministic
fields, and serialize with sorted keys -- two traced runs of the same
seed therefore produce byte-identical JSONL.

Event taxonomy (DESIGN.md §9): ``a2i-report``, ``i2a-hint``,
``cdn-switch``, ``infp-reroute``, ``allocator-solve``,
``phase-transition``, ``scenario-built``, plus ``span`` records from
:meth:`Tracer.span`.  The causal-span layer (DESIGN.md §13) adds
``agg-flush``, ``bitrate-cap``, ``server-switch``, and
``qoe-recovery``, and threads ``cause``/``parent``/``parents`` fields
through the loop events so :mod:`repro.obs.spans` can rebuild the
beacon → flush → hint → action → recovery chain from a trace alone.
Cause IDs are minted *only* by :meth:`Tracer.new_cause` -- a per-enable
monotonic counter, so same-seed runs assign identical IDs (the
span-discipline simlint rule enforces the seam).

Forked ``multiseed`` workers inherit an enabled tracer; an interleaved
multi-process trace would be nondeterministic, so the worker entry point
calls :meth:`Tracer.deactivate_inherited`, which disables any tracer
enabled by a *different* process.  A worker that wants its own trace
simply calls :meth:`Tracer.enable` again.
"""

from __future__ import annotations

import json
import os
from collections import deque
from contextlib import contextmanager
from typing import (
    IO,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
)

#: Default ring-buffer capacity (events kept in memory; a JSONL sink
#: receives every event regardless).
DEFAULT_CAPACITY = 65536


def _zero_clock() -> float:
    return 0.0


class TraceOrderError(RuntimeError):
    """An event was emitted at an earlier sim time than its predecessor.

    Sim time within one world is monotone, so this always means a stale
    clock: a new world was built without :func:`~repro.core.context.
    build_context` rebinding the tracer's clock, or two worlds are
    interleaving into one trace.  Either would silently corrupt span
    reconstruction, so it is rejected loudly at the emission site.
    """


class Tracer:
    """Bounded ring buffer of structured events with an optional sink.

    Attributes:
        enabled: The one hot-path flag; instrumentation sites read it
            before building any event payload.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._clock: Callable[[], float] = _zero_clock
        self._events: Deque[Dict[str, object]] = deque(maxlen=DEFAULT_CAPACITY)
        self._sink: Optional[IO[str]] = None
        self._sink_path: Optional[str] = None
        self._owner_pid: Optional[int] = None
        self.emitted = 0
        self._next_cause = 0
        self._watermark_t: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[str] = None,
    ) -> None:
        """Start tracing into a fresh buffer (and optional JSONL file).

        Args:
            capacity: Ring-buffer size; older events fall off the front.
            sink: Path of a JSONL file receiving *every* event (the ring
                buffer only bounds in-memory retention).
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.close()
        self._events = deque(maxlen=capacity)
        self.emitted = 0
        self._next_cause = 0
        self._watermark_t = None
        if sink is not None:
            directory = os.path.dirname(sink)
            if directory:
                os.makedirs(directory, exist_ok=True)
            # Line-buffered: every event reaches the file as soon as it
            # is emitted, so a fork-inherited copy of this handle holds
            # no unflushed lines to replay at child exit, and a crashed
            # run's trace is complete up to the crash.
            self._sink = open(sink, "w", encoding="utf-8", buffering=1)
            self._sink_path = sink
        self._owner_pid = os.getpid()
        self.enabled = True

    def disable(self) -> None:
        """Stop tracing; buffered events stay readable, the sink closes."""
        self.enabled = False
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def close(self) -> None:
        """Disable and drop all buffered state, counters, and the clock."""
        self.disable()
        self._events.clear()
        self._sink_path = None
        self._owner_pid = None
        self.emitted = 0
        self._next_cause = 0
        self._watermark_t = None
        self._clock = _zero_clock

    def deactivate_inherited(self) -> None:
        """Make a fork-inherited tracer inert (multiseed worker guard).

        A worker process inherits ``enabled`` and the parent's open sink
        handle; writing through it would interleave processes into one
        file.  If this tracer was enabled by a different pid, drop the
        handle *without* closing it (the parent owns the descriptor's
        buffered state) and disable.  No-op in the enabling process.
        """
        if self.enabled and self._owner_pid != os.getpid():
            self._sink = None
            self._sink_path = None
            self.enabled = False
            self._events.clear()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Stamp subsequent events with ``clock()`` (the sim's ``now``).

        :func:`repro.core.context.build_context` binds every new world's
        simulator here, so sequentially built worlds (the usual
        experiment pattern) each stamp their own events correctly.
        Rebinding resets the monotonicity watermark: the new world's sim
        time legitimately restarts at 0.
        """
        self._clock = clock
        self._watermark_t = None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def new_cause(self) -> int:
        """Mint the next causal span ID (monotone within one enable).

        Every loop event that can *cause* a downstream event carries a
        ``cause`` field minted here; downstream events point back with
        ``parent`` (or ``parents`` for fan-in like an aggregation
        flush).  The counter restarts at 1 on :meth:`enable`/:meth:`close`,
        so same-seed runs mint identical IDs -- the byte-identical span
        gate depends on it.  This is the only sanctioned minting site
        (simlint's span-discipline rule).
        """
        self._next_cause += 1
        return self._next_cause

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event at the current simulated time.

        Raises:
            TraceOrderError: If the bound clock went backwards since the
                last emission (stale clock from an unbound world).
        """
        now = self._clock()
        if self._watermark_t is not None and now < self._watermark_t:
            raise TraceOrderError(
                f"out-of-order trace event {kind!r}: t={now:g} is earlier "
                f"than the last emission at t={self._watermark_t:g}; a new "
                "world must rebind the tracer clock (build_context does "
                "this) before emitting"
            )
        self._watermark_t = now
        event: Dict[str, object] = {"t": now, "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True, default=str))
            self._sink.write("\n")

    @contextmanager
    def span(self, kind: str, **fields: object) -> Iterator[None]:
        """Emit one event covering a sim-time interval (``t`` .. ``t_end``).

        The event is recorded at *exit* so ``dur`` (simulated seconds
        spent inside the span) is known; spans are for control actions
        that advance the clock, not for wall-clock timing (that is
        :mod:`repro.obs.profile`'s job).
        """
        started = self._clock()
        try:
            yield
        finally:
            ended = self._clock()
            self.emit(kind, t_start=started, dur=ended - started, **fields)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[Dict[str, object]]:
        """Buffered events in emission order, optionally one kind only."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def kind_counts(self) -> Dict[str, int]:
        """How many buffered events of each kind (sorted by kind)."""
        counts: Dict[str, int] = {}
        for event in self._events:
            name = str(event["kind"])
            counts[name] = counts.get(name, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def to_jsonl(self) -> str:
        """The buffered events as JSONL (sorted keys: byte-stable)."""
        return "".join(
            json.dumps(event, sort_keys=True, default=str) + "\n"
            for event in self._events
        )

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path


#: The process-global tracer.  Import the module or this name directly
#: (``from repro.obs.trace import TRACER``); it is never reassigned, so
#: both import styles observe enable/disable.
TRACER = Tracer()
