"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Before this module the repository had three disjoint counter
mechanisms: the allocation engine's
:class:`~repro.network.allocator.EngineCounters` dataclass,
``FluidNetwork.allocation_counters()``'s merged dict, and the per-row
``_counters`` convention of the experiment tables.  A
:class:`MetricsRegistry` absorbs any of them (:meth:`absorb`) and
serves one deterministic ``snapshot() -> dict`` -- the ``metrics``
block of the ``eona-run-artifact/2`` schema.

Naming convention (DESIGN.md §9): lowercase ``snake_case`` leaf names,
dot-separated subsystem prefixes added by the absorber, e.g.
``alloc.solve_calls``, ``run.seeds``, ``run.variant_wall_s``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket edges for wall-clock seconds.
WALL_SECONDS_EDGES: Tuple[float, ...] = (
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A point-in-time float (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (peak concurrency, peak state size)."""
        self.value = max(self.value, float(value))


class Histogram:
    """Counts of observations against fixed, ascending bucket edges.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot
    counts overflow.  Fixed edges keep snapshots mergeable and
    deterministic -- there is no adaptive resizing to drift between
    runs.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError(f"histogram {self.__class__.__name__} needs edges")
        ordered = tuple(float(edge) for edge in edges)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram edges must be strictly ascending: {edges!r}")
        self.name = name
        self.edges = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # First bucket whose edge >= value; past the end means overflow.
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """The q-quantile (``0 <= q <= 1``) interpolated within buckets.

        Observations are assumed uniform inside their bucket, the
        standard fixed-bucket estimate (Prometheus ``histogram_quantile``
        semantics).  The first bucket interpolates from 0 (or its edge,
        if negative); the overflow bucket is clamped to the last edge --
        the histogram does not know how far past it observations fell.
        An empty histogram returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        lower = min(0.0, self.edges[0])
        for index, edge in enumerate(self.edges):
            count = self.counts[index]
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return lower + (edge - lower) * fraction
            cumulative += count
            lower = edge
        return self.edges[-1]


class MetricsRegistry:
    """Get-or-create registry with one deterministic snapshot API."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, edges: Sequence[float] = WALL_SECONDS_EDGES
    ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, edges)
        elif found.edges != tuple(float(edge) for edge in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {found.edges}"
            )
        return found

    # ------------------------------------------------------------------
    # absorption of legacy counter dicts
    # ------------------------------------------------------------------
    def absorb(self, counters: Mapping[str, object], prefix: str = "") -> None:
        """Sum a plain counter mapping into namesake counters.

        Accepts the legacy shapes (``EngineCounters.as_dict()``,
        ``allocation_counters()``, experiment ``_counters``): numeric
        values only, booleans and non-numerics skipped.  Keys that are
        already dotted (``faults.injected``) carry their own group name
        and absorb as-is; the prefix applies only to bare keys.
        """
        for key in sorted(counters):
            value = counters[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            name = key if "." in key else f"{prefix}{key}"
            self.counter(name).inc(int(value))

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Everything, as sorted plain dicts (JSON-ready, run-stable)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(histogram.edges),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                    "p50": histogram.percentile(0.50),
                    "p95": histogram.percentile(0.95),
                    "p99": histogram.percentile(0.99),
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def counter_value(self, name: str) -> Optional[int]:
        found = self._counters.get(name)
        return None if found is None else found.value
