"""Unified observability layer: tracing, metrics, and profiling.

The simulator's three ad-hoc introspection mechanisms -- the allocation
engine's :class:`~repro.network.allocator.EngineCounters`,
``Simulator.events_executed``, and the per-row ``_counters`` convention
-- answer "how much", but not "why did the AppP switch CDNs at t=412s"
or "where does the wall time go".  This package adds the missing three
views (DESIGN.md §9):

* :mod:`repro.obs.trace` -- sim-time-stamped structured events from the
  EONA control loops (A2I reports, I2A hints, CDN switches, reroutes,
  allocator solves, scenario phases), process-global and inert by
  default so a disabled tracer costs one attribute check on hot paths.
* :mod:`repro.obs.metrics` -- a registry of counters, gauges, and
  fixed-bucket histograms behind one ``snapshot() -> dict`` API, which
  absorbs the legacy counter dicts and feeds the
  ``eona-run-artifact/2`` ``metrics`` block.
* :mod:`repro.obs.profile` -- wall-clock timing of event-handler
  execution via the kernel's dispatch hook.  This is the only layer
  allowed to read host timers; simlint's ``obs-hotpath`` rule enforces
  that everything else routes timing through :func:`wall_clock`.
* :mod:`repro.obs.spans` / :mod:`repro.obs.analyze` -- the causal-span
  layer (DESIGN.md §13): span forests rebuilt from ``cause``/``parent``
  IDs threaded through the control loop, loop-latency distributions,
  trace diffs, Chrome-trace export, and the bench-regression gate.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import HandlerProfiler, wall_clock
from repro.obs.spans import SpanForest, build_span_forest, loop_latencies
from repro.obs.trace import TRACER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "HandlerProfiler",
    "Histogram",
    "MetricsRegistry",
    "SpanForest",
    "TRACER",
    "Tracer",
    "build_span_forest",
    "loop_latencies",
    "wall_clock",
]
