"""Finding reporters: stable text lines for humans/CI, JSON for tooling."""

from __future__ import annotations

import json
from typing import IO, Sequence

from repro.analysis.core import Finding


def render_text(findings: Sequence[Finding], stream: IO[str]) -> None:
    """One ``path:line:col rule message`` line per finding, plus a summary."""
    for finding in findings:
        stream.write(finding.format() + "\n")
    files = len({finding.path for finding in findings})
    if findings:
        stream.write(
            f"simlint: {len(findings)} finding(s) in {files} file(s)\n"
        )
    else:
        stream.write("simlint: clean\n")


def render_json(findings: Sequence[Finding], stream: IO[str]) -> None:
    """Machine-readable report; the schema is covered by golden tests."""
    payload = {
        "tool": "simlint",
        "findings": [finding.to_json() for finding in findings],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
