"""Finding reporters: text for humans/CI, JSON for tooling, SARIF for forges.

All three are covered by golden-output tests: key order, indentation,
and the trailing newline are part of the contract, so CI diffs of
committed reports stay reviewable.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Sequence

from repro.analysis.core import Finding

#: SARIF severity per rule id; anything unlisted reports as "warning".
_SARIF_LEVELS: Dict[str, str] = {"parse-error": "error"}


def render_text(findings: Sequence[Finding], stream: IO[str]) -> None:
    """One ``path:line:col rule message`` line per finding, plus a summary."""
    for finding in findings:
        stream.write(finding.format() + "\n")
    files = len({finding.path for finding in findings})
    if findings:
        stream.write(
            f"simlint: {len(findings)} finding(s) in {files} file(s)\n"
        )
    else:
        stream.write("simlint: clean\n")


def render_json(findings: Sequence[Finding], stream: IO[str]) -> None:
    """Machine-readable report; the schema is covered by golden tests."""
    payload = {
        "tool": "simlint",
        "findings": [finding.to_json() for finding in findings],
        "count": len(findings),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def render_sarif(findings: Sequence[Finding], stream: IO[str]) -> None:
    """SARIF 2.1.0 report, the exchange format CI forges ingest natively.

    Columns are 1-based in SARIF (simlint findings carry 0-based AST
    columns); rule metadata covers exactly the rules that fired so the
    document stays small and stable.
    """
    from repro.analysis.rules import all_rule_ids  # avoid import cycle

    descriptions = all_rule_ids()
    fired = sorted({finding.rule for finding in findings})
    rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id),
            },
        }
        for rule_id in fired
    ]
    results: List[Dict[str, object]] = [
        {
            "ruleId": finding.rule,
            "ruleIndex": fired.index(finding.rule),
            "level": _SARIF_LEVELS.get(finding.rule, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
