"""obs-hotpath: host-timer access is confined to the ``obs`` layer.

The ``wall-clock`` rule bans *calling* host-clock readers inside sim
layers; this rule goes one step further and bans even *importing* the
:mod:`time` module (or its clock readers) anywhere outside
``repro.obs``.  Every layer that legitimately needs wall time -- the
experiment registry's run timing, e7's scalability measurements --
routes through :func:`repro.obs.profile.wall_clock`, so a grep for host
timers has exactly one layer to audit.  Scoped via
``[tool.simlint.rules.obs-hotpath]`` with ``exclude-layers = ["obs"]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register

#: ``from <module> import <name>`` pairs that smuggle in a host timer.
_BANNED_FROM_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
}


@register
class ObsHotpathRule(Rule):
    id = "obs-hotpath"
    description = (
        "only the obs layer may import time/perf_counter; other layers "
        "route wall-clock reads through repro.obs.profile.wall_clock"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root == "time":
                        yield ctx.finding(
                            self.id,
                            node,
                            f"'import {alias.name}' outside the obs layer; "
                            "use repro.obs.profile.wall_clock for host timing",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if (module, alias.name) in _BANNED_FROM_IMPORTS:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"'from {module} import {alias.name}' outside the "
                            "obs layer; use repro.obs.profile.wall_clock",
                        )
