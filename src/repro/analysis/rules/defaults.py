"""mutable-default: no list/dict/set (or comprehension) default arguments.

A mutable default is shared across calls; in a simulator that means state
leaking between sessions, flows, or seeds -- exactly the kind of
cross-run coupling that breaks replay determinism.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "bytearray",
}


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    description = "default argument values must be immutable"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                label = _mutable_label(default)
                if label is not None:
                    yield ctx.finding(
                        self.id,
                        default,
                        f"mutable default {label} in '{node.name}' is shared "
                        "across calls; default to None and build inside",
                    )


def _mutable_label(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]" if not node.elts else "[...]"
    if isinstance(node, ast.Dict):
        return "{}" if not node.keys else "{...}"
    if isinstance(node, ast.Set):
        return "{...}"
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in _MUTABLE_CALLS:
            return f"{name}()"
    return None
