"""beacon-schema-sync: producers, cohorts, and aggregators name one schema.

Three places in the tree spell out which categorical attributes a beacon
carries, and nothing but convention keeps them aligned:

* the producers (``record_from_qoe`` / ``record_from_pageload``) build
  the ``attrs`` dict of each :class:`SessionRecord`;
* ``CohortSpec.beacon_attrs`` mirrors them so fluid-cohort rows group
  identically to scalar-session rows;
* ``GroupByAggregator`` call sites pick ``group_keys`` out of whatever
  the beacons carried.

The anchors come from ``[tool.simlint.rules.beacon-schema-sync]``
(``producers``, ``cohort-attrs``, ``aggregator`` dotted paths).  The
rule checks consistency along the actual dataflow:

* every attribute a producer emits must also appear in the cohort
  mirror (a cohort may add extra dimensions -- node/tier/device -- but
  dropping a produced one silently de-groups cohort rows);
* every literal ``group_keys`` entry at an aggregator call site must be
  emitted by both the producers and the cohort mirror, otherwise that
  key aggregates over the empty string.

Attribute extraction is syntactic: dict literals bound to (or passed
as) ``attrs`` and ``attrs["key"] = ...`` stores inside the anchored
functions.  Anchors whose module is absent from the graph are skipped
(partial lint); anchors whose module is present but whose symbol no
longer resolves are reported as config drift.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectRule
from repro.analysis.project import ModuleEntry, ProjectGraph
from repro.analysis.rules import register

_ATTRS_NAME = "attrs"


@register
class BeaconSchemaSyncRule(ProjectRule):
    id = "beacon-schema-sync"
    description = (
        "beacon producers, CohortSpec.beacon_attrs, and GroupByAggregator "
        "group_keys must agree on the attribute schema"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        options = graph.config.rule_options(self.id)
        producers = [str(p) for p in options.get("producers", ())]  # type: ignore[call-overload]
        cohort_path = options.get("cohort-attrs")
        aggregator = options.get("aggregator")
        if not producers or not cohort_path or not aggregator:
            return  # rule not configured for this tree

        produced: Set[str] = set()
        producer_seen = False
        for dotted in producers:
            resolved = self._resolve_anchor(graph, dotted)
            if resolved is None:
                continue
            entry, node = resolved
            if node is None:
                yield _drift(self.id, entry, "producers", dotted)
                continue
            producer_seen = True
            produced |= _attr_keys(node)

        cohort_resolved = self._resolve_anchor(graph, str(cohort_path))
        cohort_keys: Optional[Set[str]] = None
        if cohort_resolved is not None:
            cohort_entry, cohort_node = cohort_resolved
            if cohort_node is None:
                yield _drift(self.id, cohort_entry, "cohort-attrs", str(cohort_path))
            else:
                cohort_keys = _attr_keys(cohort_node)
                if producer_seen:
                    missing = sorted(produced - cohort_keys)
                    if missing:
                        yield cohort_entry.ctx.finding(
                            self.id,
                            cohort_node,
                            "cohort beacon_attrs is missing producer "
                            f"attribute(s) {missing}; cohort rows would "
                            "group differently from per-session beacons",
                        )

        yield from self._check_aggregator_sites(
            graph,
            str(aggregator),
            produced if producer_seen else None,
            cohort_keys,
        )

    def _resolve_anchor(
        self, graph: ProjectGraph, dotted: str
    ) -> Optional[Tuple[ModuleEntry, Optional[ast.AST]]]:
        """(owning entry, node-or-None); ``None`` if the module is absent."""
        resolved = graph.resolve(dotted)
        if resolved is not None:
            return resolved
        entry = graph.module_prefix_of(dotted)
        if entry is None:
            return None
        return entry, None

    def _check_aggregator_sites(
        self,
        graph: ProjectGraph,
        aggregator: str,
        produced: Optional[Set[str]],
        cohort_keys: Optional[Set[str]],
    ) -> Iterator[Finding]:
        for entry in graph.entries():
            for node in ast.walk(entry.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = graph.resolve_call_target(entry, node.func)
                if target != aggregator:
                    continue
                for key, anchor in _group_key_literals(node):
                    yield from self._check_key(
                        entry, anchor, key, produced, cohort_keys
                    )

    def _check_key(
        self,
        entry: ModuleEntry,
        anchor: ast.AST,
        key: str,
        produced: Optional[Set[str]],
        cohort_keys: Optional[Set[str]],
    ) -> Iterator[Finding]:
        if produced is not None and key not in produced:
            yield entry.ctx.finding(
                self.id,
                anchor,
                f"group key '{key}' is not emitted by any beacon producer; "
                "aggregating on it groups every record under ''",
            )
        elif cohort_keys is not None and key not in cohort_keys:
            yield entry.ctx.finding(
                self.id,
                anchor,
                f"group key '{key}' is missing from CohortSpec.beacon_attrs; "
                "fluid-cohort rows would not group with session rows",
            )


def _attr_keys(fn: ast.AST) -> Set[str]:
    """String keys the function stores into its beacon ``attrs`` dict."""
    keys: Set[str] = set()
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return keys
    for node in ast.walk(fn):
        value: Optional[ast.expr] = None
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            target = node.targets[0] if isinstance(node, ast.Assign) else node.target
            if isinstance(target, ast.Name) and target.id == _ATTRS_NAME:
                value = node.value
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == _ATTRS_NAME
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                keys.add(target.slice.value)
        elif isinstance(node, ast.keyword) and node.arg == _ATTRS_NAME:
            value = node.value
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def _group_key_literals(call: ast.Call) -> List[Tuple[str, ast.AST]]:
    """Literal group-key strings at an aggregator construction site."""
    candidates: List[ast.expr] = []
    for kw in call.keywords:
        if kw.arg == "group_keys":
            candidates.append(kw.value)
    if not candidates and call.args:
        candidates.append(call.args[0])
    out: List[Tuple[str, ast.AST]] = []
    for expr in candidates:
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append((elt.value, elt))
        elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            out.append((expr.value, expr))
    return out


def _drift(rule_id: str, entry: ModuleEntry, option: str, dotted: str) -> Finding:
    return Finding(
        path=entry.path,
        line=1,
        col=0,
        rule=rule_id,
        message=(
            f"beacon-schema-sync anchor {dotted!r} ({option}) does not "
            "resolve in this tree; update [tool.simlint.rules.beacon-schema-sync]"
        ),
    )
