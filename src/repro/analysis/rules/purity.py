"""handler-purity: kernel callbacks must not mutate module-level state.

Event handlers registered with the simulation kernel (``sim.schedule``,
``sim.schedule_at``, ``sim.call_soon``) run at times decided by the event
queue.  If a handler writes module globals, the result depends on event
interleaving and leaks across experiments that share the interpreter
(e.g. multiseed sweeps in one process).  Handlers may mutate the objects
passed to them (``self``, arguments, closures) -- just not the module.

Detection, per module:

* collect names bound at module scope (assignments, not imports);
* collect functions whose *name* is passed to a registration call,
  whether bare (``sim.schedule(d, tick)``) or as a method reference
  (``self.sim.schedule(d, self._on_timer)`` resolves to ``_on_timer``);
* inside each such function flag ``global`` declarations and any
  mutation of a module-level name: attribute/subscript stores and
  in-place mutator calls (``append``, ``update``, ...).

Resolution is name-based and intra-module -- good enough to catch the
real mistake while staying a single-file AST pass.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Set

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register

#: Simulator methods that register a callback (first callable argument).
REGISTER_METHODS = {"schedule", "schedule_at", "call_soon"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "setdefault", "sort", "update",
}


@register
class HandlerPurityRule(Rule):
    id = "handler-purity"
    description = (
        "kernel event handlers must not mutate module-level state"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        module_names = _module_level_names(ctx.tree)
        functions = _functions_by_name(ctx.tree)
        handler_names = _registered_handler_names(ctx.tree)
        seen: Set[int] = set()
        for name in sorted(handler_names):
            for func in functions.get(name, ()):
                if id(func) in seen:
                    continue
                seen.add(id(func))
                yield from self._check_handler(ctx, func, module_names)

    def _check_handler(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef,
        module_names: Set[str],
    ) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                yield ctx.finding(
                    self.id,
                    node,
                    f"handler '{func.name}' declares global "
                    f"{', '.join(node.names)}; pass state through the "
                    "event's arguments or an object instead",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    root = _store_root(target)
                    if (
                        root is None
                        and isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        root = target.id
                    if root is not None and root in module_names:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"handler '{func.name}' mutates module-level "
                            f"'{root}'; event order would change results",
                        )
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATORS
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in module_names
                ):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"handler '{func.name}' calls "
                        f"{func_expr.value.id}.{func_expr.attr}() on "
                        "module-level state",
                    )


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names assigned (not imported) at module scope."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _functions_by_name(tree: ast.Module) -> Dict[str, List[ast.FunctionDef]]:
    functions: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, []).append(node)  # type: ignore[arg-type]
    return functions


def _registered_handler_names(tree: ast.Module) -> Set[str]:
    """Function names passed to schedule()/schedule_at()/call_soon()."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in REGISTER_METHODS):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
            elif isinstance(arg, ast.Attribute):
                names.add(arg.attr)
    return names


def _store_root(target: ast.expr) -> "str | None":
    """For x.y = / x[k] = targets, the base name being mutated."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name) and node is not target:
        return node.id
    return None
