"""span-discipline: causal span machinery stays inside ``repro.obs``.

Cause IDs must come from ``Tracer.new_cause`` -- the one seam whose
per-enable monotone counter makes same-seed runs assign identical IDs
(the byte-identical span-forest gate, DESIGN.md §13).  A layer that
builds its own tracer or span graph, or runs an ad-hoc cause counter,
forks the ID space and silently corrupts span reconstruction.  Flagged
outside the obs layer:

* calls to names ending in ``Tracer``, ``SpanNode``, ``SpanForest``, or
  ``SpanGraph`` (constructing span machinery locally);
* augmented increments of identifiers containing ``cause`` (the ad-hoc
  counter signature, e.g. ``self._next_cause += 1``).

Instrumentation sites keep using ``TRACER.emit(...)`` and
``TRACER.new_cause()`` freely -- those are attribute calls on the
process-global tracer, not local machinery.  Scoped via
``[tool.simlint.rules.span-discipline]`` with
``exclude-layers = ["obs"]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.rules import register

#: Type-name suffixes that mark span machinery being constructed.
_SPAN_TYPE_SUFFIXES = ("Tracer", "SpanNode", "SpanForest", "SpanGraph")


@register
class SpanDisciplineRule(Rule):
    id = "span-discipline"
    description = (
        "span machinery (Tracer/SpanForest construction, ad-hoc cause-ID "
        "counters) is confined to repro.obs; mint cause IDs with "
        "TRACER.new_cause()"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                leaf = name.rsplit(".", 1)[-1]
                if leaf and leaf.endswith(_SPAN_TYPE_SUFFIXES):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{name}(...) constructs span machinery outside the "
                        "obs layer; use the process-global TRACER and "
                        "repro.obs.spans",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = dotted_name(node.target) or ""
                leaf = target.rsplit(".", 1)[-1]
                if "cause" in leaf.lower():
                    yield ctx.finding(
                        self.id,
                        node,
                        f"'{target} += ...' looks like an ad-hoc cause-ID "
                        "counter; cause IDs must come from TRACER.new_cause()",
                    )
