"""process-global-state: module-level mutable state is a fork-safety hazard.

The multiseed driver fans runs out across worker processes; anything
mutable bound at module level is silently copied into every fork, so
state written in one worker neither reaches the others nor survives
into the parent's aggregation.  The failure is a wrong *number*, not a
crash, which is why it gets a project rule.

Flagged:

* a module-level container (dict/list/set literal, comprehension, or
  ``dict()``/``defaultdict()``/``deque()``/... constructor) that some
  function anywhere in the project mutates -- via a mutator method
  (``.append``/``.update``/...), subscript or attribute assignment,
  ``del``, an augmented assignment, or a ``global`` rebinding;
* a module-level instance of a project class that is not a frozen
  dataclass (instances carry mutable attribute state by default).

Read-only module constants (``STATE_CAPACITY_MBPS = {...}`` that nobody
writes) stay quiet, as do frozen-dataclass singletons.  The sanctioned
globals -- registries populated only at import time and the tracer with
its explicit fork guard -- are listed in
``[tool.simlint.rules.process-global-state].allow`` as dotted names.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ProjectRule, dotted_name
from repro.analysis.project import ModuleEntry, ProjectGraph
from repro.analysis.rules import register

#: Method names that mutate their receiver (mirrors the purity rule).
_MUTATORS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "setdefault", "sort", "update",
})

#: Constructor names (last dotted segment) that build mutable containers.
_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict",
})

_CONTAINER_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)


@register
class ProcessGlobalStateRule(ProjectRule):
    id = "process-global-state"
    description = (
        "module-level mutable state (mutated containers, non-frozen class "
        "instances) is unsafe under forked multiseed workers"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        options = graph.config.rule_options(self.id)
        allow = {str(name) for name in options.get("allow", ())}
        mutated = _mutated_symbols(graph)
        for entry in graph.entries():
            if entry.module is None:
                continue
            yield from self._check_module(graph, entry, allow, mutated)

    def _check_module(
        self,
        graph: ProjectGraph,
        entry: ModuleEntry,
        allow: Set[str],
        mutated: Set[str],
    ) -> Iterator[Finding]:
        for stmt, name, value in _module_bindings(entry):
            if name.startswith("__") and name.endswith("__"):
                continue
            dotted = f"{entry.module}.{name}"
            if dotted in allow:
                continue
            kind = self._classify(graph, entry, value)
            if kind == "container":
                if dotted in mutated:
                    yield entry.ctx.finding(
                        self.id,
                        stmt,
                        f"module-level container '{name}' is mutated after "
                        "import; forked multiseed workers each mutate a "
                        "private copy (add to the rule's allow list only "
                        "for import-time registries)",
                    )
            elif kind == "instance":
                yield entry.ctx.finding(
                    self.id,
                    stmt,
                    f"module-level instance '{name}' of a non-frozen class "
                    "carries shared mutable state across forked workers; "
                    "construct it per run or freeze the class",
                )

    def _classify(
        self, graph: ProjectGraph, entry: ModuleEntry, value: ast.expr
    ) -> Optional[str]:
        if isinstance(value, _CONTAINER_LITERALS):
            return "container"
        if not isinstance(value, ast.Call):
            return None
        target = graph.resolve_call_target(entry, value.func)
        if target is None:
            return None
        resolved = graph.resolve(target) if "." in target else None
        if resolved is not None:
            _, node = resolved
            if isinstance(node, ast.ClassDef):
                return None if _is_frozen_dataclass(node) else "instance"
            return None  # factory function: cannot reason about the result
        if target.split(".")[-1] in _CONTAINER_CTORS:
            return "container"
        return None


def _module_bindings(
    entry: ModuleEntry,
) -> List[Tuple[ast.stmt, str, ast.expr]]:
    """(stmt, name, value) for every simple module-level assignment."""
    out: List[Tuple[ast.stmt, str, ast.expr]] = []
    for stmt in entry.ctx.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.append((stmt, target.id, stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                out.append((stmt, stmt.target.id, stmt.value))
    return out


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        callee = dotted_name(deco.func)
        if callee is None or callee.split(".")[-1] != "dataclass":
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _mutated_symbols(graph: ProjectGraph) -> Set[str]:
    """Dotted names of module-level symbols some function writes to."""
    mutated: Set[str] = set()

    def note(entry: ModuleEntry, expr: ast.expr) -> None:
        base = expr
        while isinstance(base, ast.Subscript):
            base = base.value
        target = graph.resolve_call_target(entry, base)
        if target is not None and "." in target:
            mutated.add(target)

    for entry in graph.entries():
        module = entry.module
        for node in ast.walk(entry.ctx.tree):
            if isinstance(node, ast.Global) and module is not None:
                mutated.update(f"{module}.{name}" for name in node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets: List[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        note(entry, _write_base(target))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        note(entry, _write_base(target))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                note(entry, node.func.value)
    return mutated


def _write_base(target: ast.expr) -> ast.expr:
    """The expression being written through (``x`` in ``x[k] = v`` / ``x.a = v``)."""
    while isinstance(target, (ast.Subscript, ast.Attribute)):
        target = target.value
    return target
