"""rng-stream-discipline: every draw traces to a named, single-owner stream.

The per-file ``global-rng`` rule bans the process-global RNG; this
project rule enforces the positive contract on top of it, across the
whole tree at once:

* stream names at ``.get(...)`` / ``.generator(...)`` / ``.spawn(...)``
  call sites must be string literals (or literal-prefixed f-strings like
  ``f"radio:{index}"``), so every draw in a trace is attributable to a
  named source;
* a named stream (or literal prefix family) may be requested from
  exactly **one** simlint layer -- two layers sharing ``"arrivals"``
  would couple their draw sequences, so adding a consumer in one layer
  silently reshuffles the other (the aliasing hazard the multiseed
  equivalence tests cannot see);
* no stream object or ``RngStreams`` registry may be bound at module
  level -- forked multiseed workers would inherit one shared generator
  state and diverge;
* simulation layers never construct ``random.Random(...)`` /
  ``numpy.random.default_rng(...)`` directly: streams are minted by
  ``RngStreams`` so they derive from the one root seed.

Receivers are matched syntactically: attribute chains ending in ``rng``
/ ``*_rng`` / ``streams`` / ``*_streams`` (case-insensitive), plus
direct ``RngStreams(...)`` results.  ``simkernel/rngstreams.py`` itself
is exempt via ``allow-files``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.config import SIM_LAYERS
from repro.analysis.core import Finding, ProjectRule, dotted_name
from repro.analysis.project import ModuleEntry, ProjectGraph
from repro.analysis.rules import register

_STREAM_METHODS = ("get", "generator", "spawn")

_DIRECT_CTORS = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
}


@dataclasses.dataclass(frozen=True)
class _Site:
    """One literal-named stream request."""

    family: str
    key: str
    is_prefix: bool
    entry: ModuleEntry
    line: int
    col: int
    node_repr: Tuple[str, int, int]  # (path, line, col) for stable identity


@register
class RngStreamDisciplineRule(ProjectRule):
    id = "rng-stream-discipline"
    description = (
        "RNG draws must come from literal-named RngStreams streams, each "
        "owned by a single layer and never bound at module level"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        sites: List[_Site] = []
        for entry in graph.entries():
            if entry.module is None:
                continue  # files outside a repro tree are exempt
            yield from self._check_module(graph, entry, sites)
        yield from self._check_collisions(sites)

    # ------------------------------------------------------------------
    # per-module checks (literal names, module-level bindings, ctors)
    # ------------------------------------------------------------------
    def _check_module(
        self, graph: ProjectGraph, entry: ModuleEntry, sites: List[_Site]
    ) -> Iterator[Finding]:
        ctx = entry.ctx
        for stmt in ctx.tree.body:
            value = getattr(stmt, "value", None)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and value is not None:
                if self._is_stream_call(entry, value) or self._is_registry_ctor(
                    graph, entry, value
                ):
                    yield ctx.finding(
                        self.id,
                        stmt,
                        "module-level RNG stream binding is shared across "
                        "forked multiseed workers and escapes per-run "
                        "seeding; bind streams inside the run "
                        "(SimContext.rng)",
                    )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_stream_call(entry, node):
                yield from self._check_name(entry, node, sites)
            elif (
                ctx.layer in SIM_LAYERS
                and self._direct_ctor_target(graph, entry, node)
            ):
                target = self._direct_ctor_target(graph, entry, node)
                yield ctx.finding(
                    self.id,
                    node,
                    f"{target} constructed directly in sim layer "
                    f"'{ctx.layer}'; mint streams via RngStreams.get/"
                    "generator so every draw derives from the root seed "
                    "under a name",
                )

    def _is_stream_call(self, entry: ModuleEntry, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _STREAM_METHODS:
            return False
        if len(node.args) + len(node.keywords) != 1:
            return False  # one-arg signature; dict.get(k, default) never matches
        receiver = func.value
        if isinstance(receiver, ast.Call):
            callee = dotted_name(receiver.func)
            return callee is not None and callee.split(".")[-1] == "RngStreams"
        name = dotted_name(receiver)
        if name is None:
            return False
        seg = name.split(".")[-1].lower()
        return (
            seg in ("rng", "rngs", "streams")
            or seg.endswith("_rng")
            or seg.endswith("_streams")
        )

    def _is_registry_ctor(
        self, graph: ProjectGraph, entry: ModuleEntry, node: ast.expr
    ) -> bool:
        if not isinstance(node, ast.Call):
            return False
        target = graph.resolve_call_target(entry, node.func)
        return target is not None and target.split(".")[-1] == "RngStreams"

    def _direct_ctor_target(
        self, graph: ProjectGraph, entry: ModuleEntry, node: ast.Call
    ) -> Optional[str]:
        target = graph.resolve_call_target(entry, node.func)
        if target in _DIRECT_CTORS:
            return target
        return None

    def _check_name(
        self, entry: ModuleEntry, node: ast.Call, sites: List[_Site]
    ) -> Iterator[Finding]:
        assert isinstance(node.func, ast.Attribute)
        arg = node.args[0] if node.args else node.keywords[0].value
        key: Optional[str] = None
        is_prefix = False
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            key = arg.value
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            first = arg.values[0]
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                and first.value
            ):
                key = first.value
                is_prefix = True
        if key is None:
            yield entry.ctx.finding(
                self.id,
                node,
                f".{node.func.attr}(...) stream name is not a string "
                "literal (or literal-prefixed f-string); draws must be "
                "attributable to a named stream",
            )
            return
        sites.append(
            _Site(
                family=node.func.attr,
                key=key,
                is_prefix=is_prefix,
                entry=entry,
                line=node.lineno,
                col=node.col_offset,
                node_repr=(entry.path, node.lineno, node.col_offset),
            )
        )

    # ------------------------------------------------------------------
    # cross-layer ownership
    # ------------------------------------------------------------------
    def _check_collisions(self, sites: List[_Site]) -> Iterator[Finding]:
        by_family: Dict[str, List[_Site]] = {}
        for site in sites:
            by_family.setdefault(site.family, []).append(site)
        for family in sorted(by_family):
            members = sorted(by_family[family], key=lambda s: s.node_repr)
            for site in members:
                other = next(
                    (
                        peer
                        for peer in members
                        if peer.entry.layer != site.entry.layer
                        and _names_collide(site, peer)
                    ),
                    None,
                )
                if other is None:
                    continue
                label = site.key + ("*" if site.is_prefix else "")
                yield Finding(
                    path=site.entry.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=(
                        f"stream '{label}' (.{family}) is also drawn in "
                        f"layer '{other.entry.layer}' ({other.entry.path}:"
                        f"{other.line}); a named stream must be owned by "
                        "exactly one layer -- rename one side"
                    ),
                )


def _names_collide(a: _Site, b: _Site) -> bool:
    if a.is_prefix or b.is_prefix:
        return a.key.startswith(b.key) or b.key.startswith(a.key)
    return a.key == b.key
