"""global-rng: ban the process-global RNG state.

Every draw in the simulator must come from a named, seeded stream owned
by :mod:`repro.simkernel.rngstreams`; module-level ``random.*`` and
``numpy.random.*`` calls share hidden global state, so any import-order
or scheduling change silently reshuffles every experiment.

Allowed anywhere: ``random.Random`` / ``random.SystemRandom`` *class*
references (constructing or annotating an explicit, seedable instance).
Everything else on the ``random`` module, and anything on
``np.random``/``numpy.random``, is flagged outside the allow-listed
``simkernel/rngstreams.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from repro.analysis.core import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.rules import register

_ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}


@register
class GlobalRngRule(Rule):
    id = "global-rng"
    description = (
        "use seeded streams from repro.simkernel.rngstreams, never the "
        "global random / numpy.random state"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        numpy_aliases = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node, numpy_aliases)

    def _check_import_from(
        self, ctx: ModuleContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        module = node.module or ""
        if module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_ATTRS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"'from random import {alias.name}' pulls in the "
                        "global RNG; take a seeded random.Random (or an "
                        "rngstreams stream) instead",
                    )
        elif module == "numpy.random" or (
            module == "numpy" and any(a.name == "random" for a in node.names)
        ):
            yield ctx.finding(
                self.id,
                node,
                "importing numpy.random exposes the global numpy RNG; use "
                "repro.simkernel.rngstreams",
            )

    def _check_attribute(
        self, ctx: ModuleContext, node: ast.Attribute, numpy_aliases: Set[str]
    ) -> Iterator[Finding]:
        # random.<fn> for anything that is not the Random class itself.
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr not in _ALLOWED_RANDOM_ATTRS
        ):
            yield ctx.finding(
                self.id,
                node,
                f"random.{node.attr} uses the process-global RNG; draw from "
                "a seeded stream (repro.simkernel.rngstreams)",
            )
            return
        # np.random.<anything> / numpy.random.<anything>.
        name = dotted_name(node)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] in numpy_aliases and parts[1] == "random":
            # Report once, on the innermost `np.random` attribute, so a
            # chain like np.random.rand does not double-fire.
            if len(parts) == 2:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{name} is the global numpy RNG; use "
                    "repro.simkernel.rngstreams",
                )


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names that refer to the numpy module in this file (np, numpy, ...)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases
