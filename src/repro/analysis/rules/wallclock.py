"""wall-clock: no real-time reads inside simulation layers.

Simulated time is ``sim.now``; a ``time.time()`` or ``datetime.now()``
call inside a sim layer couples results to the host machine and makes
replays diverge.  Scoped (via ``[tool.simlint.rules.wall-clock]``) to the
sim layers only -- experiments and benchmarks legitimately measure wall
clock for scalability tables.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule, dotted_name
from repro.analysis.rules import register

#: Attribute chains that read the host clock.
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
    "date.today",
}

#: Names whose bare import-from is equally banned (`from time import time`).
_BANNED_FROM_IMPORTS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
}


@register
class WallClockRule(Rule):
    id = "wall-clock"
    description = (
        "sim layers must use simulated time (sim.now), never the host clock"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in _BANNED_CALLS:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"{name} reads the host clock inside a sim layer; "
                        "use the kernel's simulated time (sim.now)",
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if (module, alias.name) in _BANNED_FROM_IMPORTS:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"'from {module} import {alias.name}' imports a "
                            "host-clock reader into a sim layer",
                        )
