"""unordered-iter: no iteration over bare sets or ``dict.keys()``.

Set iteration order depends on insertion history and hash seeding; when
such a loop feeds event scheduling or allocation order, two runs of the
"same" experiment diverge.  Iterating ``d.keys()`` is flagged too: plain
``for k in d`` is equivalent, and writing ``.keys()`` usually signals a
loop that actually cares about order -- make it ``sorted(d)`` instead.

The rule is syntactic: it sees set literals, set comprehensions,
``set(...)``/``frozenset(...)`` calls, and ``.keys()`` calls in ``for``
statements and comprehension generators.  Sets reached through variables
are out of reach of an untyped AST pass (documented in DESIGN.md §7).

Findings carry an auto-fix -- wrapping the iterable in ``sorted(...)``
-- because imposing a total order on an unordered iterable is
semantics-preserving by policy here: any code this repo lints must
already be indifferent to which of the possible orders it gets.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Edit, Finding, Fix, ModuleContext, Rule
from repro.analysis.rules import register


@register
class UnorderedIterRule(Rule):
    id = "unordered-iter"
    description = (
        "iterate sorted(...) (or the dict itself), never a bare set or "
        "dict.keys()"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iter(ctx, generator.iter)

    def _check_iter(self, ctx: ModuleContext, it: ast.expr) -> Iterator[Finding]:
        label = _unordered_label(it)
        if label is not None:
            finding = ctx.finding(
                self.id,
                it,
                f"iterating {label} has no deterministic order; wrap in "
                "sorted(...) or iterate a sequence",
            )
            fix = _sorted_wrap_fix(it)
            if fix is not None:
                finding = dataclasses.replace(finding, fix=fix)
            yield finding


def _sorted_wrap_fix(it: ast.expr) -> Optional[Fix]:
    """Wrap the iterable expression in ``sorted(...)`` in place."""
    end_line = getattr(it, "end_lineno", None)
    end_col = getattr(it, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return Fix(
        edits=(
            Edit(it.lineno, it.col_offset, it.lineno, it.col_offset, "sorted("),
            Edit(end_line, end_col, end_line, end_col, ")"),
        )
    )


def _unordered_label(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None
