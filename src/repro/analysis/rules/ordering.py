"""unordered-iter: no iteration over bare sets or ``dict.keys()``.

Set iteration order depends on insertion history and hash seeding; when
such a loop feeds event scheduling or allocation order, two runs of the
"same" experiment diverge.  Iterating ``d.keys()`` is flagged too: plain
``for k in d`` is equivalent, and writing ``.keys()`` usually signals a
loop that actually cares about order -- make it ``sorted(d)`` instead.

The rule is syntactic: it sees set literals, set comprehensions,
``set(...)``/``frozenset(...)`` calls, and ``.keys()`` calls in ``for``
statements and comprehension generators.  Sets reached through variables
are out of reach of an untyped AST pass (documented in DESIGN.md §7).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register


@register
class UnorderedIterRule(Rule):
    id = "unordered-iter"
    description = (
        "iterate sorted(...) (or the dict itself), never a bare set or "
        "dict.keys()"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iter(ctx, generator.iter)

    def _check_iter(self, ctx: ModuleContext, it: ast.expr) -> Iterator[Finding]:
        label = _unordered_label(it)
        if label is not None:
            yield ctx.finding(
                self.id,
                it,
                f"iterating {label} has no deterministic order; wrap in "
                "sorted(...) or iterate a sequence",
            )


def _unordered_label(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys()"
    return None
