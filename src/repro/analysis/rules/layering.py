"""layering: enforce the declared import DAG between repro packages.

``[tool.simlint.layers]`` in pyproject.toml declares, for every layer
(top-level package under ``repro``, or top-level module like ``cli``),
exactly which layers it may import.  Anything else -- ``network``
reaching up into ``core``, a sim layer importing ``experiments`` -- is a
boundary violation.  Absolute and relative imports are both resolved;
files outside a ``repro`` package root (tests, benchmarks) have no layer
and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register


@register
class LayeringRule(Rule):
    id = "layering"
    description = "imports must follow the layer DAG declared in [tool.simlint.layers]"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.layer is None or ctx.module is None:
            return
        allowed = ctx.config.allowed_imports(ctx.layer)
        if allowed is None:  # undeclared layer: nothing to enforce
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    yield from self._judge(ctx, node, parts, allowed)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node, allowed)

    def _check_import_from(
        self, ctx: ModuleContext, node: ast.ImportFrom, allowed: Iterable[str]
    ) -> Iterator[Finding]:
        base = _resolve_base(ctx, node)
        if base is None:
            return
        if len(base) >= 2:
            yield from self._judge(ctx, node, base, allowed)
        elif base == ["repro"]:
            # `from repro import X` / `from .. import X` at the top:
            # each alias names a layer directly.
            for alias in node.names:
                yield from self._judge(
                    ctx, node, ["repro", alias.name], allowed
                )

    def _judge(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        parts: List[str],
        allowed: Iterable[str],
    ) -> Iterator[Finding]:
        if not parts or parts[0] != "repro" or len(parts) < 2:
            return
        target = parts[1]
        if target == ctx.layer or target in allowed:
            return
        if target not in ctx.config.layers:
            return  # unknown target (e.g. a symbol re-exported from repro)
        yield ctx.finding(
            self.id,
            node,
            f"layer '{ctx.layer}' may not import 'repro.{target}' "
            f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
        )


def _resolve_base(
    ctx: ModuleContext, node: ast.ImportFrom
) -> Optional[List[str]]:
    """Resolve the package an ImportFrom targets, as dotted parts.

    Returns e.g. ``["repro", "core", "infp"]``, or ``None`` when the
    import is outside the repro tree.
    """
    if node.level == 0:
        module = node.module or ""
        if module == "repro" or module.startswith("repro."):
            return module.split(".")
        return None
    assert ctx.module is not None
    parts = ctx.module.split(".")
    if not ctx.is_package_init:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[: len(parts) - drop]
    if not parts or parts[0] != "repro":
        return None
    if node.module:
        parts = parts + node.module.split(".")
    return parts
