"""Rule registry.

Importing this package registers every built-in rule.  Each rule module
defines one :class:`~repro.analysis.core.Rule` or
:class:`~repro.analysis.core.ProjectRule` subclass decorated with
:func:`register`; ``RULES`` maps rule id -> per-file rule singleton and
``PROJECT_RULES`` maps rule id -> whole-program rule singleton.  The two
diagnostics the runner synthesizes itself (``parse-error`` for files
that fail to parse, ``stale-suppression`` for ignore-comments that no
longer suppress anything) are listed in ``META_RULES`` so ``--select``
and ``--list-rules`` treat them like any other id.
"""

from __future__ import annotations

from typing import Dict, Type, Union

from repro.analysis.core import ProjectRule, Rule

RULES: Dict[str, Rule] = {}
PROJECT_RULES: Dict[str, ProjectRule] = {}

#: Runner-synthesized diagnostics: id -> description.
META_RULES: Dict[str, str] = {
    "parse-error": (
        "file could not be parsed; reported as a finding instead of "
        "aborting the run"
    ),
    "stale-suppression": (
        "a '# simlint: ignore[...]' comment (or one id inside it) no "
        "longer suppresses any finding and should be deleted"
    ),
}


def register(
    cls: Union[Type[Rule], Type[ProjectRule]]
) -> Union[Type[Rule], Type[ProjectRule]]:
    """Class decorator: instantiate the rule and add it to its registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in RULES or rule.id in PROJECT_RULES or rule.id in META_RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if isinstance(rule, ProjectRule):
        PROJECT_RULES[rule.id] = rule
    else:
        RULES[rule.id] = rule
    return cls


def all_rule_ids() -> Dict[str, str]:
    """Every known rule id -> description, across all three registries."""
    ids: Dict[str, str] = {}
    for registry in (RULES, PROJECT_RULES):
        for rule_id, rule in registry.items():
            ids[rule_id] = rule.description
    ids.update(META_RULES)
    return ids


# Import for side effect: each module registers its rule(s).
from repro.analysis.rules import (  # noqa: E402  (registry must exist first)
    beacons,
    defaults,
    floateq,
    globalstate,
    hotpath,
    layering,
    ordering,
    printrule,
    purity,
    rng,
    rngflow,
    spanrule,
    transportio,
    twins,
    wallclock,
)

__all__ = [
    "META_RULES",
    "PROJECT_RULES",
    "RULES",
    "all_rule_ids",
    "register",
    "beacons",
    "defaults",
    "floateq",
    "globalstate",
    "hotpath",
    "layering",
    "ordering",
    "printrule",
    "purity",
    "rng",
    "rngflow",
    "spanrule",
    "transportio",
    "twins",
    "wallclock",
]
