"""Rule registry.

Importing this package registers every built-in rule.  Each rule module
defines one :class:`~repro.analysis.core.Rule` subclass decorated with
:func:`register`; ``RULES`` maps rule id -> singleton instance.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.analysis.core import Rule

RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate the rule and add it to ``RULES``."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


# Import for side effect: each module registers its rule(s).
from repro.analysis.rules import (  # noqa: E402  (registry must exist first)
    defaults,
    floateq,
    hotpath,
    layering,
    ordering,
    printrule,
    purity,
    rng,
    wallclock,
)

__all__ = [
    "RULES",
    "register",
    "defaults",
    "floateq",
    "hotpath",
    "layering",
    "ordering",
    "printrule",
    "purity",
    "rng",
    "wallclock",
]
