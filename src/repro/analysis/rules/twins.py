"""vec-twin-drift: declared scalar/vectorized twin pairs must not drift.

The cohort engine evolves millions of sessions through vectorized twins
of the scalar per-step functions (``repro.cohorts.vecsteps``).  The
hypothesis property tests pin element-wise agreement at runtime; this
rule pins the *interface* statically, so a drive-by edit to one side is
caught before any test runs.  Pairs are declared in
``[[tool.simlint.twins]]``::

    [[tool.simlint.twins]]
    vec = "repro.cohorts.vecsteps.engagement_vec"
    scalar = "repro.video.qoe.engagement_terms"
    # checks = ["signature", "defaults", "constants"]   (default: all)

Checks per pair:

* ``signature`` -- parameter names must match positionally.  When the
  scalar is a method, its ``self``/``cls`` and the vec twin's first
  parameter (the explicit receiver) are skipped.
* ``defaults`` -- a shared parameter must carry a literal default on
  both sides or neither, and literal defaults must be equal.
* ``constants`` -- the set of numeric literals passed to clamp-family
  calls (``min``/``max``/``clip``/``minimum``/``maximum``) and the full
  set of numeric literals in the body must agree: a changed clamp bound
  or model constant on one side is exactly the silent drift the rule
  exists for.

A pair whose modules are absent from the analyzed tree is skipped (the
rule stays quiet under partial lints); a present module whose symbol no
longer resolves is reported -- renames and deletions count as drift.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import TwinPair
from repro.analysis.core import Finding, ProjectRule, dotted_name
from repro.analysis.project import ModuleEntry, ProjectGraph
from repro.analysis.rules import register

_CLAMP_CALLEES = {"min", "max", "clip", "minimum", "maximum"}
_RECEIVERS = {"self", "cls"}


@register
class VecTwinDriftRule(ProjectRule):
    id = "vec-twin-drift"
    description = (
        "scalar/vectorized twin pairs declared in [tool.simlint.twins] must "
        "keep matching signatures, defaults, and clamp constants"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        for pair in graph.config.twins:
            yield from self._check_pair(graph, pair)

    def _check_pair(
        self, graph: ProjectGraph, pair: TwinPair
    ) -> Iterator[Finding]:
        vec = graph.resolve(pair.vec)
        scalar = graph.resolve(pair.scalar)
        if vec is None and scalar is None:
            entry = graph.module_prefix_of(pair.vec) or graph.module_prefix_of(
                pair.scalar
            )
            if entry is not None:
                yield _module_finding(
                    self.id,
                    entry,
                    f"twin pair {pair.vec!r} / {pair.scalar!r} declared in "
                    "[tool.simlint.twins] resolves to neither side; update "
                    "or remove the declaration",
                )
            return
        if vec is None or scalar is None:
            missing = pair.vec if vec is None else pair.scalar
            present_entry, present_node = scalar if vec is None else vec  # type: ignore[misc]
            if graph.module_prefix_of(missing) is None:
                return  # partial lint: the other tree is simply not loaded
            yield _node_finding(
                self.id,
                present_entry,
                present_node,
                f"declared twin {missing!r} does not resolve; the pair in "
                "[tool.simlint.twins] has drifted (renamed or deleted?)",
            )
            return

        vec_entry, vec_node = vec
        scalar_entry, scalar_node = scalar
        if not isinstance(vec_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _node_finding(
                self.id, vec_entry, vec_node, f"{pair.vec!r} is not a function"
            )
            return
        if not isinstance(scalar_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _node_finding(
                self.id,
                scalar_entry,
                scalar_node,
                f"{pair.scalar!r} is not a function",
            )
            return

        vec_params = _params(vec_node)
        scalar_params = _params(scalar_node)
        scalar_is_method = bool(scalar_params) and scalar_params[0][0] in _RECEIVERS
        if scalar_is_method:
            scalar_params = scalar_params[1:]
            vec_params = vec_params[1:]  # vec's first param is the receiver

        if "signature" in pair.checks:
            vec_names = [name for name, _ in vec_params]
            scalar_names = [name for name, _ in scalar_params]
            if vec_names != scalar_names:
                yield _node_finding(
                    self.id,
                    vec_entry,
                    vec_node,
                    f"signature drift vs {pair.scalar}: vec takes "
                    f"({', '.join(vec_names)}) but scalar takes "
                    f"({', '.join(scalar_names)})",
                )

        if "defaults" in pair.checks:
            scalar_defaults = dict(scalar_params)
            for name, vec_default in vec_params:
                if name not in scalar_defaults:
                    continue
                yield from self._check_default(
                    pair, vec_entry, vec_node, name, vec_default,
                    scalar_defaults[name],
                )

        if "constants" in pair.checks:
            vec_all, vec_clamp = _body_constants(vec_node)
            scalar_all, scalar_clamp = _body_constants(scalar_node)
            if vec_clamp != scalar_clamp:
                yield _node_finding(
                    self.id,
                    vec_entry,
                    vec_node,
                    f"clamp-bound drift vs {pair.scalar}: vec clamps with "
                    f"{_fmt(vec_clamp)}, scalar with {_fmt(scalar_clamp)}",
                )
            elif vec_all != scalar_all:
                yield _node_finding(
                    self.id,
                    vec_entry,
                    vec_node,
                    f"constant drift vs {pair.scalar}: vec body uses "
                    f"{_fmt(vec_all)}, scalar body uses {_fmt(scalar_all)}",
                )

    def _check_default(
        self,
        pair: TwinPair,
        vec_entry: ModuleEntry,
        vec_node: ast.AST,
        name: str,
        vec_default: Optional[ast.expr],
        scalar_default: Optional[ast.expr],
    ) -> Iterator[Finding]:
        if (vec_default is None) != (scalar_default is None):
            yield _node_finding(
                self.id,
                vec_entry,
                vec_node,
                f"default drift vs {pair.scalar}: parameter '{name}' has a "
                "default on one twin only",
            )
            return
        if vec_default is None or scalar_default is None:
            return
        vec_value = _const_value(vec_default)
        scalar_value = _const_value(scalar_default)
        if vec_value is None or scalar_value is None:
            return  # non-literal defaults (numpy.inf, ...) are not compared
        if vec_value != scalar_value:
            yield _node_finding(
                self.id,
                vec_entry,
                vec_node,
                f"default drift vs {pair.scalar}: parameter '{name}' "
                f"defaults to {vec_value!r} on the vec twin but "
                f"{scalar_value!r} on the scalar source",
            )


def _params(fn: ast.AST) -> List[Tuple[str, Optional[ast.expr]]]:
    """(name, default-or-None) for positional parameters, in order."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = list(fn.args.posonlyargs) + list(fn.args.args)
    defaults: List[Optional[ast.expr]] = [None] * (
        len(args) - len(fn.args.defaults)
    ) + list(fn.args.defaults)
    pairs = [(arg.arg, default) for arg, default in zip(args, defaults)]
    for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        pairs.append((arg.arg, default))
    return pairs


def _const_value(node: ast.expr) -> Optional[float]:
    """Numeric literal value (handling unary minus), else ``None``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _const_value(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


def _body_constants(fn: ast.AST) -> Tuple[Set[float], Set[float]]:
    """(all numeric literals, numeric literals inside clamp calls)."""
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    all_consts: Set[float] = set()
    clamp_consts: Set[float] = set()
    for stmt in fn.body:
        for node in ast.walk(stmt):
            value = _const_value(node) if isinstance(node, (ast.Constant, ast.UnaryOp)) else None
            if value is not None:
                all_consts.add(value)
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is None or callee.split(".")[-1] not in _CLAMP_CALLEES:
                    continue
                operands = list(node.args) + [kw.value for kw in node.keywords]
                for arg in operands:
                    arg_value = _const_value(arg)
                    if arg_value is not None:
                        clamp_consts.add(arg_value)
    return all_consts, clamp_consts


def _fmt(values: Set[float]) -> str:
    if not values:
        return "{}"
    return "{" + ", ".join(repr(v) for v in sorted(values)) + "}"


def _node_finding(
    rule_id: str, entry: ModuleEntry, node: ast.AST, message: str
) -> Finding:
    return entry.ctx.finding(rule_id, node, message)


def _module_finding(rule_id: str, entry: ModuleEntry, message: str) -> Finding:
    return Finding(
        path=entry.path, line=1, col=0, rule=rule_id, message=message
    )
