"""float-eq: no ``==`` / ``!=`` against float literals in allocation code.

Rates, capacities, and link loads are accumulated floats; exact equality
against a float literal is either dead (never true after arithmetic) or a
fragile sentinel.  Scoped (via ``[tool.simlint.rules.float-eq]``) to the
``network`` and ``core`` layers where allocation math lives.  Intentional
exact-sentinel checks (e.g. a rate that was *assigned* 0.0 and never
touched by arithmetic) carry an inline ``# simlint: ignore[float-eq]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register


@register
class FloatEqRule(Rule):
    id = "float-eq"
    description = (
        "compare floats with a tolerance (math.isclose / epsilon), not ==/!="
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = _float_literal(left) or _float_literal(right)
                if literal is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.finding(
                        self.id,
                        node,
                        f"exact {symbol} against float literal {literal}; "
                        "use a tolerance, or mark an intentional sentinel "
                        "with '# simlint: ignore[float-eq]'",
                    )


def _float_literal(node: ast.expr):
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return repr(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    ):
        sign = "-" if isinstance(node.op, ast.USub) else "+"
        return sign + repr(node.operand.value)
    return None
