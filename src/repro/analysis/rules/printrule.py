"""no-print: library code reports through telemetry, not stdout.

A ``print`` buried in a sim layer interleaves with experiment tables,
breaks machine-readable output, and hides data from the telemetry
pipeline.  Scoped (via ``[tool.simlint.rules.no-print]``) to exclude the
CLI and the analyzer itself, whose job *is* writing to the console.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register


@register
class NoPrintRule(Rule):
    id = "no-print"
    description = "no print() in library code; use telemetry / reporters"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "print() in library code; emit a telemetry record or "
                    "return data to the caller",
                )
