"""transport-io: socket/event-loop machinery stays in the tcp adapter.

Everything above the wire sees the
:class:`~repro.transport.base.Transport` protocol; the one place real
I/O primitives may appear is the TCP adapter module
(``repro/transport/tcp.py``).  This rule bans importing
:mod:`asyncio`, :mod:`socket`, :mod:`selectors`, or
:mod:`socketserver` anywhere else, so a simulated world can never grow
an accidental dependency on live networking (and the deterministic
loopback/replay adapters provably cannot block on a real socket).
Scoped via ``[tool.simlint.rules.transport-io]`` with
``allow-files = ["transport/tcp.py"]``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.rules import register

#: Modules whose import marks live-networking machinery.
_BANNED_MODULES = ("asyncio", "socket", "selectors", "socketserver")


@register
class TransportIoRule(Rule):
    id = "transport-io"
    description = (
        "asyncio/socket imports are confined to the TCP transport "
        "adapter; everything else uses the Transport protocol"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _BANNED_MODULES:
                        yield ctx.finding(
                            self.id,
                            node,
                            f"'import {alias.name}' outside the TCP "
                            "adapter; speak the Transport protocol instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in _BANNED_MODULES and node.level == 0:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"'from {node.module} import ...' outside the TCP "
                        "adapter; speak the Transport protocol instead",
                    )
