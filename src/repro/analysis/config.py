"""simlint configuration: layer DAG and per-rule scopes from pyproject.toml.

The configuration lives under ``[tool.simlint]``::

    [tool.simlint]
    exclude = ["__pycache__"]

    [tool.simlint.layers]
    simkernel = []
    network = ["simkernel"]
    ...

    [tool.simlint.rules.wall-clock]
    layers = ["simkernel", "network", ...]

    [tool.simlint.rules.global-rng]
    allow-files = ["simkernel/rngstreams.py"]

``layers`` declares the architectural DAG: a layer may import itself plus
exactly the layers it lists.  Per-rule tables narrow where a rule runs:
``layers`` restricts it to those layers, ``exclude-layers`` exempts
layers, and ``allow-files`` exempts files whose path ends with one of the
given suffixes; any further keys in a rule table are passed through to
the rule as options (``allow`` for process-global-state, the producer /
cohort / aggregator anchors for beacon-schema-sync).  ``[[tool.simlint.twins]]``
declares scalar/vectorized twin pairs for the vec-twin-drift project
rule.  :data:`DEFAULT_CONFIG_DICT` mirrors the repository's policy so
the analyzer is usable with no pyproject at all.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fallback, no tomli vendored
    tomllib = None  # type: ignore[assignment]

#: Layers that participate in the deterministic simulation itself (as
#: opposed to drivers, reporting, and tooling).  Wall-clock reads are
#: banned here; ``experiments`` and ``benchmarks`` may time themselves.
SIM_LAYERS: Tuple[str, ...] = (
    "simkernel",
    "network",
    "core",
    "cdn",
    "sdn",
    "video",
    "web",
    "telemetry",
    "workloads",
    "baselines",
    "faults",
    "cohorts",
    "scenarios",
    "transport",
)

#: Checks a ``[tool.simlint.twins]`` pair may enable (default: all).
TWIN_CHECKS: Tuple[str, ...] = ("signature", "defaults", "constants")

#: Built-in policy, kept in sync with ``[tool.simlint]`` in pyproject.toml.
DEFAULT_CONFIG_DICT: Dict[str, object] = {
    "exclude": ["__pycache__"],
    # Scalar/vectorized twin pairs the cohort engine depends on staying
    # in lockstep (DESIGN.md §11); vec-twin-drift compares them.
    "twins": [
        {
            "vec": "repro.cohorts.vecsteps.buffer_advance_vec",
            "scalar": "repro.video.buffer.buffer_advance_step",
        },
        {
            "vec": "repro.cohorts.vecsteps.engagement_vec",
            "scalar": "repro.video.qoe.engagement_terms",
        },
        # The array implementation is index arithmetic, the scalar a
        # filter -- their constants legitimately differ, so only the
        # interface is compared.
        {
            "vec": "repro.cohorts.vecsteps.highest_at_most_vec",
            "scalar": "repro.video.ladder.BitrateLadder.highest_at_most",
            "checks": ["signature", "defaults"],
        },
    ],
    "layers": {
        "simkernel": [],
        "cdn": [],
        "obs": ["simkernel"],
        "network": ["obs", "simkernel"],
        "sdn": ["network", "obs", "simkernel"],
        "video": ["cdn", "network", "simkernel"],
        "web": ["cdn", "network", "simkernel"],
        "telemetry": ["obs", "simkernel", "video", "web"],
        "cohorts": ["network", "telemetry", "video", "web", "workloads"],
        "core": ["cdn", "network", "obs", "sdn", "simkernel", "telemetry", "video"],
        "workloads": ["cdn", "core", "network", "obs", "sdn", "simkernel", "web"],
        "baselines": ["cdn", "core", "network", "sdn", "video"],
        "faults": ["core", "network", "obs", "simkernel"],
        "scenarios": [
            "cdn", "core", "faults", "network", "obs", "sdn", "simkernel",
            "web", "workloads",
        ],
        "experiments": [
            "baselines", "cdn", "cohorts", "core", "faults", "network", "obs",
            "scenarios", "sdn", "simkernel", "telemetry", "transport", "video",
            "web", "workloads",
        ],
        "transport": ["core", "obs", "simkernel"],
        "cli": [
            "analysis", "experiments", "faults", "obs", "scenarios",
            "transport",
        ],
        "analysis": [],
        # Forward declaration: a future top-level span toolkit may depend
        # only on obs + the kernel (today it lives inside repro.obs).
        "spans": ["obs", "simkernel"],
    },
    "rules": {
        "global-rng": {"allow-files": ["simkernel/rngstreams.py"]},
        "wall-clock": {"layers": list(SIM_LAYERS)},
        "float-eq": {"layers": ["network", "core"]},
        "no-print": {"exclude-layers": ["cli", "analysis"]},
        "obs-hotpath": {"exclude-layers": ["obs"]},
        # Socket/event-loop machinery stays behind the Transport
        # protocol: only repro.transport.tcp may import asyncio/socket
        # (DESIGN.md §14).
        "transport-io": {"allow-files": ["transport/tcp.py"]},
        # Cause IDs come from Tracer.new_cause (DESIGN.md §13): only obs
        # may build tracers/span machinery or run its own cause counters.
        "span-discipline": {"exclude-layers": ["obs"]},
        "rng-stream-discipline": {
            # scenarios/engine.py draws spec-named streams (the scenario
            # compiler); attribution lives in the committed specs.
            "allow-files": ["simkernel/rngstreams.py", "scenarios/engine.py"],
        },
        "process-global-state": {
            # The sanctioned process-globals: the tracer carries an
            # explicit fork guard (deactivate_inherited, DESIGN.md §9);
            # the registries are populated at import time and identical
            # in every worker.
            "allow": [
                "repro.analysis.rules.PROJECT_RULES",
                "repro.analysis.rules.RULES",
                "repro.experiments.registry._SPECS",
                "repro.faults.plan._PLANS",
                "repro.obs.trace.TRACER",
                "repro.transport.base._TRANSPORTS",
                "repro.transport.codec._REGISTRY",
            ],
        },
        "beacon-schema-sync": {
            "producers": [
                "repro.telemetry.records.record_from_qoe",
                "repro.telemetry.records.record_from_pageload",
            ],
            "cohort-attrs": "repro.cohorts.specs.CohortSpec.beacon_attrs",
            "aggregator": "repro.telemetry.aggregate.GroupByAggregator",
        },
    },
}


class ConfigError(ValueError):
    """Raised for malformed ``[tool.simlint]`` tables (e.g. a cyclic DAG)."""


@dataclasses.dataclass(frozen=True)
class RuleScope:
    """Where a single rule applies."""

    layers: Optional[FrozenSet[str]] = None
    exclude_layers: FrozenSet[str] = frozenset()
    allow_files: Tuple[str, ...] = ()

    def applies(self, path: str, layer: Optional[str]) -> bool:
        if self.layers is not None and layer not in self.layers:
            return False
        if layer is not None and layer in self.exclude_layers:
            return False
        normalized = path.replace("\\", "/")
        for suffix in self.allow_files:
            if normalized.endswith(suffix):
                return False
        return True


@dataclasses.dataclass(frozen=True)
class TwinPair:
    """One declared scalar/vectorized twin pair (``[[tool.simlint.twins]]``)."""

    vec: str
    scalar: str
    checks: Tuple[str, ...] = TWIN_CHECKS


@dataclasses.dataclass(frozen=True)
class SimlintConfig:
    """Validated simlint policy."""

    layers: Mapping[str, FrozenSet[str]]
    scopes: Mapping[str, RuleScope]
    exclude: Tuple[str, ...]
    twins: Tuple[TwinPair, ...] = ()
    options: Mapping[str, Mapping[str, object]] = dataclasses.field(
        default_factory=dict
    )

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "SimlintConfig":
        layers: Dict[str, FrozenSet[str]] = {}
        for name, deps in dict(raw.get("layers", {})).items():  # type: ignore[union-attr]
            if not isinstance(deps, (list, tuple)):
                raise ConfigError(f"layers.{name} must be a list, got {deps!r}")
            layers[str(name)] = frozenset(str(d) for d in deps)
        _check_acyclic(layers)

        scopes: Dict[str, RuleScope] = {}
        options: Dict[str, Mapping[str, object]] = {}
        for rule_id, table in dict(raw.get("rules", {})).items():  # type: ignore[union-attr]
            if not isinstance(table, Mapping):
                raise ConfigError(f"rules.{rule_id} must be a table, got {table!r}")
            only = table.get("layers")
            scopes[str(rule_id)] = RuleScope(
                layers=None if only is None else frozenset(str(x) for x in only),
                exclude_layers=frozenset(
                    str(x) for x in table.get("exclude-layers", ())
                ),
                allow_files=tuple(str(x) for x in table.get("allow-files", ())),
            )
            options[str(rule_id)] = dict(table)

        twins: List[TwinPair] = []
        for index, pair in enumerate(raw.get("twins", ())):  # type: ignore[call-overload]
            if not isinstance(pair, Mapping):
                raise ConfigError(f"twins[{index}] must be a table, got {pair!r}")
            vec, scalar = pair.get("vec"), pair.get("scalar")
            if not vec or not scalar:
                raise ConfigError(
                    f"twins[{index}] needs both 'vec' and 'scalar' dotted paths"
                )
            checks = tuple(str(c) for c in pair.get("checks", TWIN_CHECKS))
            unknown = [c for c in checks if c not in TWIN_CHECKS]
            if unknown:
                raise ConfigError(
                    f"twins[{index}] has unknown check(s) {unknown}; "
                    f"valid: {', '.join(TWIN_CHECKS)}"
                )
            twins.append(TwinPair(vec=str(vec), scalar=str(scalar), checks=checks))

        exclude = tuple(str(x) for x in raw.get("exclude", ()))  # type: ignore[call-overload]
        return cls(
            layers=layers,
            scopes=scopes,
            exclude=exclude,
            twins=tuple(twins),
            options=options,
        )

    @classmethod
    def default(cls) -> "SimlintConfig":
        return cls.from_dict(DEFAULT_CONFIG_DICT)

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "SimlintConfig":
        if tomllib is None:  # pragma: no cover
            return cls.default()
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        table = data.get("tool", {}).get("simlint")
        if table is None:
            return cls.default()
        return cls.from_dict(table)

    @classmethod
    def discover(cls, start: Path) -> "SimlintConfig":
        """Walk up from ``start`` looking for a pyproject with [tool.simlint]."""
        current = start.resolve()
        if current.is_file():
            current = current.parent
        for directory in [current, *current.parents]:
            candidate = directory / "pyproject.toml"
            if candidate.is_file():
                return cls.from_pyproject(candidate)
        return cls.default()

    def scope_for(self, rule_id: str) -> RuleScope:
        return self.scopes.get(rule_id, RuleScope())

    def rule_options(self, rule_id: str) -> Mapping[str, object]:
        """The raw ``[tool.simlint.rules.<id>]`` table (scope keys included)."""
        return self.options.get(rule_id, {})

    def allowed_imports(self, layer: str) -> Optional[FrozenSet[str]]:
        """Layers that ``layer`` may import, or ``None`` if undeclared."""
        return self.layers.get(layer)


def _check_acyclic(layers: Mapping[str, Iterable[str]]) -> None:
    """Reject cyclic layer declarations with a precise error message."""
    WHITE, GREY, BLACK = 0, 1, 2
    state = {name: WHITE for name in layers}

    def visit(name: str, stack: List[str]) -> None:
        state[name] = GREY
        stack.append(name)
        for dep in sorted(layers.get(name, ())):
            if dep not in layers:
                continue
            if state[dep] == GREY:
                cycle = " -> ".join(stack[stack.index(dep):] + [dep])
                raise ConfigError(f"layer DAG has a cycle: {cycle}")
            if state[dep] == WHITE:
                visit(dep, stack)
        stack.pop()
        state[name] = BLACK

    for name in sorted(layers):
        if state[name] == WHITE:
            visit(name, [])
