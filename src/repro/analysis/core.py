"""Core data model for simlint: findings, fixes, module context, rule bases."""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.config import SimlintConfig
    from repro.analysis.project import ProjectGraph


@dataclasses.dataclass(frozen=True, order=True)
class Edit:
    """One textual replacement inside a file.

    Lines are 1-based, columns 0-based (AST conventions).  An edit with
    ``line == end_line and col == end_col`` is a pure insertion; one with
    empty ``text`` is a deletion.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    text: str


@dataclasses.dataclass(frozen=True)
class Fix:
    """A mechanical repair for one finding: edits within the finding's file.

    Only rules whose repair is semantics-preserving-by-policy attach a
    fix (see DESIGN.md §7); everything else stays report-only.
    """

    edits: Tuple[Edit, ...]


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location.

    Ordering is (path, line, col, rule) so reports are stable regardless
    of rule execution order.  ``fix`` (when present) is the mechanical
    repair ``eona lint --fix`` applies; it never participates in
    ordering or the JSON schema.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fix: Optional[Fix] = dataclasses.field(default=None, compare=False)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file.

    ``module`` is the dotted import path (``repro.network.routing``) when
    the file lives under a ``repro`` package root, else ``None``.
    ``layer`` is the architectural layer the file belongs to: the first
    package under ``repro`` (``network``, ``core``, ...) or the module
    stem for top-level modules (``cli``).  Files outside the tree (tests,
    benchmarks) have ``layer = None`` and are exempt from layer-scoped
    rules.
    """

    path: str
    tree: ast.Module
    source: str
    config: "SimlintConfig"
    module: Optional[str] = None
    layer: Optional[str] = None

    @property
    def is_package_init(self) -> bool:
        return self.path.endswith("__init__.py")

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
        )


class Rule:
    """Base class for simlint rules.

    Subclasses set ``id`` and ``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  Rules never apply
    scoping or suppression themselves; the runner handles both so every
    rule stays a pure AST query.
    """

    id: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program (cross-module) simlint rules.

    Unlike :class:`Rule`, a project rule sees the entire
    :class:`~repro.analysis.project.ProjectGraph` at once -- import
    graph, symbol tables, and every parsed module -- so it can enforce
    contracts that span files (twin functions, stream ownership, beacon
    schemas).  The runner still applies per-rule scoping and per-line
    suppression to each finding afterwards, so project rules stay pure
    graph queries exactly like file rules stay pure AST queries.
    """

    id: str = ""
    description: str = ""

    def check_project(self, graph: "ProjectGraph") -> Iterable[Finding]:
        raise NotImplementedError


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains rooted at a Name, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
