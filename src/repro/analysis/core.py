"""Core data model for simlint: findings, module context, rule base class."""

from __future__ import annotations

import ast
import dataclasses
from typing import TYPE_CHECKING, Dict, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.config import SimlintConfig


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location.

    Ordering is (path, line, col, rule) so reports are stable regardless
    of rule execution order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file.

    ``module`` is the dotted import path (``repro.network.routing``) when
    the file lives under a ``repro`` package root, else ``None``.
    ``layer`` is the architectural layer the file belongs to: the first
    package under ``repro`` (``network``, ``core``, ...) or the module
    stem for top-level modules (``cli``).  Files outside the tree (tests,
    benchmarks) have ``layer = None`` and are exempt from layer-scoped
    rules.
    """

    path: str
    tree: ast.Module
    source: str
    config: "SimlintConfig"
    module: Optional[str] = None
    layer: Optional[str] = None

    @property
    def is_package_init(self) -> bool:
        return self.path.endswith("__init__.py")

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
        )


class Rule:
    """Base class for simlint rules.

    Subclasses set ``id`` and ``description`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  Rules never apply
    scoping or suppression themselves; the runner handles both so every
    rule stays a pure AST query.
    """

    id: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains rooted at a Name, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
