"""Committed-baseline workflow: ratchet simlint instead of big-banging it.

A baseline is a committed JSON snapshot of the findings a tree is known
(and for now allowed) to have.  CI then gates on the *delta*: new
findings fail the build, pre-existing ones do not, and the baseline can
only shrink over time.

Entries are keyed by ``(path, rule, message)`` with a count -- no line
numbers -- so unrelated edits that shift code up or down never
invalidate the baseline; only genuinely new findings (or more instances
of an old one in the same file) surface as delta.

* ``eona lint --baseline simlint-baseline.json`` writes the snapshot,
* ``eona lint --against-baseline simlint-baseline.json`` reports only
  findings in excess of it (exit 1 when any exist).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised for unreadable or structurally invalid baseline files."""


def _key(finding: Finding) -> _Key:
    return (finding.path, finding.rule, finding.message)


def counts(findings: Sequence[Finding]) -> Dict[_Key, int]:
    out: Dict[_Key, int] = {}
    for finding in findings:
        key = _key(finding)
        out[key] = out.get(key, 0) + 1
    return out


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize findings to the committed baseline format (stable order)."""
    entries = [
        {"path": path, "rule": rule, "message": message, "count": count}
        for (path, rule, message), count in sorted(counts(findings).items())
    ]
    payload = {
        "tool": "simlint",
        "version": BASELINE_VERSION,
        "entries": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    path.write_text(render_baseline(findings), encoding="utf-8")


def load_baseline(path: Path) -> Dict[_Key, int]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("tool") != "simlint":
        raise BaselineError(f"{path} is not a simlint baseline file")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"{path} has baseline version {version!r}; this simlint "
            f"understands version {BASELINE_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"{path} has no 'entries' list")
    out: Dict[_Key, int] = {}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entries[{index}] is not an object")
        try:
            key = (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"{path}: entries[{index}] is malformed: {exc}"
            ) from exc
        out[key] = out.get(key, 0) + count
    return out


def delta(
    findings: Sequence[Finding], baseline: Dict[_Key, int]
) -> List[Finding]:
    """Findings in excess of the baseline, in report order.

    When a file has more instances of an identical (rule, message) than
    the baseline recorded, the *last* instances in line order are the
    ones reported -- a stable, if arbitrary, choice.
    """
    remaining = dict(baseline)
    out: List[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            out.append(finding)
    return out
