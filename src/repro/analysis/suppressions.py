"""Per-line suppression of simlint findings.

A trailing comment disarms rules on its physical line::

    if rate != 0.0:  # simlint: ignore[float-eq]
    foo()            # simlint: ignore          (all rules on this line)
    bar()            # simlint: ignore[rule-a, rule-b]

Suppressions are parsed from the token stream (not regex over raw lines)
so comments inside string literals never count.

:func:`collect_suppression_comments` returns the precise spans of each
comment and of every rule id inside it, which is what the
``stale-suppression`` meta-rule needs to delete a single stale id (or
the whole comment) without touching the code before it.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Tuple

#: Sentinel meaning "suppress every rule on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_PATTERN = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)


@dataclasses.dataclass(frozen=True)
class SuppressionComment:
    """One ``# simlint: ignore[...]`` comment, with spans for auto-fix.

    ``col`` / ``end_col`` cover the simlint directive inside the comment
    token; ``comment_col`` is where the comment token itself starts
    (deleting from there removes any ``#`` and padding before the
    directive).  ``rule_spans`` maps each listed rule id to its
    ``(start_col, end_col)`` inside the line; empty for a bare
    ``# simlint: ignore``.
    """

    line: int
    col: int
    end_col: int
    comment_col: int
    rules: FrozenSet[str]
    rule_spans: Tuple[Tuple[str, int, int], ...]

    @property
    def is_blanket(self) -> bool:
        return self.rules == ALL_RULES


def collect_suppression_comments(source: str) -> List[SuppressionComment]:
    """Every simlint suppression comment in the file, in line order."""
    out: List[SuppressionComment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if not match:
                continue
            base = token.start[1]
            rules_group = match.group("rules")
            spans: List[Tuple[str, int, int]] = []
            if rules_group is None:
                ids = ALL_RULES
            else:
                offset = base + match.start("rules")
                cursor = 0
                names: List[str] = []
                for part in rules_group.split(","):
                    stripped = part.strip()
                    if stripped:
                        start = offset + cursor + part.index(stripped)
                        spans.append((stripped, start, start + len(stripped)))
                        names.append(stripped)
                    cursor += len(part) + 1  # +1 for the comma
                ids = frozenset(names)
            out.append(
                SuppressionComment(
                    line=token.start[0],
                    col=base + match.start(),
                    end_col=base + match.end(),
                    comment_col=base,
                    rules=ids,
                    rule_spans=tuple(spans),
                )
            )
    except tokenize.TokenError:
        # Unterminated constructs: the AST parse will have failed anyway.
        pass
    return out


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of suppressed rule ids ('*' = all)."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    for comment in collect_suppression_comments(source):
        suppressed[comment.line] = (
            suppressed.get(comment.line, frozenset()) | comment.rules
        )
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    ids = suppressions.get(line)
    if ids is None:
        return False
    return "*" in ids or rule_id in ids


def suppression_comments_by_line(
    source: str,
) -> Dict[int, List[SuppressionComment]]:
    by_line: Dict[int, List[SuppressionComment]] = {}
    for comment in collect_suppression_comments(source):
        by_line.setdefault(comment.line, []).append(comment)
    return by_line
