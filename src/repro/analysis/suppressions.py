"""Per-line suppression of simlint findings.

A trailing comment disarms rules on its physical line::

    if rate != 0.0:  # simlint: ignore[float-eq]
    foo()            # simlint: ignore          (all rules on this line)
    bar()            # simlint: ignore[rule-a, rule-b]

Suppressions are parsed from the token stream (not regex over raw lines)
so comments inside string literals never count.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Sentinel meaning "suppress every rule on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_PATTERN = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> set of suppressed rule ids ('*' = all)."""
    suppressed: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                ids = ALL_RULES
            else:
                ids = frozenset(
                    part.strip() for part in rules.split(",") if part.strip()
                )
            line = token.start[0]
            suppressed[line] = suppressed.get(line, frozenset()) | ids
    except tokenize.TokenError:
        # Unterminated constructs: the AST parse will have failed anyway.
        pass
    return suppressed


def is_suppressed(
    suppressions: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    ids = suppressions.get(line)
    if ids is None:
        return False
    return "*" in ids or rule_id in ids
