"""simlint driver: discovery, project graph, rule dispatch, fixes, CLI.

Used three ways:

* ``eona lint [paths]`` (wired in :mod:`repro.cli`),
* ``python -m repro.analysis [paths]``,
* programmatically via :func:`lint_paths` / :func:`run_lint` (the test
  suite does this).

A run parses every requested file once into a
:class:`~repro.analysis.project.ProjectGraph`, dispatches the per-file
rules over each module and the project rules over the graph, filters
through per-rule scopes and per-line suppressions, then synthesizes the
two meta diagnostics: ``parse-error`` for files that failed to parse
(the run degrades instead of aborting) and ``stale-suppression`` for
ignore-comments that no longer suppress anything (full runs only --
under ``--select`` the unselected rules never get the chance to use
their suppressions).

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import (
    IO,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.baseline import (
    BaselineError,
    delta,
    load_baseline,
    render_baseline,
)
from repro.analysis.config import ConfigError, SimlintConfig
from repro.analysis.core import Edit, Finding, Fix
from repro.analysis.fixes import plan_fixes, write_fixes
from repro.analysis.project import ModuleEntry, ProjectGraph, build_project
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import PROJECT_RULES, RULES, all_rule_ids
from repro.analysis.suppressions import (
    SuppressionComment,
    collect_suppression_comments,
    is_suppressed,
)


def iter_python_files(paths: Sequence[Path], config: SimlintConfig) -> Iterator[Path]:
    """Yield .py files under ``paths``, skipping excluded directory names."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in config.exclude for part in candidate.parts):
                continue
            yield candidate


def module_info(path: Path) -> Tuple[Optional[str], Optional[str]]:
    """Infer (dotted module, layer) for a file under a ``repro`` tree.

    The package root is the *last* ``src/repro`` pair in the path, so
    fixture trees like ``tests/analysis/fixtures/src/repro/network/x.py``
    resolve exactly like the real tree.  Files outside any such root get
    ``(None, None)`` and skip layer-scoped rules.
    """
    parts = path.parts
    root_index = None
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            root_index = i + 1
    if root_index is None:
        return None, None
    rest = parts[root_index + 1:]
    if not rest:
        return None, None
    stem_parts = list(rest[:-1])
    filename = rest[-1]
    if filename == "__init__.py":
        module_parts = ["repro"] + stem_parts
    else:
        module_parts = ["repro"] + stem_parts + [filename[:-3]]
    module = ".".join(module_parts)
    layer = stem_parts[0] if stem_parts else filename[:-3]
    return module, layer


@dataclasses.dataclass
class LintRun:
    """Everything one lint pass produced."""

    findings: List[Finding]
    graph: ProjectGraph


def run_lint(
    paths: Sequence[Path],
    config: SimlintConfig,
    select: Optional[Sequence[str]] = None,
    display_root: Optional[Path] = None,
) -> LintRun:
    """Parse once, run file + project rules, synthesize meta diagnostics."""
    files = list(iter_python_files(paths, config))
    graph = build_project(files, config, display_root)
    selected: Optional[Set[str]] = None if select is None else set(select)

    def want(rule_id: str) -> bool:
        return selected is None or rule_id in selected

    findings: List[Finding] = []
    #: (path, line) -> rule ids whose findings a suppression absorbed.
    used: Dict[Tuple[str, int], Set[str]] = {}

    def admit(entry: ModuleEntry, finding: Finding) -> None:
        if is_suppressed(entry.suppressions, finding.line, finding.rule):
            used.setdefault((finding.path, finding.line), set()).add(finding.rule)
        else:
            findings.append(finding)

    if want("parse-error"):
        for failure in graph.failures:
            findings.append(
                Finding(
                    path=failure.path,
                    line=failure.line,
                    col=failure.col,
                    rule="parse-error",
                    message=failure.message,
                )
            )

    for entry in graph.entries():
        for rule_id, rule in sorted(RULES.items()):
            if not want(rule_id):
                continue
            if not config.scope_for(rule_id).applies(entry.path, entry.layer):
                continue
            for finding in rule.check(entry.ctx):
                admit(entry, finding)

    for rule_id, project_rule in sorted(PROJECT_RULES.items()):
        if not want(rule_id):
            continue
        scope = config.scope_for(rule_id)
        for finding in project_rule.check_project(graph):
            entry = graph.entry_for_path(finding.path)
            layer = entry.layer if entry is not None else None
            if not scope.applies(finding.path, layer):
                continue
            if entry is not None:
                admit(entry, finding)
            else:
                findings.append(finding)

    if selected is None:
        for entry in graph.entries():
            for finding in _stale_suppressions(entry, used):
                findings.append(finding)

    findings.sort()
    return LintRun(findings=findings, graph=graph)


def _stale_suppressions(
    entry: ModuleEntry, used: Dict[Tuple[str, int], Set[str]]
) -> Iterator[Finding]:
    """``stale-suppression`` findings (with deletion fixes) for one module."""
    lines = entry.ctx.source.splitlines()
    for comment in collect_suppression_comments(entry.ctx.source):
        used_here = used.get((entry.path, comment.line), set())
        line_text = lines[comment.line - 1] if comment.line <= len(lines) else ""
        if comment.is_blanket:
            if used_here:
                continue
            yield Finding(
                path=entry.path,
                line=comment.line,
                col=comment.col,
                rule="stale-suppression",
                message=(
                    "blanket '# simlint: ignore' suppresses nothing on "
                    "this line; delete it"
                ),
                fix=_delete_comment_fix(comment, line_text, len(lines)),
            )
            continue
        stale = sorted(rid for rid in comment.rules if rid not in used_here)
        if not stale:
            continue
        if set(stale) == set(comment.rules):
            fix = _delete_comment_fix(comment, line_text, len(lines))
            what = "suppresses nothing"
        else:
            fix = _delete_ids_fix(comment, line_text, stale)
            what = f"lists rule(s) that never fire here: {', '.join(stale)}"
        yield Finding(
            path=entry.path,
            line=comment.line,
            col=comment.col,
            rule="stale-suppression",
            message=f"'# simlint: ignore[...]' {what}; delete the stale part",
            fix=fix,
        )


def _delete_comment_fix(
    comment: SuppressionComment, line_text: str, total_lines: int
) -> Fix:
    """Delete the whole directive comment (and the line, if it is alone)."""
    directive_at_comment_start = comment.col == comment.comment_col
    nothing_after = line_text[comment.end_col:].strip() == ""
    before = line_text[: comment.comment_col]
    if directive_at_comment_start and nothing_after:
        if before.strip() == "":
            if comment.line < total_lines:
                return Fix(
                    edits=(Edit(comment.line, 0, comment.line + 1, 0, ""),)
                )
            return Fix(
                edits=(Edit(comment.line, 0, comment.line, len(line_text), ""),)
            )
        start_col = len(before.rstrip())
        return Fix(
            edits=(
                Edit(comment.line, start_col, comment.line, len(line_text), ""),
            )
        )
    # Directive embedded in a larger comment: excise just the directive.
    return Fix(
        edits=(Edit(comment.line, comment.col, comment.line, comment.end_col, ""),)
    )


def _delete_ids_fix(
    comment: SuppressionComment, line_text: str, stale: Sequence[str]
) -> Fix:
    """Delete stale ids (with one adjacent comma each) from the bracket list."""
    stale_set = set(stale)
    edits: List[Edit] = []
    claimed: List[Tuple[int, int]] = []
    for rule_id, start, end in comment.rule_spans:
        if rule_id not in stale_set:
            continue
        j = end
        while j < len(line_text) and line_text[j] == " ":
            j += 1
        if j < len(line_text) and line_text[j] == ",":
            j += 1
            while j < len(line_text) and line_text[j] == " ":
                j += 1
            span = (start, j)
        else:
            i = start
            while i > 0 and line_text[i - 1] == " ":
                i -= 1
            if i > 0 and line_text[i - 1] == ",":
                i -= 1
            span = (i, end)
        if any(s < span[1] and span[0] < e for s, e in claimed):
            span = (start, end)  # adjacent stale ids: fall back to bare span
        claimed.append(span)
        edits.append(Edit(comment.line, span[0], comment.line, span[1], ""))
    return Fix(edits=tuple(edits))


def lint_paths(
    paths: Sequence[Path],
    config: SimlintConfig,
    select: Optional[Sequence[str]] = None,
    display_root: Optional[Path] = None,
) -> List[Finding]:
    return run_lint(paths, config, select, display_root).findings


def lint_file(
    path: Path,
    config: SimlintConfig,
    select: Optional[Sequence[str]] = None,
    display_root: Optional[Path] = None,
) -> List[Finding]:
    """Run every applicable rule over one file (partial project view)."""
    return run_lint([path], config, select, display_root).findings


def default_paths() -> List[Path]:
    """With no arguments, lint the package tree that contains this file
    when run from a checkout, else the current directory."""
    here = Path.cwd()
    src = here / "src" / "repro"
    if src.is_dir():
        return [src]
    return [here]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "AST-based determinism and layering analyzer for the EONA "
            "simulator (see DESIGN.md §7)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--config", type=Path, metavar="PYPROJECT",
        help="explicit pyproject.toml with a [tool.simlint] table",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="apply available auto-fixes, then re-lint and report the rest",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="with --fix: write nothing, exit 1 if any fix would change a file",
    )
    parser.add_argument(
        "--baseline", type=Path, metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--against-baseline", type=Path, metavar="FILE",
        help="report only findings not covered by the committed baseline FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: Optional[IO[str]] = None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)

    known_rules = all_rule_ids()
    if args.list_rules:
        width = max(len(rule_id) for rule_id in known_rules)
        for rule_id, description in sorted(known_rules.items()):
            out.write(f"{rule_id.ljust(width)}  {description}\n")
        return 0

    if args.check and not args.fix:
        print("simlint: --check requires --fix", file=sys.stderr)
        return 2
    if args.baseline is not None and args.against_baseline is not None:
        print(
            "simlint: --baseline and --against-baseline are mutually "
            "exclusive",
            file=sys.stderr,
        )
        return 2

    try:
        if args.config is not None:
            config = SimlintConfig.from_pyproject(args.config)
        else:
            config = SimlintConfig.discover(Path.cwd())
    except (ConfigError, OSError) as exc:
        print(f"simlint: configuration error: {exc}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in select if rule_id not in known_rules]
        if unknown:
            print(
                f"simlint: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    paths = list(args.paths) or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"simlint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    root = Path.cwd()
    run = run_lint(paths, config, select, display_root=root)

    if args.fix:
        sources = {e.path: e.ctx.source for e in run.graph.entries()}
        abs_paths = {e.path: e.abs_path for e in run.graph.entries()}
        report = plan_fixes(run.findings, sources)
        if args.check:
            for path in report.changed_files:
                out.write(f"would fix: {path}\n")
            if report.changed_files:
                out.write(
                    f"simlint: --fix would modify "
                    f"{len(report.changed_files)} file(s)\n"
                )
                return 1
            out.write("simlint: no pending fixes\n")
            return 0
        written = write_fixes(report, abs_paths)
        for path in written:
            out.write(f"fixed: {path}\n")
        if written:
            run = run_lint(paths, config, select, display_root=root)

    findings = run.findings
    if args.baseline is not None:
        args.baseline.write_text(render_baseline(findings), encoding="utf-8")
        out.write(
            f"simlint: wrote baseline with {len(findings)} finding(s) to "
            f"{args.baseline}\n"
        )
        return 0
    if args.against_baseline is not None:
        try:
            baseline = load_baseline(args.against_baseline)
        except BaselineError as exc:
            print(f"simlint: {exc}", file=sys.stderr)
            return 2
        findings = delta(findings, baseline)

    if args.format == "json":
        render_json(findings, out)
    elif args.format == "sarif":
        render_sarif(findings, out)
    else:
        render_text(findings, out)
    return 1 if findings else 0
