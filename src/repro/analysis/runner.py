"""simlint driver: file discovery, layer inference, rule dispatch, CLI.

Used three ways:

* ``eona lint [paths]`` (wired in :mod:`repro.cli`),
* ``python -m repro.analysis [paths]``,
* programmatically via :func:`lint_paths` (the test suite does this).

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import IO, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.config import ConfigError, SimlintConfig
from repro.analysis.core import Finding, ModuleContext
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import RULES
from repro.analysis.suppressions import collect_suppressions, is_suppressed


def iter_python_files(paths: Sequence[Path], config: SimlintConfig) -> Iterator[Path]:
    """Yield .py files under ``paths``, skipping excluded directory names."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in config.exclude for part in candidate.parts):
                continue
            yield candidate


def module_info(path: Path) -> Tuple[Optional[str], Optional[str]]:
    """Infer (dotted module, layer) for a file under a ``repro`` tree.

    The package root is the *last* ``src/repro`` pair in the path, so
    fixture trees like ``tests/analysis/fixtures/src/repro/network/x.py``
    resolve exactly like the real tree.  Files outside any such root get
    ``(None, None)`` and skip layer-scoped rules.
    """
    parts = path.parts
    root_index = None
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            root_index = i + 1
    if root_index is None:
        return None, None
    rest = parts[root_index + 1:]
    if not rest:
        return None, None
    stem_parts = list(rest[:-1])
    filename = rest[-1]
    if filename == "__init__.py":
        module_parts = ["repro"] + stem_parts
    else:
        module_parts = ["repro"] + stem_parts + [filename[:-3]]
    module = ".".join(module_parts)
    layer = stem_parts[0] if stem_parts else filename[:-3]
    return module, layer


def lint_file(
    path: Path,
    config: SimlintConfig,
    select: Optional[Sequence[str]] = None,
    display_root: Optional[Path] = None,
) -> List[Finding]:
    """Run every applicable rule over one file."""
    source = path.read_text(encoding="utf-8")
    display = str(path)
    if display_root is not None:
        try:
            display = str(path.resolve().relative_to(display_root.resolve()))
        except ValueError:
            pass
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="syntax-error",
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    module, layer = module_info(path)
    ctx = ModuleContext(
        path=display,
        tree=tree,
        source=source,
        config=config,
        module=module,
        layer=layer,
    )
    suppressions = collect_suppressions(source)
    findings: List[Finding] = []
    for rule_id, rule in sorted(RULES.items()):
        if select is not None and rule_id not in select:
            continue
        if not config.scope_for(rule_id).applies(display, layer):
            continue
        for finding in rule.check(ctx):
            if not is_suppressed(suppressions, finding.line, finding.rule):
                findings.append(finding)
    findings.sort()
    return findings


def lint_paths(
    paths: Sequence[Path],
    config: SimlintConfig,
    select: Optional[Sequence[str]] = None,
    display_root: Optional[Path] = None,
) -> List[Finding]:
    findings: List[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(lint_file(path, config, select, display_root))
    findings.sort()
    return findings


def default_paths() -> List[Path]:
    """With no arguments, lint the package tree that contains this file
    when run from a checkout, else the current directory."""
    here = Path.cwd()
    src = here / "src" / "repro"
    if src.is_dir():
        return [src]
    return [here]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "AST-based determinism and layering analyzer for the EONA "
            "simulator (see DESIGN.md §7)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--config", type=Path, metavar="PYPROJECT",
        help="explicit pyproject.toml with a [tool.simlint] table",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None, stream: Optional[IO[str]] = None) -> int:
    out = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id, rule in sorted(RULES.items()):
            out.write(f"{rule_id.ljust(width)}  {rule.description}\n")
        return 0

    try:
        if args.config is not None:
            config = SimlintConfig.from_pyproject(args.config)
        else:
            config = SimlintConfig.discover(Path.cwd())
    except (ConfigError, OSError) as exc:
        print(f"simlint: configuration error: {exc}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        unknown = [rule_id for rule_id in select if rule_id not in RULES]
        if unknown:
            print(
                f"simlint: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    paths = list(args.paths) or default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"simlint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    findings = lint_paths(paths, config, select, display_root=Path.cwd())
    if args.format == "json":
        render_json(findings, out)
    else:
        render_text(findings, out)
    return 1 if findings else 0
