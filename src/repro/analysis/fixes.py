"""Applying simlint auto-fixes: ``eona lint --fix`` / ``--fix --check``.

A :class:`~repro.analysis.core.Fix` is a bundle of textual edits inside
one file.  This module groups the fixes carried by a finding list per
file, resolves them to absolute offsets, drops any fix that overlaps an
already-accepted one (first-come in finding order wins; the dropped
finding simply stays reported), and rewrites the files.

``--fix`` applies the edits and the runner re-lints from disk, so the
final report reflects the repaired tree.  ``--fix --check`` computes
the same edits but writes nothing: it reports the files that *would*
change, which is the CI idempotency gate (a committed tree must be a
fixed point of the fixer).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import Edit, Finding


@dataclasses.dataclass(frozen=True)
class FileFixResult:
    """Outcome of fixing one file."""

    path: str
    fixed_findings: int
    skipped_findings: int  # fixes dropped because they overlapped
    changed: bool
    new_source: str


@dataclasses.dataclass(frozen=True)
class FixReport:
    """Outcome of a whole ``--fix`` pass."""

    files: Tuple[FileFixResult, ...]

    @property
    def changed_files(self) -> List[str]:
        return [f.path for f in self.files if f.changed]

    @property
    def fixed_count(self) -> int:
        return sum(f.fixed_findings for f in self.files)


def _line_offsets(source: str) -> List[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _to_span(edit: Edit, offsets: List[int]) -> Optional[Tuple[int, int, str]]:
    """(start, end, text) absolute span, or ``None`` if out of range."""
    last_line = len(offsets) - 1
    if not (1 <= edit.line <= last_line) or not (1 <= edit.end_line <= last_line + 1):
        return None
    start = offsets[edit.line - 1] + edit.col
    if edit.end_line > last_line:
        end = offsets[-1]
    else:
        end = offsets[edit.end_line - 1] + edit.end_col
    if start > end or end > offsets[-1]:
        return None
    return start, end, edit.text


def fix_file(source: str, findings: Sequence[Finding]) -> Tuple[str, int, int]:
    """Apply every non-overlapping fix to ``source``.

    Returns ``(new_source, fixed, skipped)``.  Findings are processed in
    their sorted (report) order; a fix whose edits overlap an accepted
    one is skipped whole, so the result never interleaves half-applied
    repairs.
    """
    offsets = _line_offsets(source)
    accepted: List[Tuple[int, int, str]] = []
    fixed = skipped = 0
    for finding in sorted(findings):
        if finding.fix is None:
            continue
        spans = [_to_span(edit, offsets) for edit in finding.fix.edits]
        if any(span is None for span in spans):
            skipped += 1
            continue
        resolved = sorted(s for s in spans if s is not None)
        if _overlaps(resolved, accepted):
            skipped += 1
            continue
        accepted.extend(resolved)
        fixed += 1
    if not accepted:
        return source, 0, skipped
    accepted.sort(reverse=True)
    out = source
    for start, end, text in accepted:
        out = out[:start] + text + out[end:]
    return out, fixed, skipped


def _overlaps(
    candidate: Sequence[Tuple[int, int, str]],
    accepted: Sequence[Tuple[int, int, str]],
) -> bool:
    for start, end, _ in candidate:
        for other_start, other_end, _ in accepted:
            # Two pure insertions at the same point do conflict (order
            # would be ambiguous); otherwise touching endpoints are fine.
            if start == end and other_start == other_end:
                if start == other_start:
                    return True
                continue
            if start < other_end and other_start < end:
                return True
            if start == end and other_start < start < other_end:
                return True
            if other_start == other_end and start < other_start < end:
                return True
    return False


def plan_fixes(
    findings: Sequence[Finding],
    sources: Dict[str, str],
) -> FixReport:
    """Compute (without writing) the result of fixing each file."""
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding)
    results: List[FileFixResult] = []
    for path in sorted(by_path):
        source = sources.get(path)
        if source is None:
            continue
        new_source, fixed, skipped = fix_file(source, by_path[path])
        results.append(
            FileFixResult(
                path=path,
                fixed_findings=fixed,
                skipped_findings=skipped,
                changed=new_source != source,
                new_source=new_source,
            )
        )
    return FixReport(files=tuple(results))


def write_fixes(report: FixReport, abs_paths: Dict[str, Path]) -> List[str]:
    """Write changed files back to disk; returns the paths written."""
    written: List[str] = []
    for result in report.files:
        if not result.changed:
            continue
        target = abs_paths.get(result.path)
        if target is None:
            continue
        target.write_text(result.new_source, encoding="utf-8")
        written.append(result.path)
    return written
