"""Whole-program view of a repro source tree: the simlint project graph.

Per-file AST rules cannot see the invariants the reproduction now leans
on -- twin functions kept in lockstep across packages, RNG streams owned
by exactly one layer, beacon schemas agreeing between producer and
aggregator.  :func:`build_project` parses every module once and exposes:

* ``modules`` -- dotted module name -> :class:`ModuleEntry` (AST, layer,
  per-module import alias map, top-level symbol table, suppressions),
* ``failures`` -- files that did not parse (each becomes a
  ``parse-error`` diagnostic instead of aborting the run),
* :meth:`ProjectGraph.resolve` -- dotted-path lookup down to functions,
  classes, and methods (``repro.video.ladder.BitrateLadder.highest_at_most``),
* :meth:`ProjectGraph.resolve_call_target` -- best-effort resolution of
  a call/attribute expression to a dotted target through the alias map,
  forming the lightweight call/assignment graph project rules query.

Resolution is purely syntactic (no imports are executed): it follows
``import``/``from`` aliases and module-level definitions only, which is
exactly the precision the cross-module rules need.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.config import SimlintConfig
from repro.analysis.core import ModuleContext, dotted_name
from repro.analysis.suppressions import collect_suppressions


@dataclasses.dataclass(frozen=True)
class ParseFailure:
    """A file the analyzer could not parse; the run degrades gracefully."""

    path: str
    line: int
    col: int
    message: str


@dataclasses.dataclass
class ModuleEntry:
    """One parsed module plus the lookup tables project rules need."""

    ctx: ModuleContext
    abs_path: Path
    suppressions: Dict[int, FrozenSet[str]]
    imports: Dict[str, str]
    symbols: Dict[str, ast.AST]

    @property
    def path(self) -> str:
        return self.ctx.path

    @property
    def module(self) -> Optional[str]:
        return self.ctx.module

    @property
    def layer(self) -> Optional[str]:
        return self.ctx.layer


class ProjectGraph:
    """All modules of one (or more) repro trees, indexed for cross-module rules."""

    def __init__(self, config: SimlintConfig) -> None:
        self.config = config
        self.modules: Dict[str, ModuleEntry] = {}
        self.others: List[ModuleEntry] = []
        self.failures: List[ParseFailure] = []
        self._by_path: Dict[str, ModuleEntry] = {}

    def add(self, entry: ModuleEntry) -> None:
        if entry.module is not None:
            self.modules[entry.module] = entry
        else:
            self.others.append(entry)
        self._by_path[entry.path] = entry

    def entries(self) -> Iterator[ModuleEntry]:
        """Every parsed module, in stable path order."""
        yield from sorted(
            list(self.modules.values()) + self.others, key=lambda e: e.path
        )

    def entry_for_path(self, path: str) -> Optional[ModuleEntry]:
        return self._by_path.get(path)

    def module_prefix_of(self, dotted: str) -> Optional[ModuleEntry]:
        """Longest module prefix of ``dotted`` present in the graph."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            entry = self.modules.get(".".join(parts[:cut]))
            if entry is not None:
                return entry
        return None

    def resolve(self, dotted: str) -> Optional[Tuple[ModuleEntry, ast.AST]]:
        """Resolve a dotted path to its defining node.

        Supports module-level functions, classes, assignments, and one
        level of class members (``pkg.mod.Class.method``).  Returns
        ``None`` when the module is absent from the graph or the symbol
        chain does not resolve.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            entry = self.modules.get(".".join(parts[:cut]))
            if entry is None:
                continue
            rest = parts[cut:]
            node = entry.symbols.get(rest[0])
            if node is None:
                return None
            for attr in rest[1:]:
                if not isinstance(node, ast.ClassDef):
                    return None
                node = _class_member(node, attr)
                if node is None:
                    return None
            return entry, node
        return None

    def resolve_call_target(
        self, entry: ModuleEntry, func: ast.expr
    ) -> Optional[str]:
        """Dotted target a call expression refers to, through the alias map.

        ``GroupByAggregator(...)`` with a ``from repro.telemetry.aggregate
        import GroupByAggregator`` resolves to the full dotted path;
        ``agg.GroupByAggregator(...)`` resolves through a module alias; a
        bare builtin resolves to its own name.  ``None`` when the head of
        the chain is not a resolvable name (``self.factory()``, ...).
        """
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in entry.imports:
            resolved = entry.imports[head]
        elif head in entry.symbols and entry.module is not None:
            resolved = f"{entry.module}.{head}"
        else:
            resolved = head
        return f"{resolved}.{rest}" if rest else resolved


def _class_member(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == name:
                return stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt
    return None


def resolve_import_base(
    module: Optional[str], is_pkg_init: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Dotted package an ``ImportFrom`` targets (relative imports resolved)."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    parts = module.split(".")
    if not is_pkg_init:
        parts = parts[:-1]
    drop = node.level - 1
    if drop:
        parts = parts[: len(parts) - drop]
    if not parts:
        return None
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts)


def _import_map(ctx: ModuleContext) -> Dict[str, str]:
    """Local name -> dotted target, for every import in the module."""
    imports: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(ctx.module, ctx.is_package_init, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{base}.{alias.name}"
    return imports


def _symbol_table(tree: ast.Module) -> Dict[str, ast.AST]:
    """Top-level name -> defining node (defs, classes, assignments)."""
    symbols: Dict[str, ast.AST] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            symbols[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols[target.id] = stmt
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            symbols[stmt.target.id] = stmt
    return symbols


def display_path(path: Path, display_root: Optional[Path]) -> str:
    display = str(path)
    if display_root is not None:
        try:
            display = str(path.resolve().relative_to(display_root.resolve()))
        except ValueError:
            pass
    return display


def build_project(
    files: Sequence[Path],
    config: SimlintConfig,
    display_root: Optional[Path] = None,
) -> ProjectGraph:
    """Parse every file once and assemble the project graph.

    Unparseable files become :class:`ParseFailure` entries (reported as
    ``parse-error`` findings by the runner) -- one broken module never
    aborts the whole run.
    """
    from repro.analysis.runner import module_info  # runner owns path layout

    graph = ProjectGraph(config)
    for path in files:
        display = display_path(path, display_root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            graph.failures.append(
                ParseFailure(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        except (OSError, UnicodeDecodeError) as exc:
            graph.failures.append(
                ParseFailure(path=display, line=1, col=0, message=str(exc))
            )
            continue
        module, layer = module_info(path)
        ctx = ModuleContext(
            path=display,
            tree=tree,
            source=source,
            config=config,
            module=module,
            layer=layer,
        )
        graph.add(
            ModuleEntry(
                ctx=ctx,
                abs_path=path,
                suppressions=collect_suppressions(source),
                imports=_import_map(ctx),
                symbols=_symbol_table(tree),
            )
        )
    return graph
