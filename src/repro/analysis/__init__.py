"""simlint: AST-based determinism and layering analyzer for the EONA simulator.

The simulator's credibility rests on bit-identical replays: every E1-E14
run must reproduce exactly across machines and seeds.  A single stray
``random.random()``, wall-clock read, or iteration over an unordered set
silently destroys that property without failing any functional test.
``simlint`` turns those conventions into machine-checked invariants:

* an AST visitor core with a rule registry (:mod:`repro.analysis.rules`),
* a layer DAG declared in ``pyproject.toml`` (``[tool.simlint.layers]``),
* per-line suppression via ``# simlint: ignore[rule-id]`` comments,
* text and JSON reporters with stable ``file:line:col rule message``
  output suitable for CI gating.

Run it as ``eona lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.core import Finding, ModuleContext, Rule
from repro.analysis.config import SimlintConfig
from repro.analysis.runner import lint_file, lint_paths, main
from repro.analysis.rules import RULES

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RULES",
    "SimlintConfig",
    "lint_file",
    "lint_paths",
    "main",
]
