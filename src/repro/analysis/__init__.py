"""simlint: determinism and layering analyzer for the EONA simulator.

The simulator's credibility rests on bit-identical replays: every E1-E14
run must reproduce exactly across machines and seeds.  A single stray
``random.random()``, wall-clock read, or iteration over an unordered set
silently destroys that property without failing any functional test.
``simlint`` turns those conventions into machine-checked invariants:

* an AST visitor core with a rule registry (:mod:`repro.analysis.rules`)
  for per-file rules,
* a whole-program project graph (:mod:`repro.analysis.project`) backing
  cross-module rules -- RNG stream ownership, scalar/vectorized twin
  drift, beacon schema sync, process-global state,
* a layer DAG declared in ``pyproject.toml`` (``[tool.simlint.layers]``),
* per-line suppression via ``# simlint: ignore[rule-id]`` comments, plus
  a ``stale-suppression`` meta-diagnostic (and auto-fix) when those
  comments outlive the finding they silenced,
* auto-fixes for mechanically repairable findings (``--fix``, with
  ``--fix --check`` as the CI idempotency gate),
* text, JSON, and SARIF 2.1.0 reporters with stable output suitable for
  CI gating, and a committed-baseline workflow (``--baseline`` /
  ``--against-baseline``) to ratchet new rules in without a flag day.

Run it as ``eona lint`` or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.core import Edit, Finding, Fix, ModuleContext, ProjectRule, Rule
from repro.analysis.config import SimlintConfig
from repro.analysis.project import ProjectGraph, build_project
from repro.analysis.runner import lint_file, lint_paths, main, run_lint
from repro.analysis.rules import PROJECT_RULES, RULES

__all__ = [
    "Edit",
    "Finding",
    "Fix",
    "ModuleContext",
    "PROJECT_RULES",
    "ProjectGraph",
    "ProjectRule",
    "RULES",
    "Rule",
    "SimlintConfig",
    "build_project",
    "lint_file",
    "lint_paths",
    "main",
    "run_lint",
]
