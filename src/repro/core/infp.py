"""Infrastructure-provider control logic: status quo vs. EONA-enhanced.

* :class:`StatusQuoInfP` wires the SDN substrate together with the
  greedy reactive TE policy -- the ISP that only sees its own link
  counters and flees congestion after the fact (one half of the
  Figure 5 oscillator).
* :class:`EonaInfP` replaces the TE policy with demand-aware placement
  driven by A2I demand estimates, and exports the I2A looking glass
  (congestion attribution, peering points, peering decisions) that the
  EONA AppP consumes.
* :class:`EnergyManager` is the §2 "configuration changes" scenario:
  powering edge clusters down off-peak, either blindly by schedule or
  closed-loop on A2I QoE feedback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cdn.provider import Cdn
from repro.core.context import SimContext, resolve_sim_network
from repro.core.interfaces import LookingGlass, QueryResult
from repro.core.registry import AccessDeniedError, OptInRegistry
from repro.obs.trace import TRACER
from repro.core.schemas import CongestionSignal, PeeringDecision, PeeringPointInfo
from repro.network.fluidsim import FluidNetwork
from repro.sdn.controller import SdnController
from repro.sdn.stats import StatsService
from repro.sdn.te import EgressGroup, TrafficEngineeringApp, greedy_reactive_policy
from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess


class StatusQuoInfP:
    """Today's ISP: SDN knobs, network-level eyes only.

    Args:
        sim: Simulator, or a :class:`SimContext` (in which case
            ``network`` may be omitted and defaults to the context's).
        network: Fluid network.
        groups: Steerable traffic groups (one per CDN, typically).
        owner: Node owner string identifying the ISP's domain.
        stats_period_s: Link-stats polling period.
        te_period_s: TE control period (tens of minutes in practice;
            scaled down for simulation).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Optional[FluidNetwork] = None,
        groups: Optional[List[EgressGroup]] = None,
        owner: str = "isp",
        stats_period_s: float = 5.0,
        te_period_s: float = 60.0,
        congestion_threshold: float = 0.9,
    ):
        sim, network = resolve_sim_network(sim, network)
        self.sim = sim
        self.network = network
        groups = groups if groups is not None else []
        self.name = owner
        self.controller = SdnController(network, owner=owner)
        self.stats = StatsService(
            sim,
            self.controller,
            period=stats_period_s,
            congestion_threshold=congestion_threshold,
        )
        self.te = TrafficEngineeringApp(
            sim,
            network,
            self.controller,
            self.stats,
            groups,
            period=te_period_s,
            policy=self._policy(),
            congestion_threshold=congestion_threshold,
        )

    def _policy(self):
        return greedy_reactive_policy

    def stop(self) -> None:
        self.stats.stop()
        self.te.stop()

    def reset_soft_state(self) -> None:
        """Wipe soft state, as a provider restart would (fault seam).

        Collected link statistics and congestion-detector smoothing are
        lost; programmed network state (via/split policies) survives,
        as installed dataplane rules do across a controller restart.
        """
        self.stats.reset()


class EonaInfP(StatusQuoInfP):
    """EONA-enhanced ISP: demand-aware TE plus the I2A export.

    Args:
        appp_a2i: The AppP's A2I looking glass (queried for demand and
            QoE), or a list of glasses when the ISP serves several
            AppPs (their demand estimates are summed per CDN);
            ``None`` degrades the TE policy to measured loads.
        registry: Opt-in registry the I2A glass enforces; defaults to
            the context's registry when constructed from a
            :class:`SimContext`.
        access_links: Link ids making up the access segment (for the
            Figure 3 congestion-attribution signal).
        i2a_refresh_s: Snapshot period of I2A answers (staleness knob).
        use_splits: Allow the TE plan to split a group across several
            peering points when no single one fits its demand (§4's
            "traffic splits across the peering points" knob).
        fallback_enabled: Degrade to measured-load TE when the A2I
            glasses fail repeatedly; re-engage damped on recovery.
        glass_error_threshold: Consecutive all-glasses-failed TE rounds
            before fallback engages.
        reengage_ticks: Consecutive successful probes before recovered
            glasses are trusted again.
        stale_tolerance_s: Demand estimates older than this count as
            failures (``inf`` trusts any age).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Optional[FluidNetwork] = None,
        groups: Optional[List[EgressGroup]] = None,
        registry: Optional[OptInRegistry] = None,
        appp_a2i: Optional[LookingGlass] = None,
        access_links: Optional[List[str]] = None,
        i2a_refresh_s: float = 10.0,
        use_splits: bool = False,
        fallback_enabled: bool = True,
        glass_error_threshold: int = 2,
        reengage_ticks: int = 2,
        stale_tolerance_s: float = math.inf,
        **kwargs,
    ):
        if registry is None:
            if not isinstance(sim, SimContext):
                raise ValueError("EonaInfP needs a registry (or a SimContext)")
            registry = sim.registry
        self.use_splits = use_splits
        self.registry = registry
        if appp_a2i is None:
            self.appp_a2i_list: List[LookingGlass] = []
        elif isinstance(appp_a2i, list):
            self.appp_a2i_list = list(appp_a2i)
        else:
            self.appp_a2i_list = [appp_a2i]
        self.appp_a2i = self.appp_a2i_list[0] if self.appp_a2i_list else None
        self.access_links = access_links or []
        self._plan_time = -1.0
        self._plan: Dict[str, str] = {}
        # Graceful degradation mirror of EonaAppP: rounds where every
        # A2I glass fails trip a fallback to measured-load TE (the
        # status-quo information base), re-engaged damped on recovery.
        self.fallback_enabled = fallback_enabled
        self.glass_error_threshold = glass_error_threshold
        self.reengage_ticks = reengage_ticks
        self.stale_tolerance_s = stale_tolerance_s
        self.glass_errors = 0
        self.fallback_activations = 0
        self.fallback_reengagements = 0
        self.fallback_active = False
        self._glass_fail_streak = 0
        self._glass_ok_streak = 0
        # Cause ID of the last successfully served A2I demand query;
        # the TE rounds it informs stamp it onto the controller so the
        # resulting ``infp-reroute`` events carry it as ``parent``.
        self._last_demand_cause: Optional[int] = None
        super().__init__(sim, network, groups, **kwargs)
        self.i2a = self._make_i2a(i2a_refresh_s)

    def _policy(self):
        return self._demand_aware_policy

    # ------------------------------------------------------------------
    # demand-aware TE
    # ------------------------------------------------------------------
    def _demand_aware_policy(
        self, app: TrafficEngineeringApp, group: EgressGroup
    ) -> str:
        """Place all groups against peering capacities, then answer.

        The full placement is computed once per control round (cached on
        the simulation clock) so per-group answers are consistent.
        Groups are placed largest-demand first onto the candidate with
        the most remaining capacity, keeping the current selection
        whenever it still fits -- stability by construction.
        """
        if self._plan_time != self.sim.now:
            self._plan = self._compute_plan(app)
            self._plan_time = self.sim.now
            if TRACER.enabled:
                # Reroutes installed from this plan descend from the A2I
                # demand answer that shaped it (None under fallback or
                # when no A2I glass is coupled -- exactly the status-quo
                # information base, so no parent is honest).
                self.controller.pending_parent = self._last_demand_cause
        return self._plan.get(group.name, group.selection or group.candidates[0])

    def _compute_plan(self, app: TrafficEngineeringApp) -> Dict[str, str]:
        demands = self._demand_estimates(app)
        remaining: Dict[str, float] = {}
        for group in app.groups.values():
            for candidate in group.candidates:
                link_id = group.egress_links[candidate]
                remaining.setdefault(
                    link_id, self.network.topology.link(link_id).capacity_mbps
                )
        plan: Dict[str, str] = {}
        ordered = sorted(
            app.groups.values(), key=lambda g: demands.get(g.name, 0.0), reverse=True
        )
        for group in ordered:
            demand = demands.get(group.name, 0.0)
            choice = None
            # Preference order: the economically preferred peering if the
            # demand fits, else the current selection (stability), else
            # the candidate with the most headroom.
            for favourite in (group.preferred, group.selection):
                if (
                    favourite in group.candidates
                    and remaining[group.egress_links[favourite]] >= demand * 1.1
                ):
                    choice = favourite
                    break
            if choice is None:
                best = max(
                    group.candidates,
                    key=lambda candidate: remaining[group.egress_links[candidate]],
                )
                best_headroom = remaining[group.egress_links[best]]
                if (
                    self.use_splits
                    and len(group.candidates) > 1
                    and best_headroom < demand * 1.1
                ):
                    # No single peering fits: split proportionally to
                    # the remaining headroom of each candidate.
                    weights = {
                        candidate: max(0.0, remaining[group.egress_links[candidate]])
                        for candidate in group.candidates
                    }
                    if sum(weights.values()) > 0:
                        plan[group.name] = weights
                        for candidate, weight in weights.items():
                            share = weight / sum(weights.values())
                            remaining[group.egress_links[candidate]] -= (
                                demand * share
                            )
                        continue
                choice = best
            plan[group.name] = choice
            remaining[group.egress_links[choice]] -= demand
        return plan

    def _demand_estimates(self, app: TrafficEngineeringApp) -> Dict[str, float]:
        if self.appp_a2i_list:
            if self.fallback_active:
                # One probe per TE round; re-engagement needs
                # ``reengage_ticks`` consecutive good probes.
                self._probe_a2i()
            if not self.fallback_active:
                combined: Dict[str, float] = {}
                got_any = False
                errors_before = self.glass_errors
                for glass in self.appp_a2i_list:
                    result = self._query_demand(glass)
                    if result is None:
                        continue
                    payload = result.payload
                    if isinstance(payload, dict) and "demand_mbps" in payload:
                        got_any = True
                        for cdn, demand in payload["demand_mbps"].items():
                            combined[cdn] = combined.get(cdn, 0.0) + demand
                if got_any:
                    self._glass_fail_streak = 0
                    return combined
                if self.glass_errors > errors_before:
                    self._note_round_failed()
        # Fallback: measure current egress loads (network-level only).
        measured: Dict[str, float] = {}
        for group in app.groups.values():
            selected = group.selection or group.candidates[0]
            measured[group.name] = self.stats.utilization(
                group.egress_links[selected]
            ) * self.network.topology.link(group.egress_links[selected]).capacity_mbps
        return measured

    def _query_demand(self, glass: LookingGlass) -> Optional[QueryResult]:
        """Query one A2I glass, counting faults and over-stale answers.

        Access denials are configuration, not faults; they return
        ``None`` without touching ``glass_errors``.
        """
        try:
            result = glass.query(self.name, "demand_estimate")
        except AccessDeniedError:
            return None
        except Exception:
            self.glass_errors += 1
            return None
        if result.age_s > self.stale_tolerance_s:
            self.glass_errors += 1
            return None
        if result.cause is not None:
            self._last_demand_cause = result.cause
        return result

    def _note_round_failed(self) -> None:
        self._glass_ok_streak = 0
        self._glass_fail_streak += 1
        if (
            self.fallback_enabled
            and not self.fallback_active
            and self._glass_fail_streak >= self.glass_error_threshold
        ):
            self.fallback_active = True
            self.fallback_activations += 1
            self._plan = {}
            self._plan_time = -1.0
            if TRACER.enabled:
                TRACER.emit(
                    "fallback-engage", policy=self.name, errors=self.glass_errors
                )

    def _probe_a2i(self) -> None:
        """One damped re-engagement probe while in fallback."""
        result = self._query_demand(self.appp_a2i_list[0])
        if result is None:
            self._glass_ok_streak = 0
            return
        self._glass_ok_streak += 1
        if self._glass_ok_streak >= self.reengage_ticks:
            self.fallback_active = False
            self._glass_ok_streak = 0
            self._glass_fail_streak = 0
            self.fallback_reengagements += 1
            if TRACER.enabled:
                TRACER.emit("fallback-reengage", policy=self.name)

    def reset_soft_state(self) -> None:
        super().reset_soft_state()
        self._plan = {}
        self._plan_time = -1.0
        self._glass_fail_streak = 0
        self._glass_ok_streak = 0

    # ------------------------------------------------------------------
    # I2A export
    # ------------------------------------------------------------------
    def _make_i2a(self, refresh_period_s: float) -> LookingGlass:
        glass = LookingGlass(
            self.sim, owner=self.name, registry=self.registry, kind="i2a"
        )
        glass.register(
            "congestion", self.congestion_signals, refresh_period_s=refresh_period_s
        )
        glass.register(
            "peering_points", self.peering_points, refresh_period_s=refresh_period_s
        )
        glass.register(
            "peering_decisions",
            self.peering_decisions,
            refresh_period_s=refresh_period_s,
        )
        # In fully coupled worlds the I2A answers reflect a control loop
        # informed by A2I demand; the glass stamps that demand query's
        # cause as the hint's parent (None when no A2I is consumed).
        glass.provenance = lambda: self._last_demand_cause
        return glass

    def congestion_signals(self) -> List[CongestionSignal]:
        """Per-segment congestion attribution (the Figure 3 signal)."""
        signals = []
        for scope, link_ids in self._segments().items():
            worst_link = ""
            worst = 0.0
            for link_id in link_ids:
                smoothed = self.stats.smoothed_utilization(link_id)
                if smoothed >= worst:
                    worst = smoothed
                    worst_link = link_id
            congested = any(self.stats.is_congested(link_id) for link_id in link_ids)
            signals.append(
                CongestionSignal(
                    time=self.sim.now,
                    scope=scope,
                    congested=congested,
                    severity=worst,
                    bottleneck_link=worst_link,
                )
            )
        return signals

    def peering_points(self) -> List[PeeringPointInfo]:
        points = []
        for group in self.te.groups.values():
            for candidate in group.candidates:
                link_id = group.egress_links[candidate]
                link = self.network.topology.link(link_id)
                points.append(
                    PeeringPointInfo(
                        peering_node=candidate,
                        cdn=group.name,
                        capacity_mbps=link.capacity_mbps,
                        load_mbps=self.network.link_load_mbps(link_id),
                        congested=self.stats.is_congested(link_id),
                    )
                )
        return points

    def peering_decisions(self) -> List[PeeringDecision]:
        return [
            PeeringDecision(
                time=self.sim.now,
                cdn=group.name,
                selected_peering=group.selection or "",
            )
            for group in self.te.groups.values()
        ]

    def _segments(self) -> Dict[str, List[str]]:
        """Partition InfP links into access / peering / core segments."""
        segments: Dict[str, List[str]] = {"access": [], "peering": [], "core": []}
        access_set = set(self.access_links)
        for link in self.network.topology.links():
            if link.link_id in access_set or "access" in link.tags:
                segments["access"].append(link.link_id)
            elif "peering" in link.tags:
                segments["peering"].append(link.link_id)
            else:
                segments["core"].append(link.link_id)
        return segments


# ----------------------------------------------------------------------
# CDN-side I2A (a CDN is an InfP too -- paper §1)
# ----------------------------------------------------------------------
def make_cdn_i2a(
    sim: Simulator,
    cdn: Cdn,
    registry: OptInRegistry,
    refresh_period_s: float = 5.0,
) -> LookingGlass:
    """Build a CDN's I2A looking glass exporting server hints and load."""
    glass = LookingGlass(sim, owner=cdn.name, registry=registry, kind="i2a")

    def server_hints() -> List[dict]:
        return [
            {
                "cdn": cdn.name,
                "server_id": hint.server_id,
                "node_id": hint.node_id,
                "load": hint.load,
                "degraded": hint.degraded,
            }
            for hint in cdn.server_hints()
        ]

    glass.register("server_hints", server_hints, refresh_period_s=refresh_period_s)
    glass.register("mean_load", lambda: {"mean_load": cdn.mean_load})
    return glass


# ----------------------------------------------------------------------
# Energy management (§2 "impacts of configuration changes")
# ----------------------------------------------------------------------
@dataclass
class EnergyLogEntry:
    time: float
    servers_on: int
    action: str


class EnergyManager:
    """Powers a CDN's edge clusters up/down off-peak.

    Three policies, compared in experiment E5:

    * ``"conservative"`` -- never powers anything off (wastes energy);
    * ``"schedule"`` -- blindly follows a demand forecast, powering off
      a fixed fraction off-peak (risks QoE when the forecast is wrong);
    * ``"eona"`` -- closed loop on A2I QoE: shed capacity while QoE is
      healthy, restore it as soon as QoE degrades.

    Args:
        sim: Simulator.
        cdn: The CDN whose servers are managed.
        period_s: Decision period.
        policy: One of the three policy names.
        schedule: For ``"schedule"``: maps sim-time to the target
            fraction of servers on.
        qoe_fetch: For ``"eona"``: returns the current fleet buffering
            ratio (from the A2I looking glass), or None when unknown.
        qoe_threshold: Buffering ratio above which QoE counts degraded.
        demand_fetch: For ``"eona"``: returns the AppP's current demand
            estimate toward this CDN in Mbit/s (A2I), or None.
        server_capacity_mbps: Serving capacity of one cluster; together
            with ``demand_fetch`` this gives the feed-forward sizing
            (A2I demand), with ``qoe_fetch`` as the feedback guardrail.
        headroom: Capacity margin kept above the demand estimate.
        min_on: Never power below this many servers.
    """

    POLICIES = ("conservative", "schedule", "eona")

    def __init__(
        self,
        sim: Simulator,
        cdn: Cdn,
        period_s: float = 30.0,
        policy: str = "eona",
        schedule: Optional[Callable[[float], float]] = None,
        qoe_fetch: Optional[Callable[[], Optional[float]]] = None,
        qoe_threshold: float = 0.02,
        demand_fetch: Optional[Callable[[], Optional[float]]] = None,
        server_capacity_mbps: Optional[float] = None,
        headroom: float = 1.3,
        min_on: int = 1,
    ):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        if policy == "schedule" and schedule is None:
            raise ValueError("schedule policy needs a schedule function")
        self.sim = sim
        self.cdn = cdn
        self.policy = policy
        self.schedule = schedule
        self.qoe_fetch = qoe_fetch
        self.qoe_threshold = qoe_threshold
        self.demand_fetch = demand_fetch
        self.server_capacity_mbps = server_capacity_mbps
        self.headroom = headroom
        self.min_on = min_on
        self.log: List[EnergyLogEntry] = []
        self.server_seconds_on = 0.0
        self._last_account = sim.now
        self._process = PeriodicProcess(sim, period_s, self.step, name="energy")

    def stop(self) -> None:
        self._account()
        self._process.stop()

    @property
    def servers_on(self) -> int:
        return sum(1 for s in self.cdn.servers.values() if s.powered_on)

    def step(self) -> None:
        self._account()
        if self.policy == "conservative":
            target = len(self.cdn.servers)
        elif self.policy == "schedule":
            fraction = self.schedule(self.sim.now)
            target = max(self.min_on, round(len(self.cdn.servers) * fraction))
        else:
            target = self._eona_target()
        self._drive_to(target)

    def _eona_target(self) -> int:
        on = self.servers_on
        qoe = self.qoe_fetch() if self.qoe_fetch is not None else None
        if qoe is not None and qoe > self.qoe_threshold:
            # Feedback guardrail: QoE degraded, restore capacity now.
            return min(len(self.cdn.servers), on + 1)
        demand = self.demand_fetch() if self.demand_fetch is not None else None
        if demand is not None and self.server_capacity_mbps:
            # Feed-forward sizing from the A2I demand estimate.
            needed = max(
                self.min_on,
                math.ceil(demand * self.headroom / self.server_capacity_mbps),
            )
            if needed < on:
                return on - 1  # shed gradually, one cluster per period
            return min(len(self.cdn.servers), needed)
        # QoE healthy, no demand signal: shed on clear session headroom.
        if self.cdn.mean_load < 0.5 and on > self.min_on:
            return on - 1
        return on

    def _drive_to(self, target: int) -> None:
        target = max(self.min_on, min(len(self.cdn.servers), target))
        on_servers = [s for s in self.cdn.servers.values() if s.powered_on]
        off_servers = [s for s in self.cdn.servers.values() if not s.powered_on]
        while len(on_servers) > target:
            # Power off the least-loaded server; its sessions re-home.
            victim = min(on_servers, key=lambda s: s.active_sessions)
            self.cdn.power_off_server(victim.server_id)
            on_servers.remove(victim)
            self.log.append(
                EnergyLogEntry(self.sim.now, len(on_servers), f"off:{victim.server_id}")
            )
        while len(on_servers) < target and off_servers:
            revived = off_servers.pop()
            revived.power_on()
            on_servers.append(revived)
            self.log.append(
                EnergyLogEntry(self.sim.now, len(on_servers), f"on:{revived.server_id}")
            )

    def _account(self) -> None:
        elapsed = self.sim.now - self._last_account
        if elapsed > 0:
            self.server_seconds_on += elapsed * self.servers_on
            self._last_account = self.sim.now
