"""Application-provider control logic: status quo vs. EONA-enhanced.

Both controllers implement the player-policy interface, so the *player
mechanics are identical* across worlds -- only the control logic
differs, as the paper prescribes:

* :class:`StatusQuoAppP` is today's blackbox trial-and-error loop: it
  observes only its own client-side measurements and, when a session
  looks bad, pulls the one coarse knob it has -- switch the whole CDN.
* :class:`EonaAppP` consults EONA-I2A before reacting.  If the ISP
  attributes the bottleneck to its access network, the right move is a
  bitrate down-shift, not a CDN switch (Figure 3).  If the CDN's hints
  identify a degraded server with healthy alternatives, the right move
  is an intra-CDN server switch (the "coarse control" scenario).  Only
  when neither applies does it switch CDNs -- through a hysteresis gate,
  and never when the ISP's published peering decision shows the problem
  is already being fixed (Figure 5).

The base class also owns the AppP's telemetry plane (collector →
aggregator → store) and exports the A2I looking glass from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cdn.provider import Cdn
from repro.core.context import SimContext
from repro.core.damping import HysteresisGate
from repro.core.interfaces import LookingGlass, QueryResult
from repro.core.registry import AccessDeniedError, OptInRegistry
from repro.core.schemas import DemandEstimate, QoeAggregate
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator
from repro.telemetry.aggregate import GroupByAggregator
from repro.telemetry.collector import Collector
from repro.telemetry.records import record_from_qoe
from repro.telemetry.streamdb import TimeSeriesStore
from repro.video.player import AdaptivePlayer, ChunkRecord, PlayerPolicy, SessionAssignment


@dataclass
class _SessionState:
    """Per-session control state held by the AppP."""

    consecutive_bad: int = 0
    rate_cap_mbps: float = math.inf
    last_rebuffer_s: float = 0.0
    #: Cause ID of the last traced control action on this session; the
    #: next good chunk emits ``qoe-recovery`` pointing back at it
    #: (DESIGN.md §13).  Only ever set while tracing is enabled and
    #: never read by control logic, so untraced behavior is identical.
    pending_recovery_cause: Optional[int] = None


class AppPController(PlayerPolicy):
    """Shared AppP machinery: assignment, QoE watching, telemetry, A2I.

    Args:
        sim: Simulator, or a :class:`SimContext` (in which case ``cdns``
            may be omitted and defaults to the context's registered CDNs).
        cdns: CDNs in preference order (first is the default).
        name: Provider name (used in grants and telemetry attrs).
        isp: The access ISP attribute stamped on beacons.
        bad_chunk_threshold: Consecutive bad chunks before reacting.
        aggregation_window_s: Telemetry window feeding A2I aggregates.
    """

    def __init__(
        self,
        sim: Simulator,
        cdns: Optional[List[Cdn]] = None,
        name: str = "appp",
        isp: str = "isp",
        bad_chunk_threshold: int = 3,
        aggregation_window_s: float = 10.0,
    ):
        if isinstance(sim, SimContext):
            if cdns is None:
                cdns = list(sim.cdns)
            sim = sim.sim
        if not cdns:
            raise ValueError("AppP needs at least one CDN")
        self.sim = sim
        self.cdns = list(cdns)
        self.cdn_by_name = {cdn.name: cdn for cdn in cdns}
        self.name = name
        self.isp = isp
        self.bad_chunk_threshold = bad_chunk_threshold
        self._sessions: Dict[str, _SessionState] = {}
        self._active_players: Dict[str, AdaptivePlayer] = {}
        self.finished_qoe: List = []
        self.cohort_sessions_reported = 0.0

        # Telemetry plane: beacons -> windowed aggregates -> store.
        self.collector = Collector()
        self.store = TimeSeriesStore()
        self.aggregator = GroupByAggregator(
            window_s=aggregation_window_s,
            group_keys=("cdn", "isp"),
            metrics=(
                "buffering_ratio",
                "mean_bitrate_mbps",
                "join_time_s",
                "abandoned",
            ),
            sink=self.store.append,
        )
        self.collector.subscribe(self.aggregator.add)

    # ------------------------------------------------------------------
    # PlayerPolicy interface
    # ------------------------------------------------------------------
    def assign(self, player: AdaptivePlayer) -> SessionAssignment:
        self._sessions[player.session_id] = _SessionState()
        self._active_players[player.session_id] = player
        return SessionAssignment(cdn=self._default_cdn())

    def on_chunk(self, player: AdaptivePlayer, record: ChunkRecord) -> None:
        state = self._sessions.get(player.session_id)
        if state is None:
            return
        if self._chunk_is_bad(player, record, state):
            state.consecutive_bad += 1
        else:
            state.consecutive_bad = 0
            if state.pending_recovery_cause is not None:
                if TRACER.enabled:
                    TRACER.emit(
                        "qoe-recovery",
                        cause=TRACER.new_cause(),
                        parent=state.pending_recovery_cause,
                        session=player.session_id,
                        policy=self.name,
                    )
                state.pending_recovery_cause = None
        state.last_rebuffer_s = record.rebuffer_time_s
        if state.consecutive_bad >= self.bad_chunk_threshold:
            reacted = self._react(player, record, state)
            if reacted:
                state.consecutive_bad = 0

    def rate_cap_mbps(self, player: AdaptivePlayer) -> float:
        state = self._sessions.get(player.session_id)
        return state.rate_cap_mbps if state else math.inf

    def on_session_end(self, player: AdaptivePlayer) -> None:
        self._sessions.pop(player.session_id, None)
        self._active_players.pop(player.session_id, None)
        qoe = player.qoe()
        self.finished_qoe.append(qoe)
        server = player.cdn.server_of(player.session_id) if player.cdn else None
        cause: Optional[int] = None
        if TRACER.enabled:
            # Session-end beacons are the A2I pipeline's input, so they
            # count as a2i-report even in worlds with no A2I glass built.
            # Emitted before ingestion so the flush this beacon may
            # trigger appears after it in the trace.
            cause = TRACER.new_cause()
            TRACER.emit(
                "a2i-report",
                via="beacon",
                cause=cause,
                owner=self.name,
                session=player.session_id,
                cdn=player.cdn.name if player.cdn else "",
                isp=self.isp,
            )
        self.collector.ingest(
            record_from_qoe(
                time=self.sim.now,
                qoe=qoe,
                cdn=player.cdn.name if player.cdn else "",
                isp=self.isp,
                server=server.server_id if server else "",
            )
        )
        if cause is not None:
            self.aggregator.note_cause(cause)

    # ------------------------------------------------------------------
    # cohort beacons
    # ------------------------------------------------------------------
    def ingest_cohort_beacons(self, beacons) -> None:
        """Ingest cohort-level A2I beacons: ``(record, sessions)`` pairs.

        A cohort beacon carries per-session *mean* metrics for
        ``sessions`` sessions that retired together, so it enters the
        aggregator with that weight -- the A2I aggregates come out as if
        every individual beacon had been sent, without any individual
        :class:`~repro.telemetry.records.SessionRecord` ever being
        materialized.  The per-record collector is bypassed on purpose:
        its subscribers expect unweighted records, and the privacy
        boundary is *stronger* here (individuals never existed).
        """
        for record, sessions in beacons:
            self.cohort_sessions_reported += sessions
            cause: Optional[int] = None
            if TRACER.enabled:
                cause = TRACER.new_cause()
                TRACER.emit(
                    "a2i-report",
                    via="cohort-beacon",
                    cause=cause,
                    owner=self.name,
                    cdn=record.attr("cdn"),
                    isp=record.attr("isp"),
                    sessions=sessions,
                )
            self.aggregator.add(record, weight=sessions)
            if cause is not None:
                self.aggregator.note_cause(cause)

    # ------------------------------------------------------------------
    # A2I export
    # ------------------------------------------------------------------
    def make_a2i(
        self,
        registry: OptInRegistry,
        refresh_period_s: float = 10.0,
        k_anonymity: int = 1,
    ) -> LookingGlass:
        """Build this AppP's A2I looking glass (QoE + demand queries)."""
        glass = LookingGlass(self.sim, owner=self.name, registry=registry, kind="a2i")
        glass.register(
            "qoe_by_cdn",
            lambda: self._qoe_aggregates(k_anonymity),
            refresh_period_s=refresh_period_s,
        )
        glass.register(
            "demand_estimate",
            self.demand_estimate,
            refresh_period_s=refresh_period_s,
        )
        # Served A2I answers derive from the latest aggregation flush;
        # the glass stamps that flush's cause as the query event's
        # parent, closing the beacon -> flush -> report chain.
        glass.provenance = lambda: self.aggregator.last_flush_cause
        self.a2i = glass
        return glass

    def demand_estimate(self) -> DemandEstimate:
        """Expected Mbit/s toward each CDN from currently active sessions."""
        demand: Dict[str, float] = {cdn.name: 0.0 for cdn in self.cdns}
        for player in self._active_players.values():
            if player.cdn is None:
                continue
            bitrate = (
                player.bitrates_played[-1]
                if player.bitrates_played
                else player.ladder.lowest
            )
            demand[player.cdn.name] = demand.get(player.cdn.name, 0.0) + bitrate
        return DemandEstimate(time=self.sim.now, demand_mbps=demand)

    def _qoe_aggregates(self, k_anonymity: int) -> List[QoeAggregate]:
        self.aggregator.flush(up_to=self.sim.now)
        aggregates = []
        for group in self.store.groups():
            row = self.store.latest(group)
            if row is None or row.count < k_anonymity:
                continue
            cdn, isp = group
            aggregates.append(
                QoeAggregate(
                    window_start=row.window_start,
                    window_s=row.window_s,
                    cdn=cdn,
                    isp=isp,
                    sessions=row.count,
                    buffering_ratio=row.mean("buffering_ratio"),
                    mean_bitrate_mbps=row.mean("mean_bitrate_mbps"),
                    join_time_s=row.mean("join_time_s"),
                    abandonment_rate=row.mean("abandoned"),
                )
            )
        return aggregates

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def _default_cdn(self) -> Cdn:
        for cdn in self.cdns:
            if cdn.has_capacity():
                return cdn
        return self.cdns[0]

    def _chunk_is_bad(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        """A chunk is bad if it stalled the player or starved the ladder."""
        stalled = record.rebuffer_time_s > state.last_rebuffer_s + 1e-9
        starved = record.throughput_mbps < player.ladder.lowest * 1.2
        low_buffer = record.buffer_level_s < player.buffer.startup_threshold_s
        return stalled or (starved and low_buffer)

    def _react(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        """React to sustained badness; returns whether an action was taken."""
        raise NotImplementedError

    def _switch_cdn(
        self,
        player: AdaptivePlayer,
        target: Cdn,
        reason: str,
        parent: Optional[int] = None,
    ) -> bool:
        """Switch ``player`` to ``target``, tracing successful switches.

        All controller CDN-switch paths route through here so the
        ``cdn-switch`` trace events carry a uniform shape (and the
        policy's *reason* for the switch, which the raw player mechanics
        cannot know).  ``parent`` is the cause ID of the I2A hint that
        motivated the switch, when one did -- the status-quo controller
        never passes it, which is exactly what ``eona trace diff`` keys
        on.
        """
        previous = player.cdn.name if player.cdn else ""
        switched = player.switch_cdn(target)
        if switched and TRACER.enabled:
            cause = TRACER.new_cause()
            extra: Dict[str, object] = {} if parent is None else {"parent": parent}
            TRACER.emit(
                "cdn-switch",
                cause=cause,
                session=player.session_id,
                from_cdn=previous,
                to_cdn=target.name,
                reason=reason,
                policy=self.name,
                **extra,
            )
            state = self._sessions.get(player.session_id)
            if state is not None:
                state.pending_recovery_cause = cause
        return switched

    def _next_cdn(self, current: Cdn) -> Optional[Cdn]:
        """The next CDN in preference order with capacity, or None."""
        names = [cdn.name for cdn in self.cdns]
        index = names.index(current.name)
        for offset in range(1, len(self.cdns)):
            candidate = self.cdns[(index + offset) % len(self.cdns)]
            if candidate.has_capacity():
                return candidate
        return None


class StatusQuoAppP(AppPController):
    """Today's AppP: blackbox inference, one coarse knob.

    When a session degrades it switches the whole CDN -- even when the
    bottleneck is the client's own access network (Figure 3, where this
    thrashing fixes nothing) or a single bad server (coarse control,
    where it lands the viewer on cold caches).
    """

    def _react(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        assert player.cdn is not None
        target = self._next_cdn(player.cdn)
        if target is None:
            return False
        return self._switch_cdn(player, target, reason="blackbox-react")


class EonaAppP(AppPController):
    """EONA-enhanced AppP: consult I2A, then pick the *right* knob.

    Args:
        isp_i2a: The ISP's I2A looking glass (congestion + peering).
        cdn_i2a: Per-CDN I2A looking glasses (server hints).
        damper: Hysteresis gate on CDN switches; ``None`` disables
            damping (the E4/E10 ablation).
        cap_relief_factor: When the access congestion clears, caps are
            lifted.
        fallback_enabled: Degrade to status-quo behavior when the
            glasses fail repeatedly (the resilience contract); the
            E15 ablation sets this False to show what rigidity costs.
        glass_error_threshold: Consecutive glass failures before
            fallback engages.
        reengage_ticks: Consecutive successful probes before a
            recovered glass is trusted again (damped re-engagement).
        stale_tolerance_s: Answers older than this count as glass
            failures (a frozen glass keeps answering, but lies);
            ``inf`` (the default) trusts any age, preserving the
            staleness-sweep semantics of E6.
    """

    def __init__(
        self,
        sim: Simulator,
        cdns: Optional[List[Cdn]] = None,
        isp_i2a: Optional[LookingGlass] = None,
        cdn_i2a: Optional[Dict[str, LookingGlass]] = None,
        damper: Optional[HysteresisGate] = None,
        ladder=None,
        global_cap_period_s: float = 5.0,
        clear_ticks_to_raise: int = 3,
        fallback_enabled: bool = True,
        glass_error_threshold: int = 3,
        reengage_ticks: int = 3,
        stale_tolerance_s: float = math.inf,
        **kwargs,
    ):
        super().__init__(sim, cdns, **kwargs)
        self.isp_i2a = isp_i2a
        self.cdn_i2a = cdn_i2a or {}
        self.damper = damper
        self.i2a_queries = 0
        self.bitrate_downshifts = 0
        # Graceful degradation: a glass that dies must not take the
        # control loop with it.  Consecutive failures trip a fallback to
        # blackbox (status-quo) behavior; consecutive successful probes
        # re-engage EONA, damped so a flapping glass cannot oscillate us.
        self.fallback_enabled = fallback_enabled
        self.glass_error_threshold = glass_error_threshold
        self.reengage_ticks = reengage_ticks
        self.stale_tolerance_s = stale_tolerance_s
        self.glass_errors = 0
        self.fallback_activations = 0
        self.fallback_reengagements = 0
        self.fallback_active = False
        self._glass_fail_streak = 0
        self._glass_ok_streak = 0
        # Cause ID of the most recent successfully served I2A answer;
        # traced control actions point back at it as their parent.
        self._last_hint_cause: Optional[int] = None
        # Fleet-wide bitrate governor (the Figure 3 fix): while the ISP
        # reports access congestion, every session is capped, stepping
        # one rung down per control period; the cap relaxes one rung per
        # ``clear_ticks_to_raise`` consecutive clear periods.
        from repro.video.ladder import DEFAULT_LADDER

        self.ladder = ladder or DEFAULT_LADDER
        self.global_cap_mbps = math.inf
        self._clear_ticks = 0
        self.clear_ticks_to_raise = clear_ticks_to_raise
        self._governor = None
        if isp_i2a is not None and global_cap_period_s > 0:
            from repro.simkernel.processes import PeriodicProcess

            self._governor = PeriodicProcess(
                self.sim, global_cap_period_s, self._govern, name="appp-governor"
            )

    def stop(self) -> None:
        if self._governor is not None:
            self._governor.stop()

    def _govern(self) -> None:
        """One tick of the fleet-wide bitrate governor."""
        if self.fallback_active:
            # In fallback the governor holds no caps (status-quo players
            # are uncapped) and probes the glass once per tick; only
            # ``reengage_ticks`` consecutive good probes re-engage EONA.
            self.global_cap_mbps = math.inf
            self._clear_ticks = 0
            self._probe_glass()
            return
        if self._access_congested():
            self._clear_ticks = 0
            if math.isinf(self.global_cap_mbps):
                baseline = self._fleet_mean_bitrate()
                self.global_cap_mbps = self.ladder.step_down(
                    self.ladder.highest_at_most(baseline)
                )
            else:
                self.global_cap_mbps = self.ladder.step_down(self.global_cap_mbps)
            self.bitrate_downshifts += 1
            self._trace_bitrate_cap("governor", self.global_cap_mbps)
        elif math.isfinite(self.global_cap_mbps):
            self._clear_ticks += 1
            if self._clear_ticks >= self.clear_ticks_to_raise:
                self._clear_ticks = 0
                if self.global_cap_mbps >= self.ladder.highest:
                    self.global_cap_mbps = math.inf
                else:
                    self.global_cap_mbps = self.ladder.step_up(self.global_cap_mbps)

    def _trace_bitrate_cap(
        self, via: str, cap_mbps: float, **fields: object
    ) -> Optional[int]:
        """Trace one cap-lowering action; returns its cause ID (or None).

        The parent is the I2A hint that reported the congestion -- the
        hint→action hop of the causal chain.
        """
        if not TRACER.enabled:
            return None
        cause = TRACER.new_cause()
        if self._last_hint_cause is not None:
            fields["parent"] = self._last_hint_cause
        TRACER.emit(
            "bitrate-cap",
            cause=cause,
            via=via,
            policy=self.name,
            cap_mbps=cap_mbps,
            **fields,
        )
        return cause

    def _fleet_mean_bitrate(self) -> float:
        rates = [
            player.bitrates_played[-1]
            for player in self._active_players.values()
            if player.bitrates_played
        ]
        if not rates:
            return self.ladder.highest
        return sum(rates) / len(rates)

    def rate_cap_mbps(self, player: AdaptivePlayer) -> float:
        return min(super().rate_cap_mbps(player), self.global_cap_mbps)

    # -- glass fault tracking ------------------------------------------
    def _glass_query(
        self, glass: LookingGlass, query: str
    ) -> Optional[QueryResult]:
        """Query a glass, tracking failures and over-stale answers.

        Returns ``None`` when the glass is down, the handler raised, or
        the answer exceeds ``stale_tolerance_s`` -- each counts toward
        the fallback failure streak.  Access denials are configuration,
        not faults: they return ``None`` without touching the streaks
        (the pre-fallback behavior).
        """
        self.i2a_queries += 1
        try:
            result = glass.query(self.name, query)
        except AccessDeniedError:
            return None
        except Exception:
            self.glass_errors += 1
            self._note_glass_failure()
            return None
        if result.age_s > self.stale_tolerance_s:
            self.glass_errors += 1
            self._note_glass_failure()
            return None
        self._note_glass_ok()
        if result.cause is not None:
            self._last_hint_cause = result.cause
        return result

    def _note_glass_failure(self) -> None:
        self._glass_ok_streak = 0
        self._glass_fail_streak += 1
        if (
            self.fallback_enabled
            and not self.fallback_active
            and self._glass_fail_streak >= self.glass_error_threshold
        ):
            self.fallback_active = True
            self.fallback_activations += 1
            self._on_fallback_activate()
            if TRACER.enabled:
                TRACER.emit(
                    "fallback-engage", policy=self.name, errors=self.glass_errors
                )

    def _note_glass_ok(self) -> None:
        self._glass_fail_streak = 0
        if not self.fallback_active:
            return
        self._glass_ok_streak += 1
        if self._glass_ok_streak >= self.reengage_ticks:
            self.fallback_active = False
            self._glass_ok_streak = 0
            self.fallback_reengagements += 1
            if TRACER.enabled:
                TRACER.emit("fallback-reengage", policy=self.name)

    def _on_fallback_activate(self) -> None:
        """Drop EONA-imposed state so fallback really is status quo."""
        self.global_cap_mbps = math.inf
        self._clear_ticks = 0
        for state in self._sessions.values():
            state.rate_cap_mbps = math.inf

    def _probe_candidates(self) -> List[tuple]:
        """``(glass, query)`` pairs a fallback probe may try, in order."""
        candidates: List[tuple] = []
        if self.isp_i2a is not None:
            candidates.append((self.isp_i2a, "congestion"))
        for cdn_name in sorted(self.cdn_i2a):
            candidates.append((self.cdn_i2a[cdn_name], "server_hints"))
        return candidates

    def _probe_glass(self) -> None:
        """One damped re-engagement probe while in fallback."""
        candidates = self._probe_candidates()
        if candidates:
            glass, query = candidates[0]
            self._glass_query(glass, query)

    # -- I2A helpers ---------------------------------------------------
    def _congestion_signals(self) -> List[dict]:
        if self.isp_i2a is None or self.fallback_active:
            return []
        result = self._glass_query(self.isp_i2a, "congestion")
        if result is None:
            return []
        payload = result.payload
        return payload if isinstance(payload, list) else []

    def _access_congested(self) -> bool:
        return any(
            signal.get("scope") == "access" and signal.get("congested")
            for signal in self._congestion_signals()
        )

    def _server_hints(self, cdn_name: str) -> List[dict]:
        glass = self.cdn_i2a.get(cdn_name)
        if glass is None or self.fallback_active:
            return []
        result = self._glass_query(glass, "server_hints")
        if result is None:
            return []
        payload = result.payload
        return payload if isinstance(payload, list) else []

    def _peering_being_fixed(self, cdn_name: str) -> bool:
        """True when the ISP's published peering state shows headroom.

        If any peering point for this CDN has spare capacity, the
        congestion is attributable to the peering choice, which the
        EONA InfP will repair -- so a wholesale CDN switch would only
        add churn (the Figure 5 lesson).
        """
        if self.isp_i2a is None or self.fallback_active:
            return False
        result = self._glass_query(self.isp_i2a, "peering_points")
        if result is None:
            return False
        points = result.payload if isinstance(result.payload, list) else []
        relevant = [p for p in points if p.get("cdn") == cdn_name]
        if not relevant:
            return False
        congested_somewhere = any(p.get("congested") for p in relevant)
        headroom_somewhere = any(
            not p.get("congested", False)
            and p.get("capacity_mbps", 0.0) > p.get("load_mbps", 0.0)
            for p in relevant
        )
        return congested_somewhere and headroom_somewhere

    # -- the EONA decision procedure ------------------------------------
    def _react(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        assert player.cdn is not None
        # 0. Degraded mode: the glasses are untrusted, so react exactly
        #    like StatusQuoAppP (blackbox CDN switch).  Each reaction
        #    also probes, so worlds without a governor can re-engage.
        if self.fallback_active:
            self._probe_glass()
        if self.fallback_active:
            target = self._next_cdn(player.cdn)
            if target is None:
                return False
            return self._switch_cdn(player, target, reason="fallback-blackbox")
        # 1. Access-network congestion => adapt bitrate, don't thrash.
        if self._access_congested():
            current = record.bitrate_mbps
            lowered = player.ladder.step_down(current)
            if lowered < state.rate_cap_mbps:
                state.rate_cap_mbps = lowered
                self.bitrate_downshifts += 1
                cause = self._trace_bitrate_cap(
                    "session", lowered, session=player.session_id
                )
                if cause is not None:
                    state.pending_recovery_cause = cause
            return True
        # 2. A bad server within the CDN => fine-grained server switch.
        hints = self._server_hints(player.cdn.name)
        current_server = player.cdn.server_of(player.session_id)
        if hints and current_server is not None:
            healthy = [h for h in hints if not h.get("degraded", False)]
            best = healthy[0].get("server_id") if healthy else None
            if best and best != current_server.server_id:
                if player.switch_server(best):
                    if TRACER.enabled:
                        cause = TRACER.new_cause()
                        extra: Dict[str, object] = (
                            {}
                            if self._last_hint_cause is None
                            else {"parent": self._last_hint_cause}
                        )
                        TRACER.emit(
                            "server-switch",
                            cause=cause,
                            session=player.session_id,
                            cdn=player.cdn.name,
                            from_server=current_server.server_id,
                            to_server=best,
                            policy=self.name,
                            **extra,
                        )
                        state.pending_recovery_cause = cause
                    return True
        # (fall through: no healthy alternative server)
        # 3. Peering problem the ISP is fixing => hold position.
        if self._peering_being_fixed(player.cdn.name):
            return True
        # 4. Last resort: CDN switch, damped.
        target = self._next_cdn(player.cdn)
        if target is None:
            return False
        if self.damper is not None:
            # Fleet-level knob: damping bounds the *rate* of CDN churn
            # across all sessions leaving this CDN, not per session --
            # a thundering herd of individually-reasonable switches is
            # exactly what Figure 5 warns about.
            knob = f"cdn-exodus:{player.cdn.name}"
            current_score = -record.rebuffer_time_s
            if not self.damper.allow(knob, current_score, current_score + 1.0):
                return False
            self.damper.record_change(knob)
        return self._switch_cdn(
            player,
            target,
            reason="damped-last-resort",
            parent=self._last_hint_cause,
        )

    def on_chunk(self, player: AdaptivePlayer, record: ChunkRecord) -> None:
        super().on_chunk(player, record)
        # Lift bitrate caps once the ISP reports the access network clear.
        state = self._sessions.get(player.session_id)
        if (
            state is not None
            and math.isfinite(state.rate_cap_mbps)
            and not self._access_congested()
        ):
            state.rate_cap_mbps = math.inf


class MultiIspEonaAppP(EonaAppP):
    """EONA AppP serving clients across several access ISPs.

    §3: A2I exports measurements "together with relevant attributes
    (e.g., the client ISP)".  This controller shows why the attributes
    matter: each ISP publishes its own congestion signal, and the fleet
    governor maintains a *per-ISP* bitrate cap, so a flash crowd inside
    one ISP does not punish viewers on a healthy one.  Setting
    ``scoped=False`` deliberately discards the attribute (any congested
    ISP caps everyone) -- the ablation experiment E12 compares the two.

    Args:
        isp_i2a_map: ISP name -> that ISP's I2A looking glass.
        isp_of: Maps a player to its access ISP's name.
        scoped: Whether caps are per-ISP (True) or fleet-global (False).
    """

    def __init__(
        self,
        sim: Simulator,
        cdns: Optional[List[Cdn]],
        isp_i2a_map: Dict[str, LookingGlass],
        isp_of: Callable[[AdaptivePlayer], str],
        scoped: bool = True,
        **kwargs,
    ):
        if not isp_i2a_map:
            raise ValueError("need at least one ISP I2A glass")
        kwargs.setdefault("global_cap_period_s", 5.0)
        super().__init__(sim, cdns, isp_i2a=None, **kwargs)
        self.isp_i2a_map = dict(isp_i2a_map)
        self.isp_of = isp_of
        self.scoped = scoped
        self._scope_caps: Dict[str, float] = {
            isp: math.inf for isp in isp_i2a_map
        }
        self._scope_clear_ticks: Dict[str, int] = {isp: 0 for isp in isp_i2a_map}
        # The base class only starts a governor when isp_i2a is set;
        # start our per-scope one explicitly.
        from repro.simkernel.processes import PeriodicProcess

        period = kwargs.get("global_cap_period_s", 5.0)
        self._governor = PeriodicProcess(
            self.sim, period, self._govern_scopes, name="appp-scope-governor"
        )

    # ------------------------------------------------------------------
    def _isp_congested(self, isp: str) -> bool:
        glass = self.isp_i2a_map.get(isp)
        if glass is None or self.fallback_active:
            return False
        result = self._glass_query(glass, "congestion")
        if result is None:
            return False
        payload = result.payload if isinstance(result.payload, list) else []
        return any(
            signal.get("scope") == "access" and signal.get("congested")
            for signal in payload
        )

    def _access_congested(self) -> bool:
        # For the per-session reaction path: "my access is congested"
        # means *some* collaborating ISP reports it; the per-session
        # rate-cap logic in EonaAppP then applies only to the sessions
        # that are actually bad, so scoping is preserved there.
        return any(self._isp_congested(isp) for isp in self.isp_i2a_map)

    def _probe_candidates(self) -> List[tuple]:
        candidates = super()._probe_candidates()
        for isp in sorted(self.isp_i2a_map):
            candidates.append((self.isp_i2a_map[isp], "congestion"))
        return candidates

    def _on_fallback_activate(self) -> None:
        super()._on_fallback_activate()
        for isp in self._scope_caps:
            self._scope_caps[isp] = math.inf
            self._scope_clear_ticks[isp] = 0

    def _govern_scopes(self) -> None:
        if self.fallback_active:
            for isp in self._scope_caps:
                self._scope_caps[isp] = math.inf
                self._scope_clear_ticks[isp] = 0
            self._probe_glass()
            return
        congested = {isp: self._isp_congested(isp) for isp in self.isp_i2a_map}
        if not self.scoped and any(congested.values()):
            congested = {isp: True for isp in congested}
        for isp, is_congested in congested.items():
            if is_congested:
                self._scope_clear_ticks[isp] = 0
                cap = self._scope_caps[isp]
                if math.isinf(cap):
                    baseline = self._scope_mean_bitrate(isp)
                    self._scope_caps[isp] = self.ladder.step_down(
                        self.ladder.highest_at_most(baseline)
                    )
                else:
                    self._scope_caps[isp] = self.ladder.step_down(cap)
                self.bitrate_downshifts += 1
                self._trace_bitrate_cap("governor", self._scope_caps[isp], isp=isp)
            elif math.isfinite(self._scope_caps[isp]):
                self._scope_clear_ticks[isp] += 1
                if self._scope_clear_ticks[isp] >= self.clear_ticks_to_raise:
                    self._scope_clear_ticks[isp] = 0
                    cap = self._scope_caps[isp]
                    if cap >= self.ladder.highest:
                        self._scope_caps[isp] = math.inf
                    else:
                        self._scope_caps[isp] = self.ladder.step_up(cap)

    def _scope_mean_bitrate(self, isp: str) -> float:
        rates = [
            player.bitrates_played[-1]
            for player in self._active_players.values()
            if player.bitrates_played and self.isp_of(player) == isp
        ]
        if not rates:
            return self.ladder.highest
        return sum(rates) / len(rates)

    def rate_cap_mbps(self, player: AdaptivePlayer) -> float:
        session_cap = AppPController.rate_cap_mbps(self, player)
        scope_cap = self._scope_caps.get(self.isp_of(player), math.inf)
        return min(session_cap, scope_cap)

    def scope_cap(self, isp: str) -> float:
        """Current cap applied to one ISP's viewers (``inf`` = none)."""
        return self._scope_caps[isp]
