"""Damping and backoff for coupled control loops (§5 "Oscillations").

The paper speculates "some sort of dampening or backoff algorithms can
help" with the new oscillation risks EONA's tighter coupling creates.
Two standard mechanisms are implemented and ablated in E4/E10:

* :class:`HysteresisGate` -- a knob change is allowed only if (a) the
  candidate is better by a margin and (b) a minimum dwell time has
  passed since the last change of that knob;
* :class:`ExponentialBackoff` -- each successive change of the same
  knob within a window doubles the required wait before the next one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.simkernel.kernel import Simulator


class HysteresisGate:
    """Dwell-time + improvement-margin gate on knob changes.

    Args:
        sim: Simulator providing the clock.
        min_dwell_s: Minimum time between changes of one knob.
        improvement_margin: Required relative improvement of the
            candidate's score over the current one (scores are
            "higher is better").
    """

    def __init__(
        self,
        sim: Simulator,
        min_dwell_s: float = 30.0,
        improvement_margin: float = 0.1,
    ):
        if min_dwell_s < 0 or improvement_margin < 0:
            raise ValueError("dwell and margin must be non-negative")
        self.sim = sim
        self.min_dwell_s = min_dwell_s
        self.improvement_margin = improvement_margin
        self._last_change: Dict[str, float] = {}

    def allow(
        self,
        knob: str,
        current_score: float,
        candidate_score: float,
    ) -> bool:
        """Whether changing ``knob`` is permitted now.

        Callers must pair every permitted change with
        :meth:`record_change`.
        """
        last = self._last_change.get(knob)
        if last is not None and self.sim.now - last < self.min_dwell_s:
            return False
        required = current_score * (1.0 + self.improvement_margin)
        if current_score < 0:
            required = current_score * (1.0 - self.improvement_margin)
        return candidate_score > required

    def record_change(self, knob: str) -> None:
        self._last_change[knob] = self.sim.now

    def dwell_remaining(self, knob: str) -> float:
        last = self._last_change.get(knob)
        if last is None:
            return 0.0
        return max(0.0, self.min_dwell_s - (self.sim.now - last))


class ExponentialBackoff:
    """Per-knob exponential backoff on repeated changes.

    Args:
        sim: Simulator.
        base_s: Wait required after the first change.
        factor: Multiplier per successive change.
        max_s: Backoff ceiling.
        reset_after_s: A quiet period this long resets the backoff.
    """

    def __init__(
        self,
        sim: Simulator,
        base_s: float = 10.0,
        factor: float = 2.0,
        max_s: float = 600.0,
        reset_after_s: float = 900.0,
    ):
        if base_s <= 0 or factor < 1 or max_s < base_s or reset_after_s <= 0:
            raise ValueError("invalid backoff parameters")
        self.sim = sim
        self.base_s = base_s
        self.factor = factor
        self.max_s = max_s
        self.reset_after_s = reset_after_s
        self._state: Dict[str, "_BackoffState"] = {}

    def ready(self, knob: str) -> bool:
        """Whether ``knob`` may be changed now."""
        state = self._state.get(knob)
        if state is None:
            return True
        self._maybe_reset(knob, state)
        state = self._state.get(knob)
        if state is None:
            return True
        return self.sim.now >= state.next_allowed

    def record_change(self, knob: str) -> None:
        """Register a change; the next one must wait exponentially longer."""
        state = self._state.get(knob)
        if state is None or self.sim.now - state.last_change >= self.reset_after_s:
            wait = self.base_s
        else:
            wait = min(self.max_s, state.current_wait * self.factor)
        self._state[knob] = _BackoffState(
            last_change=self.sim.now,
            current_wait=wait,
            next_allowed=self.sim.now + wait,
        )

    def wait_remaining(self, knob: str) -> float:
        state = self._state.get(knob)
        if state is None:
            return 0.0
        return max(0.0, state.next_allowed - self.sim.now)

    def _maybe_reset(self, knob: str, state: "_BackoffState") -> None:
        if self.sim.now - state.last_change >= self.reset_after_s:
            del self._state[knob]


@dataclass
class _BackoffState:
    last_change: float
    current_wait: float
    next_allowed: float
