"""Message schemas carried over the EONA interfaces.

These are the concrete payloads the paper's §4 example derives:

A2I (application → infrastructure):
  * :class:`QoeAggregate` -- client-measured experience per
    (CDN, ISP, ...) group, aggregated, never per-user;
  * :class:`DemandEstimate` -- expected traffic volume toward each CDN,
    so the InfP can plan peering splits.

I2A (infrastructure → application):
  * :class:`PeeringPointInfo` -- the ISP's peering points for a CDN with
    capacity and congestion level;
  * :class:`PeeringDecision` -- which peering the ISP currently uses for
    a CDN's traffic (decision values, not the TE strategy itself);
  * :class:`CongestionSignal` -- explicit congestion attribution
    ("your bottleneck is my access network", Figure 3);
  * :class:`ServerHintInfo` -- a CDN's alternative-server hints.

Every schema serializes with :meth:`to_dict` so the looking glass can
apply field-level narrowing (§4's "narrow interface") uniformly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Tuple


class _Schema:
    """Mixin: dict serialization used by the looking-glass field filter."""

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))


# ----------------------------------------------------------------------
# A2I payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QoeAggregate(_Schema):
    """Aggregated client-side experience for one group.

    Attributes:
        window_start: Start of the aggregation window.
        window_s: Window length.
        cdn: CDN the sessions used.
        isp: Client ISP (the access network).
        sessions: Number of sessions aggregated (k-anonymity basis).
        buffering_ratio: Mean buffering ratio.
        mean_bitrate_mbps: Mean delivered bitrate.
        join_time_s: Mean join time.
        abandonment_rate: Fraction of sessions abandoned.
    """

    window_start: float
    window_s: float
    cdn: str
    isp: str
    sessions: int
    buffering_ratio: float
    mean_bitrate_mbps: float
    join_time_s: float
    abandonment_rate: float = 0.0


@dataclass(frozen=True)
class DemandEstimate(_Schema):
    """AppP's expected traffic toward each CDN (Mbit/s), for TE planning."""

    time: float
    demand_mbps: Dict[str, float] = field(default_factory=dict)

    def for_cdn(self, cdn: str) -> float:
        return self.demand_mbps.get(cdn, 0.0)


# ----------------------------------------------------------------------
# I2A payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PeeringPointInfo(_Schema):
    """One peering point the ISP exchanges a CDN's traffic at."""

    peering_node: str
    cdn: str
    capacity_mbps: float
    load_mbps: float
    congested: bool

    @property
    def headroom_mbps(self) -> float:
        return max(0.0, self.capacity_mbps - self.load_mbps)


@dataclass(frozen=True)
class PeeringDecision(_Schema):
    """The ISP's current egress selection for one CDN's traffic group."""

    time: float
    cdn: str
    selected_peering: str


@dataclass(frozen=True)
class CongestionSignal(_Schema):
    """Explicit congestion attribution from the InfP.

    ``scope`` names the network segment: ``"access"`` (the last mile,
    Figure 3's case), ``"peering"``, or ``"core"``.  ``severity`` is the
    smoothed utilization of the worst link in that segment.
    """

    time: float
    scope: str
    congested: bool
    severity: float
    bottleneck_link: str = ""


@dataclass(frozen=True)
class ServerHintInfo(_Schema):
    """A CDN's alternative-server hint (per the coarse-control scenario)."""

    cdn: str
    server_id: str
    node_id: str
    load: float
    degraded: bool
