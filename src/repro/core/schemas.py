"""Message schemas carried over the EONA interfaces.

These are the concrete payloads the paper's §4 example derives:

A2I (application → infrastructure):
  * :class:`QoeAggregate` -- client-measured experience per
    (CDN, ISP, ...) group, aggregated, never per-user;
  * :class:`DemandEstimate` -- expected traffic volume toward each CDN,
    so the InfP can plan peering splits.

I2A (infrastructure → application):
  * :class:`PeeringPointInfo` -- the ISP's peering points for a CDN with
    capacity and congestion level;
  * :class:`PeeringDecision` -- which peering the ISP currently uses for
    a CDN's traffic (decision values, not the TE strategy itself);
  * :class:`CongestionSignal` -- explicit congestion attribution
    ("your bottleneck is my access network", Figure 3);
  * :class:`ServerHintInfo` -- a CDN's alternative-server hints.

Every schema serializes with :meth:`to_dict` so the looking glass can
apply field-level narrowing (§4's "narrow interface") uniformly, and
deserializes with :meth:`from_dict` so the wire transport
(:mod:`repro.transport.codec`) can restore typed payloads from the
canonical JSON it ships between processes.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

#: Version tag for the schema vocabulary itself; the wire envelope
#: (``eona-msg/1``, DESIGN.md §14) carries it so a peer can reject
#: payloads minted under an incompatible field set.
SCHEMA_VERSION = "eona-schemas/1"


class SchemaError(ValueError):
    """A payload dict cannot be restored into its schema dataclass."""


def coerce_value(value: object, annotation: object) -> object:
    """Restore ``value`` (fresh from JSON) to the annotated field type.

    JSON collapses the type lattice -- tuples arrive as lists, int-valued
    floats may arrive as ints -- so deserialization re-widens scalars and
    rebuilds containers recursively (``Dict``/``Tuple``/``List``/
    ``Optional``).  Anything not covered (``Any``, untyped ``object``)
    passes through untouched; genuinely wrong shapes raise
    :class:`SchemaError`.
    """
    if annotation in (object, typing.Any):
        return value
    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if value is None:
            if len(args) < len(typing.get_args(annotation)):
                return None
            raise SchemaError(f"None is not valid for {annotation!r}")
        if len(args) == 1:
            return coerce_value(value, args[0])
        return value
    if annotation is bool:
        if not isinstance(value, bool):
            raise SchemaError(f"expected bool, got {value!r}")
        return value
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"expected float, got {value!r}")
        return float(value)
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"expected int, got {value!r}")
        if isinstance(value, float):
            if not value.is_integer():
                raise SchemaError(f"expected int, got non-integral {value!r}")
            return int(value)
        return value
    if annotation is str:
        if not isinstance(value, str):
            raise SchemaError(f"expected str, got {value!r}")
        return value
    if origin is dict:
        if not isinstance(value, Mapping):
            raise SchemaError(f"expected mapping, got {value!r}")
        args = typing.get_args(annotation) or (object, object)
        return {
            coerce_value(k, args[0]): coerce_value(v, args[1])
            for k, v in value.items()
        }
    if origin is tuple:
        if not isinstance(value, (list, tuple)):
            raise SchemaError(f"expected sequence, got {value!r}")
        args = typing.get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(coerce_value(item, args[0]) for item in value)
        if args and len(args) != len(value):
            raise SchemaError(
                f"expected {len(args)}-tuple, got {len(value)} items"
            )
        if not args:
            return tuple(value)
        return tuple(
            coerce_value(item, arg) for item, arg in zip(value, args)
        )
    if origin is list:
        if not isinstance(value, (list, tuple)):
            raise SchemaError(f"expected sequence, got {value!r}")
        args = typing.get_args(annotation) or (object,)
        return [coerce_value(item, args[0]) for item in value]
    if dataclasses.is_dataclass(annotation) and isinstance(value, Mapping):
        if hasattr(annotation, "from_dict"):
            return annotation.from_dict(value)  # type: ignore[union-attr]
    return value


def dataclass_from_dict(cls: type, payload: Mapping[str, object]) -> object:
    """Rebuild any dataclass from a ``to_dict`` dict (or its JSON echo).

    Field values are coerced back to the declared types (nested
    ``Dict``/``Tuple`` fields included); unknown keys are ignored so a
    newer peer's extra fields do not break an older reader; missing keys
    fall back to the field default or raise :class:`SchemaError`.  The
    wire codec uses this directly for payloads (``QueryResult``) that
    are dataclasses without the :class:`_Schema` mixin.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"{cls.__name__}.from_dict needs a mapping, got {payload!r}"
        )
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, object] = {}
    for spec in dataclasses.fields(cls):
        if spec.name in payload:
            try:
                kwargs[spec.name] = coerce_value(
                    payload[spec.name], hints.get(spec.name, object)
                )
            except SchemaError as error:
                raise SchemaError(
                    f"{cls.__name__}.{spec.name}: {error}"
                ) from None
        elif (
            spec.default is dataclasses.MISSING
            and spec.default_factory is dataclasses.MISSING
        ):
            raise SchemaError(
                f"{cls.__name__}.from_dict: missing field {spec.name!r}"
            )
    return cls(**kwargs)


class _Schema:
    """Mixin: dict (de)serialization used by the glass filter and the wire."""

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "_Schema":
        """Rebuild an instance from a ``to_dict`` dict (see
        :func:`dataclass_from_dict` for the coercion contract)."""
        return dataclass_from_dict(cls, payload)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# A2I payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QoeAggregate(_Schema):
    """Aggregated client-side experience for one group.

    Attributes:
        window_start: Start of the aggregation window.
        window_s: Window length.
        cdn: CDN the sessions used.
        isp: Client ISP (the access network).
        sessions: Number of sessions aggregated (k-anonymity basis).
        buffering_ratio: Mean buffering ratio.
        mean_bitrate_mbps: Mean delivered bitrate.
        join_time_s: Mean join time.
        abandonment_rate: Fraction of sessions abandoned.
    """

    window_start: float
    window_s: float
    cdn: str
    isp: str
    sessions: int
    buffering_ratio: float
    mean_bitrate_mbps: float
    join_time_s: float
    abandonment_rate: float = 0.0


@dataclass(frozen=True)
class DemandEstimate(_Schema):
    """AppP's expected traffic toward each CDN (Mbit/s), for TE planning."""

    time: float
    demand_mbps: Dict[str, float] = field(default_factory=dict)

    def for_cdn(self, cdn: str) -> float:
        return self.demand_mbps.get(cdn, 0.0)


# ----------------------------------------------------------------------
# I2A payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PeeringPointInfo(_Schema):
    """One peering point the ISP exchanges a CDN's traffic at."""

    peering_node: str
    cdn: str
    capacity_mbps: float
    load_mbps: float
    congested: bool

    @property
    def headroom_mbps(self) -> float:
        return max(0.0, self.capacity_mbps - self.load_mbps)


@dataclass(frozen=True)
class PeeringDecision(_Schema):
    """The ISP's current egress selection for one CDN's traffic group."""

    time: float
    cdn: str
    selected_peering: str


@dataclass(frozen=True)
class CongestionSignal(_Schema):
    """Explicit congestion attribution from the InfP.

    ``scope`` names the network segment: ``"access"`` (the last mile,
    Figure 3's case), ``"peering"``, or ``"core"``.  ``severity`` is the
    smoothed utilization of the worst link in that segment.
    """

    time: float
    scope: str
    congested: bool
    severity: float
    bottleneck_link: str = ""


@dataclass(frozen=True)
class ServerHintInfo(_Schema):
    """A CDN's alternative-server hint (per the coarse-control scenario)."""

    cdn: str
    server_id: str
    node_id: str
    load: float
    degraded: bool
