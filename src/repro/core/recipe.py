"""The §4 interface-design recipe, as executable machinery.

The paper's four steps:

1. enumerate use cases;
2. imagine a hypothetical *global controller* with all data and knobs;
3. map data and knobs back to their natural owners -- every
   (knob, datum) pair the global controller uses whose owners differ
   marks information that must cross a provider boundary; the union of
   those crossings is the **wide interface**;
4. narrow it: rank crossings by utility and keep the smallest set that
   preserves most of the global controller's benefit.

This module implements steps 2-4 as data structures and pure functions;
experiment E9 runs the pipeline against the oracle baseline to measure
the quality gap at each interface width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class Knob:
    """A control variable, e.g. bitrate (AppP) or peering point (InfP)."""

    name: str
    owner: str


@dataclass(frozen=True)
class Datum:
    """An observable, e.g. buffering ratio (AppP) or link load (InfP)."""

    name: str
    owner: str


@dataclass(frozen=True)
class UseCase:
    """One scenario and what a global controller would use to solve it.

    Attributes:
        name: Scenario label (e.g. ``"fig5-oscillation"``).
        knobs: Knobs the global controller would tune.
        data: Data the decision depends on.
    """

    name: str
    knobs: Tuple[Knob, ...]
    data: Tuple[Datum, ...]


@dataclass(frozen=True)
class Crossing:
    """One datum that must be shared with the owner of a knob."""

    datum: Datum
    to_owner: str
    use_case: str

    @property
    def direction(self) -> str:
        """``"A2I"`` when application data flows to infrastructure, etc."""
        return f"{self.datum.owner}->{self.to_owner}"


@dataclass
class InterfaceSpec:
    """A concrete interface: which data crosses which boundary.

    Attributes:
        crossings: All (datum, recipient) requirements.
    """

    crossings: List[Crossing] = field(default_factory=list)

    @property
    def shared_fields(self) -> FrozenSet[Tuple[str, str]]:
        """Deduplicated (datum name, recipient) pairs -- the field list."""
        return frozenset(
            (crossing.datum.name, crossing.to_owner) for crossing in self.crossings
        )

    @property
    def width(self) -> int:
        """Number of distinct shared fields (the narrowness metric)."""
        return len(self.shared_fields)

    def fields_to(self, owner: str) -> FrozenSet[str]:
        """Datum names that must be exported *to* ``owner``."""
        return frozenset(
            name for name, recipient in self.shared_fields if recipient == owner
        )


class OwnershipMap:
    """Registry of who owns which knob and datum (recipe step 3)."""

    def __init__(self) -> None:
        self._knobs: Dict[str, Knob] = {}
        self._data: Dict[str, Datum] = {}

    def add_knob(self, name: str, owner: str) -> Knob:
        knob = Knob(name=name, owner=owner)
        self._knobs[name] = knob
        return knob

    def add_datum(self, name: str, owner: str) -> Datum:
        datum = Datum(name=name, owner=owner)
        self._data[name] = datum
        return datum

    def knob(self, name: str) -> Knob:
        return self._knobs[name]

    def datum(self, name: str) -> Datum:
        return self._data[name]

    def owner_of_knob(self, name: str) -> str:
        return self._knobs[name].owner

    def owner_of_datum(self, name: str) -> str:
        return self._data[name].owner


def derive_wide_interface(use_cases: Iterable[UseCase]) -> InterfaceSpec:
    """Recipe step 3: every cross-ownership (knob, datum) pair is a crossing.

    For each use case, a datum used by the global controller must be
    shared with the owner of every knob whose setting depends on it and
    whose owner differs from the datum's owner.
    """
    spec = InterfaceSpec()
    seen = set()
    for use_case in use_cases:
        knob_owners = {knob.owner for knob in use_case.knobs}
        for datum in use_case.data:
            for owner in knob_owners:
                if owner == datum.owner:
                    continue
                key = (datum.name, owner, use_case.name)
                if key in seen:
                    continue
                seen.add(key)
                spec.crossings.append(
                    Crossing(datum=datum, to_owner=owner, use_case=use_case.name)
                )
    return spec


def narrow_interface(
    spec: InterfaceSpec,
    utility: Mapping[str, float],
    budget: int,
) -> InterfaceSpec:
    """Recipe step 4: keep only the ``budget`` most useful shared fields.

    Args:
        spec: The wide interface.
        utility: Per-datum utility scores (e.g. measured quality impact,
            or an information-gain proxy); missing data score 0.
        budget: Maximum number of distinct (datum, recipient) fields.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget!r}")
    ranked_fields = sorted(
        spec.shared_fields,
        key=lambda pair: (-utility.get(pair[0], 0.0), pair),
    )
    kept = set(ranked_fields[:budget])
    narrowed = InterfaceSpec(
        crossings=[
            crossing
            for crossing in spec.crossings
            if (crossing.datum.name, crossing.to_owner) in kept
        ]
    )
    return narrowed


def utility_from_observations(
    observations: Mapping[str, "Sequence[float]"],
    quality: "Sequence[float]",
) -> Dict[str, float]:
    """Score each candidate datum by how much it explains quality.

    §4's first open question: "we might need some type of feature
    selection techniques (e.g., information gain) to identify the
    relevant attributes."  This implements the standard proxy -- the
    absolute rank correlation between each candidate datum's observed
    values and the quality metric -- which is what narrows the wide
    interface from data rather than from intuition.

    Args:
        observations: Per-datum sample series, all aligned with
            ``quality`` (same length, same ordering of observations).
        quality: The experience metric (e.g. per-window engagement).

    Returns:
        Datum name -> utility in [0, 1].
    """
    from repro.telemetry.inference import spearman_correlation

    n = len(quality)
    if n < 3:
        raise ValueError(f"need at least 3 observations, got {n}")
    scores: Dict[str, float] = {}
    for name, series in observations.items():
        if len(series) != n:
            raise ValueError(
                f"datum {name!r}: {len(series)} samples vs {n} quality values"
            )
        scores[name] = abs(spearman_correlation(series, quality))
    return scores


def eona_standard_ownership() -> Tuple[OwnershipMap, List[UseCase]]:
    """The paper's running example: knobs, data, and use cases of §2/§4."""
    ownership = OwnershipMap()
    # AppP-owned knobs and data.
    cdn_choice = ownership.add_knob("cdn_choice", "appp")
    bitrate = ownership.add_knob("bitrate", "appp")
    server_choice = ownership.add_knob("server_choice", "appp")
    qoe = ownership.add_datum("qoe", "appp")
    demand = ownership.add_datum("demand_estimate", "appp")
    # InfP-owned knobs and data.
    peering = ownership.add_knob("peering_point", "isp")
    server_power = ownership.add_knob("server_power", "cdn")
    peering_capacity = ownership.add_datum("peering_capacity", "isp")
    peering_decision = ownership.add_datum("peering_decision", "isp")
    access_congestion = ownership.add_datum("access_congestion", "isp")
    server_load = ownership.add_datum("server_load", "cdn")
    server_hints = ownership.add_datum("server_hints", "cdn")

    use_cases = [
        UseCase(
            name="coarse-control",
            knobs=(server_choice, cdn_choice),
            data=(qoe, server_load, server_hints),
        ),
        UseCase(
            name="flash-crowd",
            knobs=(bitrate, cdn_choice),
            data=(qoe, access_congestion),
        ),
        UseCase(
            name="oscillation",
            knobs=(cdn_choice, peering),
            data=(qoe, demand, peering_capacity, peering_decision),
        ),
        UseCase(
            name="energy-saving",
            knobs=(server_power,),
            data=(qoe, server_load),
        ),
    ]
    return ownership, use_cases
