"""Privacy filters applied at the EONA export boundary.

§4's "balancing effectiveness vs. minimality": providers must be able
to share what helps without exposing users, topology, or strategy.
Three standard techniques are provided -- k-anonymous suppression of
small aggregates, field blinding, and Laplace noise (the differential-
privacy mechanism the paper cites via McSherry & Mahajan).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Sequence, TypeVar

RowT = TypeVar("RowT")


def k_suppress(rows: Sequence[RowT], k: int, count_of=None) -> List[RowT]:
    """Drop aggregate rows built from fewer than ``k`` underlying sessions.

    Args:
        rows: Aggregate rows.
        k: Minimum group size to release.
        count_of: Accessor returning a row's session count; defaults to
            the ``count`` attribute (matching
            :class:`~repro.telemetry.aggregate.AggregateRow` and
            the ``sessions`` field of QoE aggregates).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")

    def default_count(row):
        if hasattr(row, "count"):
            return row.count
        if hasattr(row, "sessions"):
            return row.sessions
        raise TypeError(f"cannot determine group size of {row!r}")

    accessor = count_of or default_count
    return [row for row in rows if accessor(row) >= k]


def blind_fields(payload: Mapping[str, object], allowed: Iterable[str]) -> Dict[str, object]:
    """Return only the allowed fields of a payload dict.

    ``"*"`` in ``allowed`` passes everything through unchanged.
    """
    allowed_set = set(allowed)
    if "*" in allowed_set:
        return dict(payload)
    return {key: value for key, value in payload.items() if key in allowed_set}


def noise_numeric_fields(
    payload,
    epsilon: float,
    sensitivity: float,
    rng: random.Random,
    fields: Iterable[str] = (),
):
    """Apply Laplace noise to numeric fields of a serialized payload.

    Walks a payload as the looking glass produces it -- a dict, a list
    of dicts, or a dict containing nested numeric dicts -- and replaces
    each selected numeric value with a noised copy.  A field name in
    ``fields`` selects that leaf *and* every numeric leaf nested under a
    container with that name (so ``("demand_mbps",)`` noises all the
    per-CDN values inside the demand dict).  With ``fields`` empty,
    every numeric leaf is noised.

    Returns a new structure; the input is not mutated.
    """
    selected = set(fields)

    def walk(node, key: str = "", inherited: bool = False):
        chosen = inherited or not selected or key in selected
        if isinstance(node, dict):
            return {
                child_key: walk(child, child_key, inherited or key in selected)
                for child_key, child in node.items()
            }
        if isinstance(node, list):
            return [walk(item, key, inherited) for item in node]
        if isinstance(node, bool):
            return node
        if isinstance(node, (int, float)) and chosen:
            return laplace_noise(float(node), epsilon, sensitivity, rng)
        return node

    return walk(payload)


def laplace_noise(
    value: float,
    epsilon: float,
    sensitivity: float,
    rng: random.Random,
) -> float:
    """Add Laplace(sensitivity/epsilon) noise to a released statistic.

    Args:
        value: True statistic.
        epsilon: Privacy budget; smaller = noisier.
        sensitivity: Max influence of one session on the statistic.
        rng: Random stream (named, for reproducibility).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon!r}")
    if sensitivity < 0:
        raise ValueError(f"sensitivity must be non-negative, got {sensitivity!r}")
    scale = sensitivity / epsilon
    u = rng.random() - 0.5
    return value - scale * math.copysign(1.0, u) * math.log(1 - 2 * abs(u))
