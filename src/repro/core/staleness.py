"""Explicit staleness for exported state (§5 "dealing with staleness").

Looking-glass answers are not live reads of the producer's internals:
the producer refreshes a published snapshot on a period, and queries
see the snapshot plus its age.  Control logic that consumes EONA data
must tolerate this lag; experiment E6 sweeps the refresh period to
measure how much of EONA's benefit survives staleness.
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, Tuple, TypeVar

from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess

ValueT = TypeVar("ValueT")


class StaleView(Generic[ValueT]):
    """A periodically refreshed snapshot of a producer-side value.

    Args:
        sim: Simulator (provides the clock and the refresh process).
        fetch: Zero-argument producer of the current true value.
        refresh_period_s: Snapshot interval.  ``0`` means live (no
            staleness): every query re-fetches.
        publish_delay_s: Extra delay between when a snapshot is taken
            and when queries see it (propagation/processing lag).
    """

    def __init__(
        self,
        sim: Simulator,
        fetch: Callable[[], ValueT],
        refresh_period_s: float = 0.0,
        publish_delay_s: float = 0.0,
    ):
        if refresh_period_s < 0 or publish_delay_s < 0:
            raise ValueError("periods must be non-negative")
        self.sim = sim
        self.fetch = fetch
        self.refresh_period_s = refresh_period_s
        self.publish_delay_s = publish_delay_s
        self._value: Optional[ValueT] = None
        self._taken_at: float = sim.now
        self._visible_at: float = sim.now
        self._process: Optional[PeriodicProcess] = None
        if refresh_period_s > 0:
            self._refresh()
            self._process = PeriodicProcess(
                sim, refresh_period_s, self._refresh, name="stale-view"
            )

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()

    def get(self) -> Tuple[ValueT, float]:
        """Return ``(value, age_seconds)`` as a querier sees it."""
        if self.refresh_period_s <= 0:
            return self.fetch(), 0.0
        if self._value is None or self.sim.now < self._visible_at:
            # Nothing published yet (only possible inside the first
            # publish delay); fall back to a live read with zero age so
            # consumers need no special bootstrap case.
            return self.fetch(), 0.0
        return self._value, self.sim.now - self._taken_at

    def value(self) -> ValueT:
        return self.get()[0]

    def age(self) -> float:
        return self.get()[1]

    def _refresh(self) -> None:
        snapshot = self.fetch()
        taken_at = self.sim.now

        def publish() -> None:
            self._value = snapshot
            self._taken_at = taken_at
            self._visible_at = self.sim.now

        if self.publish_delay_s > 0:
            self.sim.schedule(self.publish_delay_s, publish)
        else:
            publish()
