"""Oscillation detection and adaptive damping (§5, open challenges).

"An interesting direction for future work is to formally understand if
and how EONA can exacerbate control instabilities. We speculate that
some sort of dampening or backoff algorithms can help here."

Static damping (a fixed dwell time) pays its responsiveness cost even
when the system is calm.  The adaptive damper here only engages when a
knob's decision history actually *looks* oscillatory -- it revisits
recently-held values rather than progressing -- and then applies
exponential backoff until the flapping stops.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Optional

from repro.core.damping import ExponentialBackoff
from repro.simkernel.kernel import Simulator


class OscillationDetector:
    """Flags knobs whose recent decisions revisit previous values.

    A change is a *flip* when the new value appeared earlier within the
    last ``window`` decisions (A→B→A is the canonical oscillation);
    monotone progress (A→B→C) is not.  A knob is oscillating while its
    flip count within the window reaches ``flip_threshold``.

    Args:
        window: Decisions remembered per knob.
        flip_threshold: Flips within the window that trigger detection.
    """

    def __init__(self, window: int = 6, flip_threshold: int = 2):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window!r}")
        if flip_threshold < 1:
            raise ValueError(f"flip_threshold must be >= 1, got {flip_threshold!r}")
        self.window = window
        self.flip_threshold = flip_threshold
        self._history: Dict[str, Deque[Hashable]] = {}
        self._flips: Dict[str, Deque[bool]] = {}

    def record(self, knob: str, value: Hashable) -> None:
        """Register one decided value for ``knob``."""
        history = self._history.setdefault(knob, deque(maxlen=self.window))
        flips = self._flips.setdefault(knob, deque(maxlen=self.window))
        is_flip = bool(history) and history[-1] != value and value in history
        if not history or history[-1] != value:
            history.append(value)
            flips.append(is_flip)

    def flip_count(self, knob: str) -> int:
        return sum(self._flips.get(knob, ()))

    def is_oscillating(self, knob: str) -> bool:
        return self.flip_count(knob) >= self.flip_threshold

    def reset(self, knob: str) -> None:
        self._history.pop(knob, None)
        self._flips.pop(knob, None)


class AdaptiveDamper:
    """Backoff that engages only on detected oscillation.

    Wire it into a control loop by asking :meth:`allow` before applying
    a knob change and calling :meth:`record` after applying one.  While
    a knob is calm every change is allowed immediately; once the
    detector flags it, changes must respect exponential backoff until
    the flapping subsides.
    """

    def __init__(
        self,
        sim: Simulator,
        detector: Optional[OscillationDetector] = None,
        backoff: Optional[ExponentialBackoff] = None,
    ):
        self.sim = sim
        self.detector = detector or OscillationDetector()
        self.backoff = backoff or ExponentialBackoff(sim, base_s=30.0)
        self.suppressed = 0

    def allow(self, knob: str, new_value: Hashable) -> bool:
        """Whether setting ``knob`` to ``new_value`` is permitted now."""
        if not self.detector.is_oscillating(knob):
            return True
        if self.backoff.ready(knob):
            return True
        self.suppressed += 1
        return False

    def record(self, knob: str, new_value: Hashable) -> None:
        """Register an applied change (feeds detection and backoff)."""
        self.detector.record(knob, new_value)
        if self.detector.is_oscillating(knob):
            self.backoff.record_change(knob)
