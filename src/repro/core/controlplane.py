"""A C3-style coordinated video control plane for the AppP.

The paper's third enabling trend (§1): "many individual subsystems have
already built or [are] starting to build their own control plane
platforms", citing the coordinated Internet video control plane (Liu et
al., SIGCOMM'12).  This module implements that subsystem: instead of
each player discovering CDN quality alone by trial and error, the AppP
aggregates every client's chunk telemetry into per-CDN quality scores
and steers sessions *globally* -- ε-greedy assignment for new sessions,
plus a periodic re-optimization that drains sessions off an
underperforming CDN at a bounded rate.

EONA composes with, rather than replaces, this control plane: the
coordinated AppP is the natural consumer of I2A hints (it already has
the fleet view), which is how the paper's AppP control logic should be
read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cdn.provider import Cdn
from repro.core.appp import AppPController, _SessionState
from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess
from repro.video.player import AdaptivePlayer, ChunkRecord, SessionAssignment


@dataclass
class CdnQuality:
    """EWMA quality estimate for one CDN, fed by chunk beacons."""

    ewma_throughput_mbps: float = 0.0
    ewma_stall_rate: float = 0.0  # stall seconds per chunk
    chunks_observed: int = 0
    last_update: float = 0.0

    def observe(self, throughput_mbps: float, stall_s: float, alpha: float, now: float) -> None:
        if self.chunks_observed == 0:
            self.ewma_throughput_mbps = throughput_mbps
            self.ewma_stall_rate = stall_s
        else:
            self.ewma_throughput_mbps = (
                alpha * throughput_mbps + (1 - alpha) * self.ewma_throughput_mbps
            )
            self.ewma_stall_rate = (
                alpha * stall_s + (1 - alpha) * self.ewma_stall_rate
            )
        self.chunks_observed += 1
        self.last_update = now

    def score(self, stall_weight: float = 10.0) -> float:
        """Higher is better: throughput minus a stall penalty."""
        return self.ewma_throughput_mbps - stall_weight * self.ewma_stall_rate


class CoordinatedAppP(AppPController):
    """Fleet-level CDN selection from aggregated client telemetry.

    Args:
        sim: Simulator.
        cdns: Candidate CDNs.
        control_period_s: Re-optimization period (C3 runs on seconds).
        exploration: Fraction of new sessions assigned to a random
            non-best CDN so quality estimates never go stale.
        move_budget: Max sessions migrated per control round -- the
            damping that prevents the control plane from thundering.
        score_margin_mbps: Required score gap before migrating.
        ewma_alpha: Smoothing factor of the quality estimators.
    """

    def __init__(
        self,
        sim: Simulator,
        cdns: Optional[List[Cdn]] = None,
        control_period_s: float = 10.0,
        exploration: float = 0.05,
        move_budget: int = 4,
        score_margin_mbps: float = 1.0,
        ewma_alpha: float = 0.2,
        **kwargs,
    ):
        if not 0 <= exploration < 1:
            raise ValueError(f"exploration out of range: {exploration!r}")
        if move_budget < 0:
            raise ValueError(f"move_budget must be >= 0, got {move_budget!r}")
        super().__init__(sim, cdns, **kwargs)
        self.exploration = exploration
        self.move_budget = move_budget
        self.score_margin_mbps = score_margin_mbps
        self.ewma_alpha = ewma_alpha
        self.quality: Dict[str, CdnQuality] = {
            cdn.name: CdnQuality() for cdn in self.cdns
        }
        self.migrations = 0
        self._last_stall: Dict[str, float] = {}
        self._rng = self.sim.rng.get(f"controlplane:{self.name}")
        self._process = PeriodicProcess(
            self.sim, control_period_s, self._control_step, name="controlplane"
        )

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    # telemetry ingestion
    # ------------------------------------------------------------------
    def on_chunk(self, player: AdaptivePlayer, record: ChunkRecord) -> None:
        previous_stall = self._last_stall.get(player.session_id, 0.0)
        stall_delta = max(0.0, record.rebuffer_time_s - previous_stall)
        self._last_stall[player.session_id] = record.rebuffer_time_s
        quality = self.quality.get(record.cdn_name)
        if quality is not None:
            quality.observe(
                record.throughput_mbps, stall_delta, self.ewma_alpha, self.sim.now
            )
        super().on_chunk(player, record)

    def on_session_end(self, player: AdaptivePlayer) -> None:
        self._last_stall.pop(player.session_id, None)
        super().on_session_end(player)

    # ------------------------------------------------------------------
    # assignment & reaction
    # ------------------------------------------------------------------
    def best_cdn(self) -> Cdn:
        """The highest-scoring CDN with capacity (first CDN on a tie)."""
        candidates = [cdn for cdn in self.cdns if cdn.has_capacity()]
        if not candidates:
            return self.cdns[0]
        return max(candidates, key=lambda cdn: self.quality[cdn.name].score())

    def assign(self, player: AdaptivePlayer) -> SessionAssignment:
        self._sessions[player.session_id] = _SessionState()
        self._active_players[player.session_id] = player
        others = [cdn for cdn in self.cdns if cdn.has_capacity()]
        if (
            len(others) > 1
            and self._rng.random() < self.exploration
        ):
            choice = self._rng.choice(others)
        else:
            choice = self.best_cdn()
        return SessionAssignment(cdn=choice)

    def _react(
        self,
        player: AdaptivePlayer,
        record: ChunkRecord,
        state: _SessionState,
    ) -> bool:
        """Per-session fallback between control rounds: move a suffering
        session to the fleet's best CDN if it is measurably better."""
        assert player.cdn is not None
        best = self.best_cdn()
        if best.name == player.cdn.name:
            return False
        gap = (
            self.quality[best.name].score()
            - self.quality[player.cdn.name].score()
        )
        if gap < self.score_margin_mbps:
            return False
        return self._switch_cdn(player, best, reason="coordinated-fallback")

    # ------------------------------------------------------------------
    # the periodic global step
    # ------------------------------------------------------------------
    def _control_step(self) -> None:
        """Migrate up to ``move_budget`` sessions off the worst CDN."""
        if len(self.cdns) < 2:
            return
        best = self.best_cdn()
        scored = sorted(
            self.cdns, key=lambda cdn: self.quality[cdn.name].score()
        )
        worst = scored[0]
        if worst.name == best.name:
            return
        gap = self.quality[best.name].score() - self.quality[worst.name].score()
        if gap < self.score_margin_mbps:
            return
        moved = 0
        for player in list(self._active_players.values()):
            if moved >= self.move_budget:
                break
            if player.cdn is None or player.cdn.name != worst.name:
                continue
            if not best.has_capacity():
                break
            if self._switch_cdn(player, best, reason="coordinated-migration"):
                moved += 1
                self.migrations += 1

    def quality_report(self) -> Dict[str, Dict[str, float]]:
        """Fleet view for dashboards/tests: per-CDN quality estimates."""
        return {
            name: {
                "throughput_mbps": quality.ewma_throughput_mbps,
                "stall_rate": quality.ewma_stall_rate,
                "score": quality.score(),
                "chunks": float(quality.chunks_observed),
            }
            for name, quality in self.quality.items()
        }
