"""Looking-glass query servers: the concrete EONA-A2I / EONA-I2A.

§3: "InfPs and AppPs can establish 'looking glass'-like servers that
can be queried to implement the respective interfaces."  A
:class:`LookingGlass` is owned by one provider, registers named query
handlers, and on every query enforces, in order:

1. **opt-in access control** -- the requester needs a grant;
2. **staleness** -- handlers can be registered with a refresh period,
   so queriers see periodic snapshots, not live state;
3. **field narrowing** -- the grant's field list is applied to each
   payload (schemas serialize to dicts for this).

Both interfaces are instances of the same class; what differs is who
owns them and which queries they register.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.core.privacy import blind_fields
from repro.core.registry import Grant, OptInRegistry
from repro.core.staleness import StaleView
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator

#: LookingGlass ``kind`` -> trace event kind for served queries.
_QUERY_EVENT_KIND = {"a2i": "a2i-report", "i2a": "i2a-hint"}


@dataclass(frozen=True)
class QueryResult:
    """Answer to one looking-glass query.

    Attributes:
        query: The query name.
        payload: A dict, or list of dicts, with narrowing applied.
        age_s: Staleness of the underlying snapshot.
        cause: Causal span ID of the served-query trace event (None
            when tracing is off or the glass is outside the A2I/I2A
            taxonomy).  Consumers thread it into the trace events of
            the actions the answer triggers (DESIGN.md §13).
    """

    query: str
    payload: Any
    age_s: float
    cause: Optional[int] = None


class UnknownQueryError(Exception):
    """The looking glass exports no such query."""


class GlassUnavailableError(Exception):
    """The looking glass is down (outage) or dropping queries (fault)."""


#: Fault modes settable via :meth:`LookingGlass.set_fault_mode`.
FAULT_MODES = (None, "drop", "delay", "freeze")


class LookingGlass:
    """One provider's EONA query server.

    Args:
        sim: Simulator (needed for staleness snapshots).
        owner: Provider name; grants are checked against it.
        registry: The shared opt-in registry.
        kind: Which EONA interface this glass realizes (``"a2i"`` or
            ``"i2a"``); served queries emit the matching trace event.
            Empty (the default) for glasses outside the taxonomy.
    """

    def __init__(
        self, sim: Simulator, owner: str, registry: OptInRegistry, kind: str = ""
    ):
        self.sim = sim
        self.owner = owner
        self.registry = registry
        self.kind = kind
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self._views: Dict[str, StaleView] = {}
        self.queries_served = 0
        self.queries_denied = 0
        self.queries_failed = 0
        self.available = True
        self._fault_mode: Optional[str] = None
        self._fault_delay_s = 0.0
        #: Optional provenance hook set by the owner: returns the cause
        #: ID of the upstream event the glass's current answers derive
        #: from (e.g. the AppP's last aggregation flush), or None.
        #: Served-query trace events carry it as ``parent``.
        self.provenance: Optional[Callable[[], Optional[int]]] = None

    def register(
        self,
        query: str,
        handler: Callable[..., Any],
        refresh_period_s: float = 0.0,
        publish_delay_s: float = 0.0,
    ) -> None:
        """Export ``query``; with a refresh period, answers are snapshots.

        Snapshot handlers must be zero-argument (parameters cannot be
        baked into a shared snapshot); live handlers may take keyword
        parameters passed through from the query.
        """
        if refresh_period_s > 0:
            self._views[query] = StaleView(
                self.sim, handler, refresh_period_s, publish_delay_s
            )
        self._handlers[query] = handler

    def set_refresh_period(self, query: str, refresh_period_s: float) -> None:
        """Re-pace a snapshot query (the staleness-sweep knob)."""
        if query not in self._handlers:
            raise UnknownQueryError(query)
        view = self._views.pop(query, None)
        if view is not None:
            view.stop()
        if refresh_period_s > 0:
            self._views[query] = StaleView(
                self.sim, self._handlers[query], refresh_period_s
            )

    def exported_queries(self) -> List[str]:
        return sorted(self._handlers)

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.faults.injector)
    # ------------------------------------------------------------------
    def set_available(self, available: bool) -> None:
        """Take the glass dark (every query raises) or bring it back."""
        self.available = available

    def set_fault_mode(self, mode: Optional[str], delay_s: float = 0.0) -> None:
        """Degrade query answers without taking the glass fully down.

        Args:
            mode: ``"drop"`` -- queries raise
                :class:`GlassUnavailableError`; ``"delay"`` -- answers
                flow but report ``delay_s`` extra staleness;
                ``"freeze"`` -- snapshot views stop refreshing, so the
                glass keeps answering with ever-older data (live
                zero-period queries are unaffected); ``None`` -- clear
                the fault (frozen views are re-paced with a fresh
                snapshot taken now).
            delay_s: Extra reported age for ``"delay"`` mode.
        """
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r} (known: {FAULT_MODES})")
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s!r}")
        previous = self._fault_mode
        self._fault_mode = mode
        self._fault_delay_s = delay_s if mode == "delay" else 0.0
        if mode == "freeze" and previous != "freeze":
            for name in sorted(self._views):
                self._views[name].stop()
        elif previous == "freeze" and mode != "freeze":
            for name in sorted(self._views):
                old = self._views[name]
                old.stop()
                self._views[name] = StaleView(
                    self.sim, old.fetch, old.refresh_period_s, old.publish_delay_s
                )

    @property
    def fault_mode(self) -> Optional[str]:
        return self._fault_mode

    def query(self, requester: str, query: str, **params: Any) -> QueryResult:
        """Run a query as ``requester``, enforcing grants and narrowing."""
        if query not in self._handlers:
            self.queries_failed += 1
            raise UnknownQueryError(f"{self.owner!r} does not export {query!r}")
        if not self.available or self._fault_mode == "drop":
            self.queries_failed += 1
            reason = "down" if not self.available else "dropping queries"
            raise GlassUnavailableError(f"{self.owner!r} glass is {reason}")
        try:
            grant = self.registry.check(self.owner, requester, query)
        except Exception:
            self.queries_denied += 1
            raise
        view = self._views.get(query)
        try:
            if view is not None:
                raw, age = view.get()
            else:
                raw, age = self._handlers[query](**params), 0.0
        except Exception:
            self.queries_failed += 1
            raise
        age += self._fault_delay_s
        self.queries_served += 1
        cause: Optional[int] = None
        if TRACER.enabled:
            event_kind = _QUERY_EVENT_KIND.get(self.kind)
            if event_kind is not None:
                cause = TRACER.new_cause()
                extra: Dict[str, object] = {}
                if self.provenance is not None:
                    parent = self.provenance()
                    if parent is not None:
                        extra["parent"] = parent
                TRACER.emit(
                    event_kind,
                    via="query",
                    owner=self.owner,
                    requester=requester,
                    query=query,
                    age_s=age,
                    cause=cause,
                    **extra,
                )
        return QueryResult(
            query=query, payload=self._narrow(raw, grant), age_s=age, cause=cause
        )

    # ------------------------------------------------------------------
    def _narrow(self, raw: Any, grant: Grant) -> Any:
        if grant.all_fields:
            return self._serialize(raw)
        serialized = self._serialize(raw)
        if isinstance(serialized, list):
            return [blind_fields(item, grant.fields) for item in serialized]
        if isinstance(serialized, Mapping):
            return blind_fields(serialized, grant.fields)
        return serialized

    @staticmethod
    def _serialize(raw: Any) -> Any:
        if hasattr(raw, "to_dict"):
            return raw.to_dict()
        if isinstance(raw, list):
            return [
                item.to_dict() if hasattr(item, "to_dict") else item for item in raw
            ]
        return raw
