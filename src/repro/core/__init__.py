"""EONA core: the paper's primary contribution.

Two information-sharing interfaces (A2I and I2A) realized as
looking-glass query servers with opt-in access control, privacy
filtering, and explicit staleness; EONA-enhanced control logic for the
application provider (:mod:`repro.core.appp`) and the infrastructure
provider (:mod:`repro.core.infp`); the §4 interface-design recipe
(:mod:`repro.core.recipe`); and the damping machinery §5 proposes for
coupled-control-loop stability (:mod:`repro.core.damping`).

Nothing here touches the data plane: providers keep their own knobs and
their own control loops, exactly as the paper prescribes.
"""

from repro.core.schemas import (
    CongestionSignal,
    DemandEstimate,
    PeeringDecision,
    PeeringPointInfo,
    QoeAggregate,
    ServerHintInfo,
)
from repro.core.registry import AccessDeniedError, Grant, OptInRegistry
from repro.core.context import SimContext, build_context
from repro.core.privacy import blind_fields, k_suppress, laplace_noise
from repro.core.staleness import StaleView
from repro.core.interfaces import LookingGlass, QueryResult
from repro.core.damping import ExponentialBackoff, HysteresisGate
from repro.core.oscillation import AdaptiveDamper, OscillationDetector
from repro.core.appp import (
    AppPController,
    EonaAppP,
    MultiIspEonaAppP,
    StatusQuoAppP,
)
from repro.core.controlplane import CdnQuality, CoordinatedAppP
from repro.core.infp import EnergyManager, EonaInfP, StatusQuoInfP
from repro.core.recipe import (
    Datum,
    InterfaceSpec,
    Knob,
    OwnershipMap,
    UseCase,
    derive_wide_interface,
    narrow_interface,
    utility_from_observations,
)

__all__ = [
    "AccessDeniedError",
    "AdaptiveDamper",
    "AppPController",
    "CdnQuality",
    "CongestionSignal",
    "CoordinatedAppP",
    "Datum",
    "DemandEstimate",
    "EnergyManager",
    "EonaAppP",
    "EonaInfP",
    "ExponentialBackoff",
    "Grant",
    "HysteresisGate",
    "InterfaceSpec",
    "Knob",
    "LookingGlass",
    "MultiIspEonaAppP",
    "OptInRegistry",
    "OscillationDetector",
    "OwnershipMap",
    "PeeringDecision",
    "PeeringPointInfo",
    "QoeAggregate",
    "QueryResult",
    "ServerHintInfo",
    "SimContext",
    "StaleView",
    "StatusQuoAppP",
    "StatusQuoInfP",
    "UseCase",
    "blind_fields",
    "build_context",
    "derive_wide_interface",
    "k_suppress",
    "laplace_noise",
    "narrow_interface",
    "utility_from_observations",
]
