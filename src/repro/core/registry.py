"""Opt-in access control for EONA interfaces.

Participation in EONA is optional and pairwise (§3): a provider opts in
per collaborator, per query, per field.  The registry stores grants and
the looking glass enforces them; a query with no grant raises
:class:`AccessDeniedError`, and a grant with a field list narrows the
returned payload (the mechanism behind §4's wide-vs-narrow interface
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple


class AccessDeniedError(Exception):
    """The requester has no grant for this query."""


#: Sentinel meaning "all fields of the payload".
ALL_FIELDS = "*"


@dataclass(frozen=True)
class Grant:
    """Permission for one (owner → requester, query) edge.

    Attributes:
        owner: Provider exporting the interface.
        requester: Provider allowed to query.
        query: Query name (e.g. ``"congestion"``) or ``"*"`` for all.
        fields: Payload fields the requester may see; ``frozenset({"*"})``
            means all fields.
    """

    owner: str
    requester: str
    query: str
    fields: FrozenSet[str] = frozenset({ALL_FIELDS})

    @property
    def all_fields(self) -> bool:
        return ALL_FIELDS in self.fields


class OptInRegistry:
    """Pairwise grant store shared by every looking glass in a deployment."""

    def __init__(self) -> None:
        self._grants: Dict[Tuple[str, str, str], Grant] = {}

    def grant(
        self,
        owner: str,
        requester: str,
        query: str = "*",
        fields: Iterable[str] = (ALL_FIELDS,),
    ) -> Grant:
        """Record (or overwrite) a grant and return it."""
        grant = Grant(
            owner=owner,
            requester=requester,
            query=query,
            fields=frozenset(fields),
        )
        self._grants[(owner, requester, query)] = grant
        return grant

    def revoke(self, owner: str, requester: str, query: str = "*") -> bool:
        """Remove a grant; returns whether one existed."""
        return self._grants.pop((owner, requester, query), None) is not None

    def lookup(self, owner: str, requester: str, query: str) -> Optional[Grant]:
        """The applicable grant (query-specific beats wildcard), or None."""
        specific = self._grants.get((owner, requester, query))
        if specific is not None:
            return specific
        return self._grants.get((owner, requester, "*"))

    def check(self, owner: str, requester: str, query: str) -> Grant:
        """The applicable grant, or raise :class:`AccessDeniedError`."""
        grant = self.lookup(owner, requester, query)
        if grant is None:
            raise AccessDeniedError(
                f"{requester!r} has no grant for {query!r} on {owner!r}"
            )
        return grant

    def collaborators_of(self, owner: str) -> FrozenSet[str]:
        return frozenset(
            requester for (o, requester, _), _g in self._grants.items() if o == owner
        )
