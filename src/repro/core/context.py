"""The simulation context: one handle for a whole simulated world.

Every experiment needs the same quartet — a :class:`Simulator`, a
:class:`Topology`, a :class:`FluidNetwork` bound to both, and the named
RNG streams — plus the opt-in registry that gates the EONA interfaces.
Before this module, each scenario builder and several controllers
hand-assembled and hand-threaded those pieces; :class:`SimContext`
bundles them, :func:`build_context` is the single assembly point, and
the control-plane constructors (:class:`~repro.core.appp.AppPController`,
:class:`~repro.core.infp.StatusQuoInfP`, ...) accept a context in place
of the individual pieces.

The context also carries the :class:`EngineConfig` of the network's
allocation engine, so an experiment that wants the from-scratch
allocator (ablation) or a different full-solve threshold configures it
in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.core.registry import OptInRegistry
from repro.network.allocator import EngineConfig
from repro.obs.trace import TRACER
from repro.network.fluidsim import FluidNetwork
from repro.network.topology import Topology
from repro.simkernel.kernel import Simulator
from repro.simkernel.rngstreams import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cdn.provider import Cdn


@dataclass
class SimContext:
    """Everything a simulated world is made of, in one object.

    Attributes:
        sim: The discrete-event simulator (clock + queue).
        topology: The world's topology.
        network: The fluid network bound to ``sim`` and ``topology``.
        rng: Named RNG streams (same object as ``sim.rng``).
        engine_config: The allocation engine's configuration.
        registry: Opt-in grants gating the EONA looking glasses.
        cdns: CDN providers registered into this world, in registration
            order (the AppP's default preference order).
    """

    sim: Simulator
    topology: Topology
    network: FluidNetwork
    rng: RngStreams
    engine_config: EngineConfig
    registry: OptInRegistry = field(default_factory=OptInRegistry)
    cdns: List["Cdn"] = field(default_factory=list)

    @property
    def now(self) -> float:
        return self.sim.now

    def register_cdn(self, cdn: "Cdn") -> "Cdn":
        """Track a CDN provider as part of this world.  Idempotent."""
        if cdn not in self.cdns:
            self.cdns.append(cdn)
        return cdn

    def run(self, until: Optional[float] = None) -> float:
        """Convenience passthrough to :meth:`Simulator.run`."""
        return self.sim.run(until=until)

    def allocation_counters(self) -> dict:
        """The network's engine/router counters (see FluidNetwork)."""
        return self.network.allocation_counters()


def build_context(
    topology: Optional[Topology] = None,
    seed: int = 0,
    name: str = "net",
    engine_config: Optional[EngineConfig] = None,
    max_rate_mbps: float = 1e5,
    registry: Optional[OptInRegistry] = None,
) -> SimContext:
    """Assemble a simulated world: the one entry point experiments use.

    Args:
        topology: A pre-built topology; a fresh empty one named ``name``
            is created when omitted.  Note the fluid network snapshots
            link statistics at construction, so pass the topology with
            its links already added (the scenario builders do).
        seed: Root seed of the simulator's RNG streams.
        name: Name of the topology when one is created here.
        engine_config: Allocation-engine configuration; defaults to the
            incremental engine with ``max_rate_mbps`` as the flow cap.
        max_rate_mbps: Per-flow rate cap used when ``engine_config`` is
            omitted.
        registry: Opt-in registry; a fresh empty one when omitted.
    """
    sim = Simulator(seed=seed)
    # Trace events are stamped with the *newest* world's simulated time;
    # experiments build and run worlds sequentially, so this is correct
    # for every supported run shape (and free when tracing is off).
    TRACER.bind_clock(lambda: sim.now)
    if topology is None:
        topology = Topology(name)
    if engine_config is None:
        engine_config = EngineConfig(max_rate_mbps=max_rate_mbps)
    network = FluidNetwork(sim, topology, engine_config=engine_config)
    return SimContext(
        sim=sim,
        topology=topology,
        network=network,
        rng=sim.rng,
        engine_config=engine_config,
        registry=registry if registry is not None else OptInRegistry(),
    )


def resolve_sim(sim: Union[Simulator, SimContext]) -> Simulator:
    """Accept either a simulator or a context where a sim is expected."""
    return sim.sim if isinstance(sim, SimContext) else sim


def resolve_sim_network(
    sim: Union[Simulator, SimContext],
    network: Optional[FluidNetwork],
) -> Tuple[Simulator, FluidNetwork]:
    """Unpack ``(sim, network)`` from either call style.

    Controllers that took ``(sim, network, ...)`` now also accept
    ``(ctx, ...)``; this helper keeps those constructors one line.
    """
    if isinstance(sim, SimContext):
        return sim.sim, network if network is not None else sim.network
    if network is None:
        raise TypeError("network is required when sim is not a SimContext")
    return sim, network
