"""Server-side glass service: frame dispatch, control plane, sim pacing.

:class:`GlassService` is the one frame handler every adapter serves:
decode a :class:`~repro.transport.codec.QueryRequest`, route it to the
registered glass by owner name, answer with a
:class:`~repro.transport.codec.QueryReply` or map the glass exception
onto an :class:`~repro.transport.codec.ErrorReply` (type name
preserved, so the client re-raises exactly).

Besides the provider glasses it answers a small control vocabulary
under the reserved ``__control__`` owner:

* ``__ping__`` -- liveness; payload echoes the server clock;
* ``__queries__`` -- every routable (owner, query) pair;
* ``__trace__`` -- trace streaming over the same wire: returns the
  server tracer's buffered events from a client-held cursor, so a
  client can pull the PR 4/9 event stream incrementally.

:class:`SimPacer` advances a simulator against the host wall clock
(scaled), which is the "shared sim-or-wall clock" leg of the service
runner: both processes pace their own simulation at the same scale, so
``served_at`` stamps and ``age_s`` values are comparable across the
wire (the clock contract, DESIGN.md §14).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.interfaces import LookingGlass, QueryResult
from repro.obs.profile import wall_clock
from repro.obs.trace import TRACER
from repro.simkernel.kernel import Simulator
from repro.transport.codec import (
    CodecError,
    ErrorReply,
    QueryReply,
    QueryRequest,
    decode,
    encode,
)

#: Reserved owner name for the service's own control queries.
CONTROL_OWNER = "__control__"


class GlassService:
    """Route wire queries to the glasses of one serving process.

    Args:
        clock: The server's time base for ``served_at`` stamps --
            usually the paced simulator's ``now``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._glasses: Dict[str, LookingGlass] = {}
        self.clock = clock or (lambda: 0.0)
        self.requests_handled = 0
        self.requests_failed = 0

    def add_glass(self, glass: LookingGlass) -> None:
        """Export ``glass`` under its owner name."""
        if glass.owner == CONTROL_OWNER:
            raise ValueError(f"{CONTROL_OWNER!r} is reserved for the service")
        if glass.owner in self._glasses:
            raise ValueError(f"duplicate glass owner {glass.owner!r}")
        self._glasses[glass.owner] = glass

    def owners(self) -> List[str]:
        return sorted(self._glasses)

    # ------------------------------------------------------------------
    def handle_frame(self, frame: str) -> str:
        """One request frame in, one reply frame out.  Never raises."""
        try:
            request = decode(frame)
        except CodecError as error:
            self.requests_failed += 1
            return encode(ErrorReply(msg_id=0, error="CodecError", message=str(error)))
        if not isinstance(request, QueryRequest):
            self.requests_failed += 1
            return encode(
                ErrorReply(
                    msg_id=0,
                    error="CodecError",
                    message=f"expected QueryRequest, got {type(request).__name__}",
                )
            )
        try:
            result = self._dispatch(request)
        except Exception as error:  # noqa: BLE001 -- type name crosses the wire
            self.requests_failed += 1
            return encode(
                ErrorReply(
                    msg_id=request.msg_id,
                    error=type(error).__name__,
                    message=str(error),
                )
            )
        self.requests_handled += 1
        return encode(
            QueryReply.from_result(
                msg_id=request.msg_id, served_at=self.clock(), result=result
            )
        )

    def _dispatch(self, request: QueryRequest) -> QueryResult:
        if request.owner == CONTROL_OWNER:
            return self._control(request)
        glass = self._glasses.get(request.owner)
        if glass is None:
            raise KeyError(
                f"no glass for owner {request.owner!r} "
                f"(serving: {', '.join(self.owners()) or 'none'})"
            )
        return glass.query(request.requester, request.query, **request.params)

    # ------------------------------------------------------------------
    def _control(self, request: QueryRequest) -> QueryResult:
        if request.query == "__ping__":
            return QueryResult(
                query="__ping__", payload={"t": self.clock()}, age_s=0.0
            )
        if request.query == "__queries__":
            exported = []
            for owner in sorted(self._glasses):
                for name in self._glasses[owner].exported_queries():
                    exported.append({"owner": owner, "query": name})
            return QueryResult(query="__queries__", payload=exported, age_s=0.0)
        if request.query == "__trace__":
            return self._trace_since(request)
        raise KeyError(f"unknown control query {request.query!r}")

    def _trace_since(self, request: QueryRequest) -> QueryResult:
        """Stream buffered trace events from a client-held cursor.

        The cursor is the total ``TRACER.emitted`` count at the end of
        the previous pull; events that have already fallen off the ring
        are gone (the payload reports the gap so the client can tell).
        """
        since = int(request.params.get("since", 0))  # type: ignore[arg-type]
        limit = int(request.params.get("limit", 1000))  # type: ignore[arg-type]
        buffered = TRACER.events() if TRACER.enabled else []
        emitted = TRACER.emitted
        first_buffered = emitted - len(buffered)
        start = max(0, since - first_buffered)
        window = buffered[start:start + max(0, limit)]
        return QueryResult(
            query="__trace__",
            payload={
                "events": window,
                "next": first_buffered + start + len(window),
                "emitted": emitted,
                "dropped": max(0, first_buffered - since),
            },
            age_s=0.0,
        )


class SimPacer:
    """Advance a simulator in step with the host wall clock.

    ``tick()`` runs the simulator up to ``elapsed_wall * time_scale``
    and reports the sim time reached; a serving loop calls it between
    socket polls.  ``time_scale`` > 1 runs the world faster than real
    time (the CI smoke compresses a 600 s world into seconds);
    ``float("inf")`` is rejected -- eager draining belongs to plain
    ``sim.run``.
    """

    def __init__(
        self,
        sim: Simulator,
        time_scale: float = 1.0,
        clock: Callable[[], float] = wall_clock,
    ):
        if not (time_scale > 0) or time_scale != time_scale:
            raise ValueError(f"time_scale must be finite > 0, got {time_scale!r}")
        if time_scale == float("inf"):
            raise ValueError("time_scale must be finite; use sim.run to drain")
        self.sim = sim
        self.time_scale = time_scale
        self.clock = clock
        self._started_wall: Optional[float] = None

    def start(self) -> None:
        self._started_wall = self.clock()

    def target(self) -> float:
        """Sim time the wall clock has earned so far."""
        if self._started_wall is None:
            self.start()
        return (self.clock() - self._started_wall) * self.time_scale

    def tick(self, horizon_s: Optional[float] = None) -> float:
        """Advance the sim to the earned target (capped at ``horizon_s``)."""
        goal = self.target()
        if horizon_s is not None:
            goal = min(goal, horizon_s)
        if goal > self.sim.now:
            self.sim.run(until=goal)
        return self.sim.now


def drain_trace(
    glass: "object", requester: str = CONTROL_OWNER, limit: int = 1000
) -> Tuple[List[dict], int]:
    """Pull every currently buffered server trace event over the wire.

    ``glass`` is a client proxy addressed at ``__control__`` (any object
    with the ``query`` surface).  Returns ``(events, emitted_total)``.
    """
    events: List[dict] = []
    cursor = 0
    while True:
        result = glass.query(
            requester, "__trace__", since=cursor, limit=limit
        )
        payload = result.payload
        batch = payload.get("events", [])
        events.extend(batch)
        cursor = int(payload.get("next", cursor))
        if not batch or cursor >= int(payload.get("emitted", cursor)):
            break
    return events, cursor
