"""The ``Transport`` protocol and the pluggable adapter registry.

A transport moves codec frames (one JSON line each, DESIGN.md §14)
between a client proxy and a glass service.  Two calling conventions,
because the repo spans two time domains:

* :meth:`Transport.request` -- the synchronous RPC path: send one frame,
  return the reply frame.  Used when an answer can be produced without
  advancing time (zero-latency loopback; wall-clock TCP, where blocking
  the caller *is* the latency).
* :meth:`Transport.send_request` -- the pipelined path: enqueue a frame,
  have the reply delivered to a callback later.  Sim-clock adapters use
  it so injected wire latency occupies *simulated* time; the client
  proxy then answers queries from its last delivered reply, which is
  how latency becomes visible to the control loop (E20).

``in_process`` declares whether both endpoints share this process's
tracer: a remote peer's ``cause`` IDs are meaningless here and the
client proxy must remap them (DESIGN.md §14).  Fault injection
(latency / drop / reorder) lives in :class:`FaultKnobs`, deterministic
by construction -- counters, not random draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.trace import TRACER


class TransportError(Exception):
    """The transport failed to move a frame (connection loss, close)."""


class TransportTimeout(TransportError):
    """No reply arrived within the caller's timeout."""


class TransportClosed(TransportError):
    """The transport was closed (or a replay feed ran dry)."""


@dataclass(frozen=True)
class FaultKnobs:
    """Deterministic per-message fault injection, driven by the sim clock.

    Attributes:
        latency_s: One-way frame delay; a request/reply round trip takes
            ``2 * latency_s`` of simulated time.  Zero keeps the adapter
            synchronous (the equivalence-gate configuration).
        drop_every: Drop every Nth request (1-based count; 0 disables).
            ``drop_every=1`` drops everything -- the outage case.
        reorder_every: Hold every Nth reply back one extra round trip so
            it arrives after its successor (0 disables); exercises
            ``msg_id`` correlation.
    """

    latency_s: float = 0.0
    drop_every: int = 0
    reorder_every: int = 0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s!r}")
        if self.drop_every < 0 or self.reorder_every < 0:
            raise ValueError("drop_every/reorder_every must be >= 0")

    def drops(self, seq: int) -> bool:
        """Whether the ``seq``-th message (1-based) is dropped."""
        return self.drop_every > 0 and seq % self.drop_every == 0

    def reorders(self, seq: int) -> bool:
        """Whether the ``seq``-th reply (1-based) is held back."""
        return self.reorder_every > 0 and seq % self.reorder_every == 0


class Transport:
    """Base adapter: frame-level send/receive with stats and tracing.

    Subclasses implement :meth:`request` (sync) and/or
    :meth:`send_request` (pipelined) and declare :attr:`in_process`.
    """

    #: True when both endpoints share this process's tracer/cause space.
    in_process = False
    #: True when replies arrive via callbacks (sim-time pipelining).
    pipelined = False
    #: Adapter name as registered (set by create_transport).
    name = ""

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0

    def request(self, frame: str, timeout_s: float) -> str:
        """Send one frame, return the reply frame (synchronous RPC)."""
        raise TransportError(
            f"{type(self).__name__} has no synchronous request path"
        )

    def send_request(
        self, frame: str, on_reply: Callable[[str], None]
    ) -> None:
        """Enqueue one frame; ``on_reply`` fires when the reply lands."""
        raise TransportError(
            f"{type(self).__name__} has no pipelined request path"
        )

    def close(self) -> None:
        """Release sockets/files; further use raises TransportClosed."""

    # -- shared trace helpers (transport.* events carry no cause IDs:
    # minting one would shift every downstream span ID and break the
    # byte-identical equivalence gate) --------------------------------
    def _trace(self, what: str, **fields: object) -> None:
        if TRACER.enabled:
            TRACER.emit(f"transport.{what}", adapter=self.name, **fields)

    def stats(self) -> Dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
        }


#: Adapter name -> factory (populated at import time by the adapter
#: modules; identical in every process, like the experiment registry).
_TRANSPORTS: Dict[str, Callable[..., Transport]] = {}


def register_transport(
    name: str,
) -> Callable[[Callable[..., Transport]], Callable[..., Transport]]:
    """Decorator: register a transport factory under ``name``."""

    def wrap(factory: Callable[..., Transport]) -> Callable[..., Transport]:
        if name in _TRANSPORTS:
            raise ValueError(f"duplicate transport adapter {name!r}")
        _TRANSPORTS[name] = factory
        return factory

    return wrap


def create_transport(name: str, **kwargs: object) -> Transport:
    """Instantiate a registered adapter (``loopback``/``tcp``/...)."""
    factory = _TRANSPORTS.get(name)
    if factory is None:
        known = ", ".join(sorted(_TRANSPORTS)) or "(none)"
        raise KeyError(f"unknown transport {name!r} (known: {known})")
    transport = factory(**kwargs)
    transport.name = name
    return transport


def transport_names() -> tuple:
    """Registered adapter names, sorted."""
    return tuple(sorted(_TRANSPORTS))


class FaultyTransport(Transport):
    """Client-side fault decorator: apply :class:`FaultKnobs` to any adapter.

    Wraps an inner transport and drops every Nth *request* before it
    reaches the wire -- the deterministic way to force the retry/
    timeout/backoff path over adapters (like TCP) whose own latency is
    wall-clock.  Dropped requests raise :class:`TransportTimeout`
    immediately: in simulated time there is nothing to wait for, and on
    the wall-clock path the caller's timeout budget is charged by the
    proxy's retry accounting, not by sleeping.
    """

    def __init__(self, inner: Transport, knobs: Optional[FaultKnobs] = None):
        super().__init__()
        self.inner = inner
        self.knobs = knobs or FaultKnobs()
        self._seq = 0
        self.name = f"faulty+{inner.name or type(inner).__name__}"

    @property
    def in_process(self) -> bool:  # type: ignore[override]
        return self.inner.in_process

    @property
    def pipelined(self) -> bool:  # type: ignore[override]
        return self.inner.pipelined

    def request(self, frame: str, timeout_s: float) -> str:
        self._seq += 1
        self.frames_sent += 1
        if self.knobs.drops(self._seq):
            self.frames_dropped += 1
            self._trace("drop", seq=self._seq)
            raise TransportTimeout(
                f"frame {self._seq} dropped by fault knobs "
                f"(drop_every={self.knobs.drop_every})"
            )
        reply = self.inner.request(frame, timeout_s)
        self.frames_received += 1
        return reply

    def send_request(
        self, frame: str, on_reply: Callable[[str], None]
    ) -> None:
        self._seq += 1
        self.frames_sent += 1
        if self.knobs.drops(self._seq):
            self.frames_dropped += 1
            self._trace("drop", seq=self._seq)
            return
        self.inner.send_request(frame, on_reply)

    def close(self) -> None:
        self.inner.close()
