"""In-process loopback transport: deterministic, sim-clock driven.

The reference adapter and the equivalence-gate configuration.  With the
default zero-latency knobs a request is dispatched *synchronously*
through the service's frame handler -- the server glass runs inside the
caller's event, emits its trace events at the same sim time, and mints
the same cause IDs as a direct in-process call would.  The only
difference from calling the glass directly is that every payload takes
a full encode -> decode round trip through the ``eona-msg/1`` codec,
which is exactly the contract the byte-identical gate hardens
(DESIGN.md §14).

With ``latency_s > 0`` the adapter switches to the pipelined path:
requests and replies travel as scheduled sim events (half the latency
each way), replies land in the client proxy's cache, and the control
loop acts on answers one delivery behind -- wire latency becomes
causal-loop latency, measurably (E20).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simkernel.kernel import Simulator
from repro.transport.base import (
    FaultKnobs,
    Transport,
    TransportClosed,
    TransportTimeout,
    register_transport,
)

FrameHandler = Callable[[str], str]


@register_transport("loopback")
class LoopbackTransport(Transport):
    """Queue-free in-process transport over a frame handler.

    Args:
        handler: The service side: one request frame -> one reply frame
            (:meth:`repro.transport.service.GlassService.handle_frame`).
        sim: Required for pipelined mode; schedules deliveries.
        knobs: Deterministic latency/drop/reorder injection.
    """

    in_process = True

    def __init__(
        self,
        handler: FrameHandler,
        sim: Optional[Simulator] = None,
        knobs: Optional[FaultKnobs] = None,
    ):
        super().__init__()
        self.handler = handler
        self.sim = sim
        self.knobs = knobs or FaultKnobs()
        if self.knobs.latency_s > 0 and sim is None:
            raise ValueError("pipelined loopback (latency_s > 0) needs a sim")
        self._seq = 0
        self._closed = False
        self._held: Optional[tuple] = None

    @property
    def pipelined(self) -> bool:  # type: ignore[override]
        return self.knobs.latency_s > 0

    # ------------------------------------------------------------------
    # synchronous path (zero latency)
    # ------------------------------------------------------------------
    def request(self, frame: str, timeout_s: float) -> str:
        if self._closed:
            raise TransportClosed("loopback transport is closed")
        if self.pipelined:
            raise TransportTimeout(
                f"loopback latency {self.knobs.latency_s:g}s exceeds a "
                "synchronous call; use the pipelined path"
            )
        self._seq += 1
        self.frames_sent += 1
        self._trace("send", seq=self._seq)
        if self.knobs.drops(self._seq):
            self.frames_dropped += 1
            self._trace("drop", seq=self._seq)
            raise TransportTimeout(
                f"frame {self._seq} dropped (drop_every={self.knobs.drop_every})"
            )
        reply = self.handler(frame)
        self.frames_received += 1
        self._trace("recv", seq=self._seq)
        return reply

    # ------------------------------------------------------------------
    # pipelined path (latency occupies sim time)
    # ------------------------------------------------------------------
    def send_request(
        self, frame: str, on_reply: Callable[[str], None]
    ) -> None:
        if self._closed:
            raise TransportClosed("loopback transport is closed")
        self._seq += 1
        seq = self._seq
        self.frames_sent += 1
        self._trace("send", seq=seq)
        if self.knobs.drops(seq):
            self.frames_dropped += 1
            self._trace("drop", seq=seq)
            return
        if not self.pipelined:
            # Zero latency: serve and deliver inline (still this event).
            on_reply(self.handler(frame))
            self.frames_received += 1
            return
        one_way = self.knobs.latency_s / 2.0
        self.sim.schedule(one_way, self._serve, frame, on_reply, seq)

    def _serve(
        self, frame: str, on_reply: Callable[[str], None], seq: int
    ) -> None:
        if self._closed:
            return
        reply = self.handler(frame)
        one_way = self.knobs.latency_s / 2.0
        delay = one_way
        if self.knobs.reorders(seq):
            # Held back a full extra round trip: the next reply overtakes.
            delay += self.knobs.latency_s
            self._trace("reorder", seq=seq)
        self.sim.schedule(delay, self._deliver, reply, on_reply, seq)

    def _deliver(
        self, reply: str, on_reply: Callable[[str], None], seq: int
    ) -> None:
        if self._closed:
            return
        self.frames_received += 1
        self._trace("recv", seq=seq)
        on_reply(reply)

    def close(self) -> None:
        self._closed = True
