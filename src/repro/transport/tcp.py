"""TCP transport: asyncio stream server and a synchronous client.

Framing is newline-delimited ``eona-msg/1`` JSON -- one frame per line,
UTF-8 -- over a persistent connection.  This is the only module in the
repository allowed to touch :mod:`asyncio`/:mod:`socket` machinery (the
``transport-io`` simlint rule); everything above it sees the
:class:`~repro.transport.base.Transport` protocol.

The client is deliberately synchronous: ``request()`` drives a private
event loop for exactly one round trip under ``asyncio.wait_for``, so
callers (the governor tick inside a simulated world, the CLI) need no
event loop of their own.  Blocking the caller for the round trip *is*
the latency on this adapter -- TCP serves the wall-clock regime, the
loopback adapter the sim-clock regime.  A timed-out or failed round
trip tears the connection down before raising, so a late reply to an
abandoned request can never be mis-correlated with the next one.

The server couples the asyncio accept loop with a
:class:`~repro.transport.service.SimPacer` tick, so a serving process
advances its simulated world in step with the wall clock between
requests (the shared-clock contract, DESIGN.md §14).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.obs.profile import wall_clock
from repro.transport.base import (
    Transport,
    TransportClosed,
    TransportError,
    TransportTimeout,
    register_transport,
)
from repro.transport.service import SimPacer

FrameHandler = Callable[[str], str]

#: Largest accepted frame; a congestion payload is ~300 bytes, trace
#: streaming batches stay well under this.
MAX_FRAME_BYTES = 4 * 1024 * 1024


class TcpGlassServer:
    """Serve a frame handler on a TCP port, pacing a sim between polls.

    Args:
        handler: Frame-level dispatcher
            (:meth:`~repro.transport.service.GlassService.handle_frame`).
        host: Bind address (default loopback).
        port: Bind port; 0 picks a free one (read :attr:`bound_port`
            inside ``on_bound``).
        pacer: Optional :class:`~repro.transport.service.SimPacer`
            ticked between accept-loop polls.
        horizon_s: Sim-time cap for the pacer (the world stops
            advancing there but the server keeps answering).
        run_for_s: Wall-clock lifetime; ``None`` serves until the
            process is interrupted.
        poll_s: Accept-loop tick period (wall seconds).
        on_bound: Callback invoked with the bound port once listening.
    """

    def __init__(
        self,
        handler: FrameHandler,
        host: str = "127.0.0.1",
        port: int = 0,
        pacer: Optional[SimPacer] = None,
        horizon_s: Optional[float] = None,
        run_for_s: Optional[float] = None,
        poll_s: float = 0.02,
        on_bound: Optional[Callable[[int], None]] = None,
    ):
        self.handler = handler
        self.host = host
        self.port = port
        self.pacer = pacer
        self.horizon_s = horizon_s
        self.run_for_s = run_for_s
        self.poll_s = poll_s
        self.on_bound = on_bound
        self.bound_port: Optional[int] = None
        self.connections = 0
        self.frames_served = 0
        self._stop = False

    def stop(self) -> None:
        """Ask the serve loop to exit after the current poll."""
        self._stop = True

    def serve(self) -> None:
        """Run the server until ``run_for_s`` elapses or :meth:`stop`."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        sockets = server.sockets or ()
        self.bound_port = sockets[0].getsockname()[1] if sockets else None
        if self.on_bound is not None and self.bound_port is not None:
            self.on_bound(self.bound_port)
        if self.pacer is not None:
            self.pacer.start()
        started = wall_clock()
        try:
            async with server:
                while not self._stop:
                    if self.pacer is not None:
                        self.pacer.tick(self.horizon_s)
                    if (
                        self.run_for_s is not None
                        and wall_clock() - started >= self.run_for_s
                    ):
                        break
                    await asyncio.sleep(self.poll_s)
        finally:
            server.close()

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                frame = line.decode("utf-8", errors="replace").strip()
                if not frame:
                    continue
                reply = self.handler(frame)
                writer.write(reply.encode("utf-8") + b"\n")
                await writer.drain()
                self.frames_served += 1
        except (ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


@register_transport("tcp")
class TcpTransport(Transport):
    """Synchronous TCP client over a private asyncio loop.

    Args:
        host: Server address.
        port: Server port.
        connect_timeout_s: Budget for establishing the connection
            (charged within each request's ``timeout_s`` as well).
    """

    in_process = False

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        connect_timeout_s: float = 5.0,
    ):
        super().__init__()
        self.host = host
        self.port = int(port)
        self.connect_timeout_s = connect_timeout_s
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._closed = False
        self.reconnects = 0

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None or self._loop.is_closed():
            self._loop = asyncio.new_event_loop()
        return self._loop

    async def _connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port, limit=MAX_FRAME_BYTES),
            self.connect_timeout_s,
        )
        self.reconnects += 1

    async def _roundtrip(self, frame: str) -> str:
        await self._connect()
        assert self._writer is not None and self._reader is not None
        self._writer.write(frame.encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return line.decode("utf-8").strip()

    def request(self, frame: str, timeout_s: float) -> str:
        if self._closed:
            raise TransportClosed("tcp transport is closed")
        loop = self._ensure_loop()
        self.frames_sent += 1
        self._trace("send", host=self.host, port=self.port)
        try:
            reply = loop.run_until_complete(
                asyncio.wait_for(self._roundtrip(frame), timeout_s)
            )
        except asyncio.TimeoutError:
            # The reply may still be in flight; a fresh connection keeps
            # it from being read as the answer to the *next* request.
            self._drop_connection(loop)
            raise TransportTimeout(
                f"no reply from {self.host}:{self.port} within {timeout_s:g}s"
            ) from None
        except (ConnectionError, OSError) as error:
            self._drop_connection(loop)
            raise TransportError(
                f"tcp {self.host}:{self.port}: {error}"
            ) from None
        self.frames_received += 1
        self._trace("recv", host=self.host, port=self.port)
        return reply

    def _drop_connection(self, loop: asyncio.AbstractEventLoop) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                loop.run_until_complete(writer.wait_closed())
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and not self._loop.is_closed():
            self._drop_connection(self._loop)
            self._loop.close()
        self._loop = None
