"""Wire transport: EONA's interfaces between processes (DESIGN.md §14).

The subsystem that turns the in-process looking-glass calls into a
service: a versioned codec (``eona-msg/1``), pluggable transport
adapters (``loopback``/``tcp``/``record``/``replay``) behind one
:class:`~repro.transport.base.Transport` protocol, the
:class:`~repro.transport.glass.RemoteLookingGlass` client proxy that
keeps :class:`~repro.core.appp.EonaAppP`/:class:`~repro.core.infp.EonaInfP`
unmodified, and the server-side
:class:`~repro.transport.service.GlassService`/pacing machinery behind
``eona serve``.
"""

from repro.transport.base import (
    FaultKnobs,
    FaultyTransport,
    Transport,
    TransportClosed,
    TransportError,
    TransportTimeout,
    create_transport,
    register_transport,
    transport_names,
)
from repro.transport.codec import (
    WIRE_VERSION,
    CodecError,
    ErrorReply,
    QueryReply,
    QueryRequest,
    decode,
    encode,
    wire_types,
)
from repro.transport.feed import FrameRecorder, RecordingTransport, ReplayTransport
from repro.transport.glass import RemoteGlassError, RemoteLookingGlass
from repro.transport.loopback import LoopbackTransport
from repro.transport.service import CONTROL_OWNER, GlassService, SimPacer, drain_trace
from repro.transport.tcp import TcpGlassServer, TcpTransport

__all__ = [
    "CONTROL_OWNER",
    "CodecError",
    "ErrorReply",
    "FaultKnobs",
    "FaultyTransport",
    "FrameRecorder",
    "GlassService",
    "LoopbackTransport",
    "QueryReply",
    "QueryRequest",
    "RecordingTransport",
    "RemoteGlassError",
    "RemoteLookingGlass",
    "ReplayTransport",
    "SimPacer",
    "TcpGlassServer",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "WIRE_VERSION",
    "create_transport",
    "decode",
    "drain_trace",
    "encode",
    "register_transport",
    "transport_names",
    "wire_types",
]
