"""JSONL feed transports: record a live session, replay it offline.

A feed file is one JSON object per line::

    {"dir": "send", "seq": 1, "t": 12.5, "frame": {...envelope...}}
    {"dir": "recv", "seq": 1, "t": 12.5, "frame": {...envelope...}}

``frame`` embeds the parsed ``eona-msg/1`` envelope (not a quoted
string) so feeds stay greppable/jq-able; ``t`` is the recording side's
clock.  :class:`RecordingTransport` tees both directions of any inner
adapter into such a file -- the CI service smoke uploads one as an
artifact.  :class:`ReplayTransport` serves a recorded feed back:
requests are matched against the recorded ``send`` frames in order
(same owner/query sequence required), each answered with the recorded
reply.  A same-seed client replayed against its own feed therefore
reproduces the original session without any server process at all.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional

from repro.transport.base import (
    Transport,
    TransportClosed,
    TransportError,
    register_transport,
)
from repro.transport.codec import CodecError, QueryRequest, decode


@register_transport("record")
class RecordingTransport(Transport):
    """Tee every frame of ``inner`` into a JSONL feed file.

    Args:
        inner: The adapter actually moving frames.
        path: Feed file to (over)write.
        clock: Timestamp source for the ``t`` field; defaults to 0.0
            (timestamps are provenance, not replay-relevant).
    """

    def __init__(
        self,
        inner: Transport,
        path: str,
        clock: Optional[Callable[[], float]] = None,
    ):
        super().__init__()
        self.inner = inner
        self.path = path
        self.clock = clock or (lambda: 0.0)
        self._file = open(path, "w", encoding="utf-8", buffering=1)
        self._seq = 0
        self.name = f"record+{inner.name or type(inner).__name__}"

    @property
    def in_process(self) -> bool:  # type: ignore[override]
        return self.inner.in_process

    @property
    def pipelined(self) -> bool:  # type: ignore[override]
        return self.inner.pipelined

    def _write(self, direction: str, seq: int, frame: str) -> None:
        if self._file.closed:
            return
        try:
            parsed = json.loads(frame)
        except ValueError:
            parsed = frame
        record = {
            "dir": direction,
            "seq": seq,
            "t": self.clock(),
            "frame": parsed,
        }
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def request(self, frame: str, timeout_s: float) -> str:
        self._seq += 1
        seq = self._seq
        self.frames_sent += 1
        self._write("send", seq, frame)
        reply = self.inner.request(frame, timeout_s)
        self.frames_received += 1
        self._write("recv", seq, reply)
        return reply

    def send_request(
        self, frame: str, on_reply: Callable[[str], None]
    ) -> None:
        self._seq += 1
        seq = self._seq
        self.frames_sent += 1
        self._write("send", seq, frame)

        def tee(reply: str) -> None:
            self.frames_received += 1
            self._write("recv", seq, reply)
            on_reply(reply)

        self.inner.send_request(frame, tee)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        self.inner.close()


class FrameRecorder:
    """Server-side tee: wrap a frame handler, feed-file both directions.

    The handler-shaped sibling of :class:`RecordingTransport` --
    ``eona serve --record`` wraps
    :meth:`~repro.transport.service.GlassService.handle_frame` with one
    of these, so the serving process itself produces a replayable feed
    (requests as ``send``, its replies as ``recv``).
    """

    def __init__(
        self,
        handler: Callable[[str], str],
        path: str,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.handler = handler
        self.path = path
        self.clock = clock or (lambda: 0.0)
        self._file = open(path, "w", encoding="utf-8", buffering=1)
        self._seq = 0
        self.frames_recorded = 0

    def _write(self, direction: str, seq: int, frame: str) -> None:
        if self._file.closed:
            return
        try:
            parsed = json.loads(frame)
        except ValueError:
            parsed = frame
        record = {
            "dir": direction,
            "seq": seq,
            "t": self.clock(),
            "frame": parsed,
        }
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def __call__(self, frame: str) -> str:
        self._seq += 1
        seq = self._seq
        self._write("send", seq, frame)
        reply = self.handler(frame)
        self._write("recv", seq, reply)
        self.frames_recorded += 1
        return reply

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


@register_transport("replay")
class ReplayTransport(Transport):
    """Serve recorded replies back to a client re-issuing the same queries.

    The feed's ``recv`` records are consumed in order; each request is
    validated against the corresponding recorded ``send`` (same glass
    owner and query name -- ``msg_id`` may differ, correlation is
    positional).  Running past the end of the feed raises
    :class:`TransportClosed`, which the client proxy maps onto its
    glass-unavailable machinery -- a truncated recording degrades
    gracefully instead of crashing the control loop.
    """

    def __init__(self, path: str, strict: bool = True):
        super().__init__()
        self.path = path
        self.strict = strict
        self._sends: List[dict] = []
        self._recvs: List[str] = []
        self._cursor = 0
        with open(path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as error:
                    raise TransportError(
                        f"{path}:{line_no}: malformed feed line: {error}"
                    ) from None
                frame = record.get("frame")
                frame_text = (
                    frame if isinstance(frame, str)
                    else json.dumps(frame, sort_keys=True)
                )
                if record.get("dir") == "send":
                    self._sends.append(record)
                elif record.get("dir") == "recv":
                    self._recvs.append(frame_text)

    def remaining(self) -> int:
        """Recorded replies not yet served."""
        return len(self._recvs) - self._cursor

    def request(self, frame: str, timeout_s: float) -> str:
        if self._cursor >= len(self._recvs):
            raise TransportClosed(
                f"replay feed {self.path!r} exhausted after "
                f"{self._cursor} replies"
            )
        index = self._cursor
        self._cursor += 1
        self.frames_sent += 1
        if self.strict and index < len(self._sends):
            recorded = self._sends[index].get("frame")
            self._check_matches(frame, recorded, index)
        reply = self._recvs[index]
        self.frames_received += 1
        self._trace("replay", seq=index + 1)
        return reply

    def _check_matches(
        self, frame: str, recorded: object, index: int
    ) -> None:
        try:
            live = decode(frame)
        except CodecError:
            return
        if not isinstance(live, QueryRequest) or not isinstance(recorded, dict):
            return
        body = recorded.get("body")
        if not isinstance(body, dict):
            return
        if (
            body.get("owner") != live.owner
            or body.get("query") != live.query
        ):
            raise TransportError(
                f"replay divergence at frame {index + 1}: live query "
                f"{live.owner}/{live.query} vs recorded "
                f"{body.get('owner')}/{body.get('query')} "
                f"(feed {self.path!r})"
            )

    def close(self) -> None:
        self._cursor = len(self._recvs)
