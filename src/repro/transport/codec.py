"""The ``eona-msg/1`` wire envelope and its schema registry.

Every message between an AppP and an InfP process travels as one line of
canonical JSON (sorted keys, no trailing whitespace)::

    {"body": {...}, "schemas": "eona-schemas/1",
     "type": "QueryRequest", "v": "eona-msg/1"}

``v`` versions the *envelope* (framing, routing fields); ``schemas``
versions the payload vocabulary (:data:`repro.core.schemas.SCHEMA_VERSION`);
``type`` names a registered schema class and ``body`` is its
``to_dict()``.  Canonical-form encoding is what makes the loopback
equivalence gate meaningful: the same payload always serializes to the
same bytes, so a recorded feed is replayable and two same-seed runs
ship identical frames (DESIGN.md §14).

The registry covers every :mod:`repro.core.schemas` payload, the
query-plane messages defined here (:class:`QueryRequest`,
:class:`QueryReply`, :class:`ErrorReply`), and
:class:`~repro.core.interfaces.QueryResult` itself.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.interfaces import QueryResult
from repro.core.schemas import (
    SCHEMA_VERSION,
    CongestionSignal,
    DemandEstimate,
    PeeringDecision,
    PeeringPointInfo,
    QoeAggregate,
    SchemaError,
    ServerHintInfo,
    _Schema,
    dataclass_from_dict,
)

#: Envelope version; bump on any framing/routing change.
WIRE_VERSION = "eona-msg/1"


class CodecError(ValueError):
    """A frame cannot be encoded or decoded under ``eona-msg/1``."""


@dataclass(frozen=True)
class QueryRequest(_Schema):
    """One looking-glass query on the wire (client -> server).

    Attributes:
        owner: Provider whose glass is addressed (the server may host
            several, e.g. an ISP's I2A next to a control glass).
        requester: Requesting provider, checked against the grant.
        query: Exported query name.
        msg_id: Client-assigned correlation ID; the matching reply
            echoes it (replies may arrive reordered under the transport
            fault knobs).
        params: Keyword parameters forwarded to a live handler.
    """

    owner: str
    requester: str
    query: str
    msg_id: int
    params: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class QueryReply(_Schema):
    """A served query's answer (server -> client).

    Flattens :class:`~repro.core.interfaces.QueryResult` so the reply is
    one envelope deep; ``served_at`` is the *server's* clock at serve
    time -- under the shared-clock contract (DESIGN.md §14) the client
    adds its transit dwell to ``age_s`` from it.  ``cause`` is the
    server-process span ID and is never valid in the client's trace;
    :class:`~repro.transport.glass.RemoteLookingGlass` remaps it.
    """

    msg_id: int
    served_at: float
    query: str
    payload: Any
    age_s: float
    cause: Optional[int] = None

    def to_result(self) -> QueryResult:
        return QueryResult(
            query=self.query,
            payload=self.payload,
            age_s=self.age_s,
            cause=self.cause,
        )

    @classmethod
    def from_result(
        cls, msg_id: int, served_at: float, result: QueryResult
    ) -> "QueryReply":
        return cls(
            msg_id=msg_id,
            served_at=served_at,
            query=result.query,
            payload=result.payload,
            age_s=result.age_s,
            cause=result.cause,
        )


@dataclass(frozen=True)
class ErrorReply(_Schema):
    """A failed query (server -> client).

    ``error`` carries the exception *type name* so the client proxy can
    re-raise the exact glass error locally -- access denials must stay
    denials (configuration, exempt from fallback streaks), not morph
    into generic transport failures.
    """

    msg_id: int
    error: str
    message: str = ""


#: type name -> (class, decoder).  Sorted registration order is cosmetic;
#: lookups are by exact name from the envelope.
_REGISTRY: Dict[str, Tuple[type, Callable[[Mapping[str, object]], object]]] = {}


def register_schema(
    cls: type, decoder: Optional[Callable[[Mapping[str, object]], object]] = None
) -> type:
    """Make ``cls`` wire-codable under its class name."""
    if not is_dataclass(cls):
        raise CodecError(f"{cls!r} is not a dataclass")
    name = cls.__name__
    if name in _REGISTRY:
        raise CodecError(f"duplicate wire schema {name!r}")
    if decoder is None:
        decoder = getattr(cls, "from_dict", None)
    if decoder is None:
        raise CodecError(f"{name} has no from_dict and no explicit decoder")
    _REGISTRY[name] = (cls, decoder)
    return cls


def wire_types() -> Tuple[str, ...]:
    """Registered type names, sorted (the docs/tests enumeration)."""
    return tuple(sorted(_REGISTRY))


def encode(message: object) -> str:
    """One object -> one canonical JSON line (no trailing newline)."""
    name = type(message).__name__
    if name not in _REGISTRY:
        raise CodecError(f"unregistered wire type {name!r}")
    body = message.to_dict() if isinstance(message, _Schema) else asdict(message)
    envelope = {
        "v": WIRE_VERSION,
        "schemas": SCHEMA_VERSION,
        "type": name,
        "body": body,
    }
    try:
        return json.dumps(envelope, sort_keys=True, allow_nan=False)
    except (TypeError, ValueError) as error:
        raise CodecError(f"cannot serialize {name}: {error}") from None


def decode(frame: str) -> object:
    """One JSON line -> the typed message it encodes.

    Raises :class:`CodecError` for malformed JSON, an unknown envelope
    or schema version, an unregistered type, or a body that fails field
    coercion.
    """
    try:
        envelope = json.loads(frame)
    except ValueError as error:
        raise CodecError(f"malformed frame: {error}") from None
    if not isinstance(envelope, dict):
        raise CodecError(f"frame is not an envelope object: {frame[:80]!r}")
    version = envelope.get("v")
    if version != WIRE_VERSION:
        raise CodecError(
            f"unsupported envelope version {version!r} (want {WIRE_VERSION!r})"
        )
    schemas = envelope.get("schemas")
    if schemas != SCHEMA_VERSION:
        raise CodecError(
            f"unsupported schema version {schemas!r} (want {SCHEMA_VERSION!r})"
        )
    name = envelope.get("type")
    entry = _REGISTRY.get(str(name))
    if entry is None:
        raise CodecError(f"unknown wire type {name!r}")
    _cls, decoder = entry
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise CodecError(f"{name} body must be an object, got {body!r}")
    try:
        return decoder(body)
    except SchemaError as error:
        raise CodecError(str(error)) from None


def roundtrip(message: object) -> object:
    """``decode(encode(message))`` -- the property the tests pin."""
    return decode(encode(message))


# The wire vocabulary: every core schema payload, the query-plane
# messages, and QueryResult itself (used by feeds that capture results
# rather than flattened replies).
for _cls in (
    QoeAggregate,
    DemandEstimate,
    PeeringPointInfo,
    PeeringDecision,
    CongestionSignal,
    ServerHintInfo,
    QueryRequest,
    QueryReply,
    ErrorReply,
):
    register_schema(_cls)
register_schema(
    QueryResult, decoder=lambda body: dataclass_from_dict(QueryResult, body)
)


def schema_fields(name: str) -> Tuple[str, ...]:
    """Field names of a registered wire type (docs/introspection)."""
    entry = _REGISTRY.get(name)
    if entry is None:
        raise CodecError(f"unknown wire type {name!r}")
    return tuple(spec.name for spec in fields(entry[0]))
