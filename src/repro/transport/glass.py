"""RemoteLookingGlass: the client-side proxy for a wire-reached glass.

Implements the exact :meth:`repro.core.interfaces.LookingGlass.query`
surface -- ``query(requester, query, **params) -> QueryResult`` -- so an
:class:`~repro.core.appp.EonaAppP` or :class:`~repro.core.infp.EonaInfP`
plugs a remote peer in wherever it held a local glass, unmodified.

Three contracts live here (DESIGN.md §14):

* **Failure mapping.**  Transport failures (timeout, connection loss,
  dropped frames, exhausted replay feeds) surface as
  :class:`~repro.core.interfaces.GlassUnavailableError` after
  ``retries`` attempts with multiplicative timeout backoff -- the same
  exception the in-process fault modes raise, so PR 5's graceful-
  degradation machinery (failure streaks, fallback, damped
  re-engagement) works identically over the wire.  Server-side errors
  re-raise as their original type: an ``AccessDeniedError`` stays a
  denial (configuration, exempt from the streaks), never a fault.

* **Cause remapping.**  A remote peer's ``QueryResult.cause`` is a span
  ID from *its* tracer; threading it into local trace events would
  corrupt the local span forest.  For cross-process transports the
  proxy mints a local ``TRACER.new_cause()``, emits the served-query
  event (``a2i-report``/``i2a-hint``) locally with the remote ID kept
  as ``remote_cause`` provenance, and hands the controller the local
  ID.  In-process transports (loopback) share the tracer, so causes
  pass through untouched -- the equivalence gate depends on that.

* **Pipelined answers.**  Over a sim-clock transport with injected
  latency, ``query()`` cannot block for the round trip.  The proxy
  issues a request every call and answers from the *last delivered*
  reply -- the control loop acts on answers one delivery behind, which
  is precisely how wire latency becomes loop latency (E20).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.interfaces import (
    GlassUnavailableError,
    QueryResult,
    UnknownQueryError,
    _QUERY_EVENT_KIND,
)
from repro.core.registry import AccessDeniedError
from repro.obs.trace import TRACER
from repro.transport.base import Transport, TransportError
from repro.transport.codec import (
    CodecError,
    ErrorReply,
    QueryReply,
    QueryRequest,
    decode,
    encode,
)


class RemoteGlassError(Exception):
    """A server-side handler failure of a type the proxy cannot re-raise.

    Counted by the consumer's generic failure handling exactly like the
    unexpected exceptions a local handler can raise.
    """


#: Server error type name -> local exception class to re-raise.
_ERROR_TYPES: Dict[str, type] = {
    "AccessDeniedError": AccessDeniedError,
    "UnknownQueryError": UnknownQueryError,
    "GlassUnavailableError": GlassUnavailableError,
}


class RemoteLookingGlass:
    """Query a remote provider's looking glass over a transport.

    Args:
        transport: Any :class:`~repro.transport.base.Transport`.
        owner: The remote provider whose glass is addressed (routing
            key on the service side).
        kind: ``"a2i"``/``"i2a"``/empty, mirroring the remote glass --
            governs which trace event remapped causes are emitted under.
        clock: Local clock for transit-dwell aging of pipelined answers
            (the shared-clock contract); defaults to no aging.
        timeout_s: Per-attempt reply timeout on the synchronous path.
        retries: Extra attempts after the first failure.
        backoff_factor: Timeout multiplier per retry (1.0 = constant).
        max_result_age_s: Pipelined mode only -- delivered answers older
            than this (by delivery time) count as unavailable, so a
            stalled feed trips the consumer's failure streak rather
            than serving arbitrarily old data forever.
    """

    def __init__(
        self,
        transport: Transport,
        owner: str,
        kind: str = "",
        clock: Optional[Callable[[], float]] = None,
        timeout_s: float = 1.0,
        retries: int = 2,
        backoff_factor: float = 2.0,
        max_result_age_s: Optional[float] = None,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s!r}")
        if backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0, got {backoff_factor!r}"
            )
        self.transport = transport
        self.owner = owner
        self.kind = kind
        self.clock = clock
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_factor = backoff_factor
        self.max_result_age_s = max_result_age_s
        self.queries_sent = 0
        self.queries_answered = 0
        self.queries_failed = 0
        self.retries_used = 0
        self.remap_count = 0
        self._next_msg_id = 0
        #: Pipelined mode: query name -> (result, served_at, delivered_at).
        self._delivered: Dict[str, Tuple[QueryResult, float, float]] = {}

    # ------------------------------------------------------------------
    # the LookingGlass surface
    # ------------------------------------------------------------------
    def query(self, requester: str, query: str, **params: Any) -> QueryResult:
        """Run a query as ``requester`` against the remote glass."""
        self.queries_sent += 1
        self._next_msg_id += 1
        request = QueryRequest(
            owner=self.owner,
            requester=requester,
            query=query,
            msg_id=self._next_msg_id,
            params=dict(params),
        )
        frame = encode(request)
        if self.transport.pipelined:
            return self._query_pipelined(frame, query)
        return self._query_sync(frame, query)

    def exported_queries(self) -> list:
        """Best-effort: the service's control query, else empty."""
        try:
            result = self.query("__control__", "__queries__")
        except Exception:
            return []
        payload = result.payload
        return sorted(payload) if isinstance(payload, list) else []

    # ------------------------------------------------------------------
    # synchronous RPC with retry -> backoff -> GlassUnavailableError
    # ------------------------------------------------------------------
    def _query_sync(self, frame: str, query: str) -> QueryResult:
        timeout = self.timeout_s
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self.retries_used += 1
                if TRACER.enabled:
                    TRACER.emit(
                        "transport.retry",
                        owner=self.owner,
                        query=query,
                        attempt=attempt,
                        timeout_s=timeout,
                    )
            try:
                reply_frame = self.transport.request(frame, timeout)
            except TransportError as error:
                last_error = error
                timeout *= self.backoff_factor
                continue
            try:
                reply = decode(reply_frame)
            except CodecError as error:
                last_error = error
                timeout *= self.backoff_factor
                continue
            return self._accept(reply, query)
        self.queries_failed += 1
        raise GlassUnavailableError(
            f"remote glass {self.owner!r} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    # ------------------------------------------------------------------
    # pipelined: fire the request, answer from the last delivery
    # ------------------------------------------------------------------
    def _query_pipelined(self, frame: str, query: str) -> QueryResult:
        try:
            self.transport.send_request(
                frame, lambda reply_frame: self._on_delivery(reply_frame)
            )
        except TransportError:
            pass  # delivery loss is the cache-staleness path below
        entry = self._delivered.get(query)
        if entry is None:
            self.queries_failed += 1
            raise GlassUnavailableError(
                f"remote glass {self.owner!r}: no answer for {query!r} "
                "delivered yet"
            )
        result, served_at, delivered_at = entry
        now = self.clock() if self.clock is not None else delivered_at
        if (
            self.max_result_age_s is not None
            and now - delivered_at > self.max_result_age_s
        ):
            self.queries_failed += 1
            raise GlassUnavailableError(
                f"remote glass {self.owner!r}: last {query!r} answer is "
                f"{now - delivered_at:g}s old (max {self.max_result_age_s:g}s)"
            )
        # Transit + cache dwell since the server stamped the snapshot age.
        dwell = max(0.0, now - served_at)
        return QueryResult(
            query=result.query,
            payload=result.payload,
            age_s=result.age_s + dwell,
            cause=result.cause,
        )

    def _on_delivery(self, reply_frame: str) -> None:
        try:
            reply = decode(reply_frame)
        except CodecError:
            return
        if not isinstance(reply, QueryReply):
            return  # errors only matter on the synchronous path
        result = self._localize(reply)
        now = self.clock() if self.clock is not None else reply.served_at
        self._delivered[reply.query] = (result, reply.served_at, now)
        self.queries_answered += 1

    # ------------------------------------------------------------------
    # shared acceptance: error re-raise + cause remap
    # ------------------------------------------------------------------
    def _accept(self, reply: object, query: str) -> QueryResult:
        if isinstance(reply, ErrorReply):
            error_type = _ERROR_TYPES.get(reply.error)
            if error_type is not None:
                raise error_type(reply.message)
            raise RemoteGlassError(
                f"{self.owner!r} glass failed {query!r}: "
                f"{reply.error}: {reply.message}"
            )
        if not isinstance(reply, QueryReply):
            raise RemoteGlassError(
                f"unexpected reply type {type(reply).__name__} for {query!r}"
            )
        self.queries_answered += 1
        return self._localize(reply)

    def _localize(self, reply: QueryReply) -> QueryResult:
        """Map the reply's cause ID into this process's span space."""
        if self.transport.in_process:
            # Same tracer on both ends: the ID is already local.
            return reply.to_result()
        if reply.cause is None:
            return reply.to_result()
        local_cause: Optional[int] = None
        if TRACER.enabled:
            event_kind = _QUERY_EVENT_KIND.get(self.kind)
            if event_kind is not None:
                local_cause = TRACER.new_cause()
                self.remap_count += 1
                TRACER.emit(
                    event_kind,
                    via="remote-query",
                    owner=self.owner,
                    query=reply.query,
                    age_s=reply.age_s,
                    cause=local_cause,
                    remote_cause=reply.cause,
                )
        return QueryResult(
            query=reply.query,
            payload=reply.payload,
            age_s=reply.age_s,
            cause=local_cause,
        )

    def stats(self) -> Dict[str, int]:
        return {
            "queries_sent": self.queries_sent,
            "queries_answered": self.queries_answered,
            "queries_failed": self.queries_failed,
            "retries_used": self.retries_used,
            "causes_remapped": self.remap_count,
        }
