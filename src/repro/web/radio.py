"""Markov radio-state model for one cellular client.

The radio alternates between quality states (GOOD/FAIR/POOR) with an
occasional IRAT-style HANDOVER during which the link is nearly dead.
Each state maps to an access-link capacity; transitions happen on a
fixed tick.  The model exposes exactly the two kinds of quantities the
paper's Figure 4 contrasts:

* network-level observables an InfP records passively (state occupancy
  fractions, handover counts) -- the features its inference uses;
* the actual link capacity process, whose effect on page-load time is
  what the AppP measures directly at the client.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.network.fluidsim import FluidNetwork
from repro.simkernel.kernel import Simulator
from repro.simkernel.processes import PeriodicProcess


class RadioState(enum.Enum):
    GOOD = "good"
    FAIR = "fair"
    POOR = "poor"
    HANDOVER = "handover"


#: Access-link capacity by state (Mbit/s). HANDOVER is near-outage.
STATE_CAPACITY_MBPS: Dict[RadioState, float] = {
    RadioState.GOOD: 20.0,
    RadioState.FAIR: 6.0,
    RadioState.POOR: 1.2,
    RadioState.HANDOVER: 0.1,
}

#: Row-stochastic transition matrix on the 1-second tick.
DEFAULT_TRANSITIONS: Dict[RadioState, Dict[RadioState, float]] = {
    RadioState.GOOD: {
        RadioState.GOOD: 0.88, RadioState.FAIR: 0.09,
        RadioState.POOR: 0.01, RadioState.HANDOVER: 0.02,
    },
    RadioState.FAIR: {
        RadioState.GOOD: 0.15, RadioState.FAIR: 0.73,
        RadioState.POOR: 0.10, RadioState.HANDOVER: 0.02,
    },
    RadioState.POOR: {
        RadioState.GOOD: 0.03, RadioState.FAIR: 0.22,
        RadioState.POOR: 0.72, RadioState.HANDOVER: 0.03,
    },
    RadioState.HANDOVER: {
        RadioState.GOOD: 0.50, RadioState.FAIR: 0.35,
        RadioState.POOR: 0.15, RadioState.HANDOVER: 0.00,
    },
}


@dataclass
class RadioStats:
    """Network-level observables over an interval (the InfP's features)."""

    seconds_in_state: Dict[str, float] = field(
        default_factory=lambda: {state.value: 0.0 for state in RadioState}
    )
    handovers: int = 0
    transitions: int = 0

    def fraction(self, state: RadioState) -> float:
        total = sum(self.seconds_in_state.values())
        if total <= 0:
            return 0.0
        return self.seconds_in_state[state.value] / total

    def snapshot(self) -> "RadioStats":
        copy = RadioStats(
            seconds_in_state=dict(self.seconds_in_state),
            handovers=self.handovers,
            transitions=self.transitions,
        )
        return copy

    def diff(self, earlier: "RadioStats") -> "RadioStats":
        """Observables accumulated since an earlier snapshot."""
        return RadioStats(
            seconds_in_state={
                key: self.seconds_in_state[key] - earlier.seconds_in_state[key]
                for key in self.seconds_in_state
            },
            handovers=self.handovers - earlier.handovers,
            transitions=self.transitions - earlier.transitions,
        )


class RadioModel:
    """Drives one client's access-link capacity from a radio Markov chain.

    Args:
        sim: Simulator.
        network: Fluid network whose link capacity is modulated.
        link_id: The (downstream) access link of this client.
        rng: Random stream for transitions.
        tick_s: Transition period.
        transitions: Row-stochastic matrix; defaults to
            :data:`DEFAULT_TRANSITIONS`.
        capacities: State→capacity map; defaults to
            :data:`STATE_CAPACITY_MBPS`.
        initial: Starting state.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FluidNetwork,
        link_id: str,
        rng: random.Random,
        tick_s: float = 1.0,
        transitions: Optional[Dict[RadioState, Dict[RadioState, float]]] = None,
        capacities: Optional[Dict[RadioState, float]] = None,
        initial: RadioState = RadioState.GOOD,
    ):
        self.sim = sim
        self.network = network
        self.link_id = link_id
        self.rng = rng
        self.tick_s = tick_s
        self.transitions = transitions or DEFAULT_TRANSITIONS
        self.capacities = capacities or STATE_CAPACITY_MBPS
        self.state = initial
        self.stats = RadioStats()
        self._apply_state()
        self._process = PeriodicProcess(sim, tick_s, self._tick, name=f"radio:{link_id}")

    def stop(self) -> None:
        self._process.stop()

    def _tick(self) -> None:
        self.stats.seconds_in_state[self.state.value] += self.tick_s
        row = self.transitions[self.state]
        u = self.rng.random()
        acc = 0.0
        next_state = self.state
        for state, probability in row.items():
            acc += probability
            if u < acc:
                next_state = state
                break
        if next_state is not self.state:
            self.stats.transitions += 1
            if next_state is RadioState.HANDOVER:
                self.stats.handovers += 1
            self.state = next_state
            self._apply_state()

    def _apply_state(self) -> None:
        self.network.set_link_capacity(self.link_id, self.capacities[self.state])
