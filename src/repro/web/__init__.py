"""Web-over-cellular substrate (Figure 1(a) / Figure 4 of the paper).

A Markov radio model modulates each client's access-link capacity and
produces the *network-level* observables (state occupancy, handovers)
that a cellular InfP can see.  A browser model loads multi-object pages
over the fluid network and produces the *application-level* observable
(page-load time) that only the AppP can see.  The gap between inferring
the latter from the former and exporting it directly over EONA-A2I is
experiment E3.
"""

from repro.web.radio import RadioModel, RadioState, RadioStats
from repro.web.page import WebPage, make_page, make_shared_pool
from repro.web.browser import Browser, PageLoadRecord
from repro.web.proxy import WebProxy
from repro.web.qoe import satisfaction_from_plt

__all__ = [
    "Browser",
    "PageLoadRecord",
    "RadioModel",
    "RadioState",
    "RadioStats",
    "WebPage",
    "WebProxy",
    "make_page",
    "make_shared_pool",
    "satisfaction_from_plt",
]
