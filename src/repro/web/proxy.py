"""The caching web proxy of Figure 1(a).

The paper's web-over-cellular delivery chain routes browser traffic
through an operator web proxy.  Modelled as an in-path object cache:
objects shared across pages (framework scripts, fonts, common images)
hit the proxy and are served from the cellular core instead of
traversing the full path to the origin server -- one more subsystem
whose behaviour shapes the experience only the client can measure.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cdn.cache import LruCache


class WebProxy:
    """An object cache at a topology node inside the InfP.

    Args:
        node_id: Node the proxy runs at (between clients and servers).
        cache_mbit: Object-cache capacity.
    """

    def __init__(self, node_id: str, cache_mbit: float = 500.0):
        self.node_id = node_id
        self.cache = LruCache(cache_mbit)

    def resolve(self, object_key: Optional[str], size_mbit: float) -> Tuple[bool, str]:
        """Decide where one object is served from.

        Returns ``(hit, src_node_hint)`` -- on a hit the object comes
        from the proxy's node; on a miss it must be fetched upstream
        (and is admitted for next time).  Objects without a stable key
        (``None``) are uncacheable (dynamic content).
        """
        if object_key is None:
            return False, self.node_id
        if self.cache.lookup(object_key):
            return True, self.node_id
        self.cache.insert(object_key, size_mbit)
        return False, self.node_id

    @property
    def hit_rate(self) -> float:
        return self.cache.stats.hit_rate
