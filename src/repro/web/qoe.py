"""Web QoE: user satisfaction as a function of page-load time.

The mapping is the standard logistic "tolerance" curve used in web-QoE
studies: near-perfect satisfaction under ~2 s, a steep fall through the
2-8 s range, and near-zero beyond ~15 s.
"""

from __future__ import annotations

import math


def satisfaction_from_plt(
    plt_s: float,
    midpoint_s: float = 5.0,
    steepness: float = 0.8,
) -> float:
    """Satisfaction in [0, 1] for a page-load time.

    Args:
        plt_s: Page-load time in seconds.
        midpoint_s: PLT at which satisfaction crosses 0.5.
        steepness: Logistic slope; higher = sharper cliff.
    """
    if plt_s < 0:
        raise ValueError(f"plt must be non-negative, got {plt_s!r}")
    return 1.0 / (1.0 + math.exp(steepness * (plt_s - midpoint_s)))


def satisfaction_from_plt_array(
    plt_s: "object",
    midpoint_s: float = 5.0,
    steepness: float = 0.8,
):
    """Vectorized :func:`satisfaction_from_plt` over an array of PLTs.

    Same logistic curve, element-wise, for the cohort engine's web
    satisfaction path; the property tests pin element-wise agreement
    with the scalar function.  Accepts anything ``numpy.asarray`` does.
    """
    import numpy  # deferred: the scalar path stays dependency-free

    values = numpy.asarray(plt_s, dtype=float)
    if numpy.any(values < 0):
        raise ValueError("plt must be non-negative")
    return 1.0 / (1.0 + numpy.exp(steepness * (values - midpoint_s)))
