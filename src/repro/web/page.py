"""Web page model: a main document plus embedded objects."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class WebPage:
    """A page as a download workload.

    Attributes:
        page_id: Identifier.
        main_mbit: Size of the main HTML document.
        object_sizes_mbit: Sizes of embedded objects fetched after the
            main document (images, scripts, ...).
        object_keys: Optional per-object cache keys, aligned with
            ``object_sizes_mbit``.  A key shared across pages (a common
            framework script, say) makes the object proxy-cacheable;
            ``None`` marks dynamic, uncacheable content.
    """

    page_id: str
    main_mbit: float
    object_sizes_mbit: Tuple[float, ...]
    object_keys: Tuple[Optional[str], ...] = ()

    def __post_init__(self) -> None:
        if self.object_keys and len(self.object_keys) != len(self.object_sizes_mbit):
            raise ValueError(
                f"page {self.page_id}: {len(self.object_keys)} keys vs "
                f"{len(self.object_sizes_mbit)} objects"
            )

    def key_of(self, index: int) -> Optional[str]:
        if not self.object_keys:
            return None
        return self.object_keys[index]

    @property
    def total_mbit(self) -> float:
        return self.main_mbit + sum(self.object_sizes_mbit)

    @property
    def object_count(self) -> int:
        return 1 + len(self.object_sizes_mbit)


def make_shared_pool(
    rng: random.Random,
    n_objects: int = 50,
    object_mbit_range: Tuple[float, float] = (0.05, 1.0),
) -> List[Tuple[str, float]]:
    """A pool of (key, size) objects shared across pages (CDN-hosted
    libraries, fonts, common images) -- what makes web proxies useful."""
    if n_objects < 1:
        raise ValueError(f"n_objects must be >= 1, got {n_objects!r}")
    return [
        (f"shared-{index:04d}", _log_uniform(rng, *object_mbit_range))
        for index in range(n_objects)
    ]


def make_page(
    rng: random.Random,
    page_id: str,
    n_objects_range: Tuple[int, int] = (8, 40),
    object_mbit_range: Tuple[float, float] = (0.05, 1.0),
    main_mbit_range: Tuple[float, float] = (0.1, 0.5),
    shared_pool: Optional[Sequence[Tuple[str, float]]] = None,
    shared_fraction: float = 0.4,
) -> WebPage:
    """Sample a realistic page: tens of objects, mostly small.

    Object sizes are drawn log-uniformly, matching the heavy-tailed
    size mix of real pages.  With a ``shared_pool``, roughly
    ``shared_fraction`` of the objects are drawn from it (keyed, hence
    proxy-cacheable); the rest are page-unique.
    """
    lo_n, hi_n = n_objects_range
    if lo_n < 0 or hi_n < lo_n:
        raise ValueError(f"bad object count range {n_objects_range!r}")
    if not 0 <= shared_fraction <= 1:
        raise ValueError(f"shared_fraction out of range: {shared_fraction!r}")
    n_objects = rng.randint(lo_n, hi_n)
    main = rng.uniform(*main_mbit_range)
    sizes: List[float] = []
    keys: List[Optional[str]] = []
    for _ in range(n_objects):
        if shared_pool and rng.random() < shared_fraction:
            key, size = shared_pool[rng.randrange(len(shared_pool))]
            keys.append(key)
            sizes.append(size)
        else:
            keys.append(None)
            sizes.append(_log_uniform(rng, *object_mbit_range))
    return WebPage(
        page_id=page_id,
        main_mbit=main,
        object_sizes_mbit=tuple(sizes),
        object_keys=tuple(keys) if shared_pool else (),
    )


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    import math

    return math.exp(rng.uniform(math.log(low), math.log(high)))
