"""Browser model: page loads with bounded connection parallelism.

The browser fetches the main document first (its completion stands in
for time-to-first-byte-ish early signals), then the embedded objects
over at most ``parallelism`` concurrent connections.  Page-load time is
when the last object lands.  Each load also captures the radio
observables accumulated during the load, because those -- not the PLT --
are what the InfP gets to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.network.fluidsim import FluidNetwork
from repro.simkernel.kernel import Simulator
from repro.web.page import WebPage
from repro.web.radio import RadioModel, RadioState, RadioStats


@dataclass(frozen=True)
class PageLoadRecord:
    """Outcome and observables of one page load.

    Application-level truth (AppP-visible): ``plt_s``.
    Network-level features (InfP-visible): everything else.
    """

    page_id: str
    client_node: str
    started_at: float
    plt_s: float
    main_doc_s: float          # completion time of the main document
    total_mbit: float
    object_count: int
    mean_throughput_mbps: float
    frac_good: float
    frac_fair: float
    frac_poor: float
    handovers: int
    radio_transitions: int
    proxy_hits: int = 0


class Browser:
    """Loads pages for one client over the fluid network.

    Args:
        sim: Simulator.
        network: Fluid network.
        client_node: The client's topology node.
        server_node: Web server / proxy node pages are fetched from.
        radio: Optional radio model whose stats are attached to records.
        parallelism: Max concurrent object fetches (classic 6).
        proxy: Optional in-path caching proxy (Figure 1(a)); keyed
            objects it holds are served from the proxy's node.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FluidNetwork,
        client_node: str,
        server_node: str,
        radio: Optional[RadioModel] = None,
        parallelism: int = 6,
        proxy: Optional["WebProxy"] = None,
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism!r}")
        self.sim = sim
        self.network = network
        self.client_node = client_node
        self.server_node = server_node
        self.radio = radio
        self.parallelism = parallelism
        self.proxy = proxy
        self.records: List[PageLoadRecord] = []

    def load_page(
        self,
        page: WebPage,
        on_done: Optional[Callable[[PageLoadRecord], None]] = None,
    ) -> None:
        """Start loading ``page``; ``on_done`` fires with the record."""
        state = _LoadState(
            page=page,
            started_at=self.sim.now,
            radio_before=self.radio.stats.snapshot() if self.radio else None,
            on_done=on_done,
        )
        self.network.start_transfer(
            self.server_node,
            self.client_node,
            size_mbit=page.main_mbit,
            on_complete=lambda transfer: self._main_done(state),
            owner="web",
        )

    # ------------------------------------------------------------------
    def _main_done(self, state: "_LoadState") -> None:
        state.main_doc_s = self.sim.now - state.started_at
        page = state.page
        state.pending = [
            (size, page.key_of(index))
            for index, size in enumerate(page.object_sizes_mbit)
        ]
        if not state.pending:
            self._finish(state)
            return
        for _ in range(min(self.parallelism, len(state.pending))):
            self._fetch_next_object(state)

    def _fetch_next_object(self, state: "_LoadState") -> None:
        if not state.pending:
            return
        size, key = state.pending.pop()
        state.in_flight += 1
        src = self.server_node
        if self.proxy is not None:
            hit, proxy_node = self.proxy.resolve(key, size)
            if hit:
                state.proxy_hits += 1
                src = proxy_node
        self.network.start_transfer(
            src,
            self.client_node,
            size_mbit=size,
            on_complete=lambda transfer: self._object_done(state),
            owner="web",
        )

    def _object_done(self, state: "_LoadState") -> None:
        state.in_flight -= 1
        if state.pending:
            self._fetch_next_object(state)
        elif state.in_flight == 0:
            self._finish(state)

    def _finish(self, state: "_LoadState") -> None:
        now = self.sim.now
        plt = now - state.started_at
        radio_during = (
            self.radio.stats.snapshot().diff(state.radio_before)
            if self.radio and state.radio_before is not None
            else RadioStats()
        )
        total = state.page.total_mbit
        record = PageLoadRecord(
            page_id=state.page.page_id,
            client_node=self.client_node,
            started_at=state.started_at,
            plt_s=plt,
            main_doc_s=state.main_doc_s,
            total_mbit=total,
            object_count=state.page.object_count,
            mean_throughput_mbps=total / plt if plt > 0 else 0.0,
            frac_good=radio_during.fraction(RadioState.GOOD),
            frac_fair=radio_during.fraction(RadioState.FAIR),
            frac_poor=radio_during.fraction(RadioState.POOR),
            handovers=radio_during.handovers,
            radio_transitions=radio_during.transitions,
            proxy_hits=state.proxy_hits,
        )
        self.records.append(record)
        if state.on_done is not None:
            state.on_done(record)


class _LoadState:
    """Mutable bookkeeping for one in-progress page load."""

    __slots__ = (
        "page", "started_at", "radio_before", "on_done",
        "pending", "in_flight", "main_doc_s", "proxy_hits",
    )

    def __init__(self, page, started_at, radio_before, on_done):
        self.page = page
        self.started_at = started_at
        self.radio_before = radio_before
        self.on_done = on_done
        self.pending: List[tuple] = []
        self.in_flight = 0
        self.main_doc_s = 0.0
        self.proxy_hits = 0
