"""Cohort definitions: the attribute tuple a fluid population shares.

A *cohort* is the set of concurrent sessions that agree on the
aggregation attributes the A2I pipeline groups by — client node, CDN,
content tier, device class.  Sessions inside a cohort are statistically
exchangeable, which is exactly what lets the engine evolve them as one
numpy row per arrival batch instead of one Python object per viewer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Cohort kinds: adaptive-video sessions or single-page web loads.
VIDEO = "video"
WEB = "web"


@dataclass(frozen=True)
class CohortSpec:
    """One cohort: where its sessions live and how they behave.

    Attributes:
        node: Client topology node the cohort's sessions share.
        cdn: CDN name (beacon attribute; the data plane uses src_node).
        tier: Content tier label, e.g. ``"hd"`` / ``"sd"``.
        device: Device class label, e.g. ``"tv"`` / ``"mobile"``.
        src_node: Topology node the cohort downloads from (the CDN edge
            serving this cohort).
        arrival_rate_per_s: Mean session arrivals per second (Poisson).
        kind: ``"video"`` (adaptive playback) or ``"web"`` (page loads).
        isp: Access ISP label (beacon attribute).
        via: Optional via-node routing constraint for the cohort stream.
        content_duration_s: Video kind — title length sessions play.
        device_cap_mbps: Per-session bitrate/rate cap of the device
            class (``inf`` = uncapped).
        burst_demand_mbps: Per-session demand while a session is
            filling its buffer (stands in for the server connection
            cap a scalar player sees); must be finite so cohort flow
            demands stay finite.
        page_mbit: Web kind — page weight downloaded per session.
    """

    node: str
    cdn: str
    tier: str
    device: str
    src_node: str
    arrival_rate_per_s: float = 0.0
    kind: str = VIDEO
    isp: str = ""
    via: Optional[str] = None
    content_duration_s: float = 120.0
    device_cap_mbps: float = math.inf
    burst_demand_mbps: float = 24.0
    page_mbit: float = 16.0

    def __post_init__(self) -> None:
        if self.kind not in (VIDEO, WEB):
            raise ValueError(f"unknown cohort kind {self.kind!r}")
        if self.arrival_rate_per_s < 0 or not math.isfinite(self.arrival_rate_per_s):
            raise ValueError(f"arrival rate out of range: {self.arrival_rate_per_s!r}")
        if self.content_duration_s <= 0:
            raise ValueError("content duration must be positive")
        if self.device_cap_mbps <= 0:
            raise ValueError("device cap must be positive")
        if self.burst_demand_mbps <= 0 or not math.isfinite(self.burst_demand_mbps):
            raise ValueError("burst demand must be positive and finite")
        if self.page_mbit <= 0:
            raise ValueError("page weight must be positive")

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """The grouping tuple: (node, cdn, tier, device)."""
        return (self.node, self.cdn, self.tier, self.device)

    def beacon_attrs(self) -> Dict[str, str]:
        """Attributes every beacon from this cohort carries.

        Mirrors :func:`repro.telemetry.records.record_from_qoe` /
        ``record_from_pageload`` so cohort rows group identically to
        individual-session rows in the A2I aggregates.
        """
        attrs = {
            "cdn": self.cdn,
            "isp": self.isp,
            "server": self.src_node,
            "app": self.kind,
            "node": self.node,
            "tier": self.tier,
            "device": self.device,
        }
        if self.kind == WEB:
            attrs["client"] = self.node
        return attrs
