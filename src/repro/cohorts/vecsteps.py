"""Vectorized twins of the scalar per-step session functions.

Each function here mirrors one scalar source of truth, element-wise:

* :func:`buffer_advance_vec` ← :func:`repro.video.buffer.buffer_advance_step`
* :func:`engagement_vec` ← :func:`repro.video.qoe.engagement_terms`
* :func:`rung_for_throughput` ← :class:`repro.video.abr.RateBasedAbr`
  (``choose`` with a single-sample throughput estimate)

The web satisfaction path is already array-native
(:func:`repro.web.qoe.satisfaction_from_plt_array`), so the cohort
engine calls it directly.  A hypothesis property test
(``tests/cohorts/test_vecsteps_property.py``) pins element-wise
agreement between each pair on random inputs, so the scalar player and
the cohort engine cannot drift.
"""

from __future__ import annotations

import numpy

from repro.video.ladder import BitrateLadder


def buffer_advance_vec(level_s, elapsed_s, started, stalled):
    """Array form of :func:`~repro.video.buffer.buffer_advance_step`.

    All four inputs broadcast together; returns
    ``(new_level_s, played_s, waiting_s, now_stalled)`` arrays with the
    same semantics as the scalar step: rows that are not started, are
    stalled, or see no elapsed time are untouched (their waiting is
    accounted by the caller, exactly as :class:`PlaybackBuffer` does).
    """
    level = numpy.asarray(level_s, dtype=float)
    elapsed = numpy.asarray(elapsed_s, dtype=float)
    started_arr = numpy.asarray(started, dtype=bool)
    stalled_arr = numpy.asarray(stalled, dtype=bool)
    ticking = elapsed > 0
    draining = ticking & started_arr & ~stalled_arr
    played = numpy.where(draining, numpy.minimum(level, elapsed), 0.0)
    waiting = numpy.where(ticking, elapsed - played, 0.0)
    new_level = level - played
    now_stalled = numpy.where(draining, waiting > 0, stalled_arr)
    return new_level, played, waiting, now_stalled


def engagement_vec(
    buffering_ratio,
    mean_bitrate_mbps,
    join_time_s,
    max_bitrate_mbps: float = 6.0,
):
    """Array form of :func:`~repro.video.qoe.engagement_terms`."""
    ratio = numpy.maximum(numpy.asarray(buffering_ratio, dtype=float), 0.0)
    buffering_term = numpy.maximum(0.0, 1.0 - 5.0 * ratio)
    if max_bitrate_mbps <= 0:
        fraction = numpy.ones_like(buffering_term)
    else:
        fraction = numpy.clip(
            numpy.asarray(mean_bitrate_mbps, dtype=float) / max_bitrate_mbps,
            0.0,
            1.0,
        )
    bitrate_term = 0.7 + 0.3 * numpy.sqrt(fraction)
    join = numpy.maximum(numpy.asarray(join_time_s, dtype=float), 0.0)
    join_term = numpy.exp(-join / 10.0) * 0.1 + 0.9
    return numpy.clip(buffering_term * bitrate_term * join_term, 0.0, 1.0)


def highest_at_most_vec(ladder: BitrateLadder, cap_mbps):
    """Array form of :meth:`~repro.video.ladder.BitrateLadder.highest_at_most`."""
    rungs = numpy.asarray(ladder.bitrates_mbps, dtype=float)
    cap = numpy.asarray(cap_mbps, dtype=float)
    index = numpy.searchsorted(rungs, cap, side="right") - 1
    return rungs[numpy.maximum(index, 0)]


def rung_for_throughput(
    ladder: BitrateLadder,
    estimate_mbps,
    cap_mbps=numpy.inf,
    safety: float = 0.85,
):
    """Array form of rate-based ABR: :class:`~repro.video.abr.RateBasedAbr`.

    ``estimate_mbps`` plays the role of the player's harmonic-mean
    throughput estimate (a cohort has exactly one estimate: its
    per-session share of the cohort stream); ``cap_mbps`` is the
    external rate cap (device class or AppP guidance, ``inf`` = none).
    """
    estimate = numpy.asarray(estimate_mbps, dtype=float)
    cap = numpy.asarray(cap_mbps, dtype=float)
    lowest = ladder.bitrates_mbps[0]
    target = numpy.where(
        estimate > 0,
        highest_at_most_vec(ladder, safety * estimate),
        lowest,
    )
    capped = numpy.minimum(target, highest_at_most_vec(ladder, cap))
    return numpy.where(numpy.isfinite(cap), capped, target)
