"""Fluid-cohort session engine: provider-scale populations as numpy arrays.

Sessions grouped by attribute tuple (node, CDN, content tier, device
class) evolve as per-generation numpy rows instead of per-session
Python objects; state scales with cohorts × content length, not with
the number of viewers.  See DESIGN.md §11 for the model and its
equivalence contract with the scalar player.
"""

from repro.cohorts.engine import BeaconSink, CohortEngine
from repro.cohorts.specs import VIDEO, WEB, CohortSpec
from repro.cohorts.vecsteps import (
    buffer_advance_vec,
    engagement_vec,
    highest_at_most_vec,
    rung_for_throughput,
)

__all__ = [
    "BeaconSink",
    "CohortEngine",
    "CohortSpec",
    "VIDEO",
    "WEB",
    "buffer_advance_vec",
    "engagement_vec",
    "highest_at_most_vec",
    "rung_for_throughput",
]
