"""The fluid-cohort engine: millions of sessions as a few numpy rows.

Scalar sessions (:class:`~repro.video.player.AdaptivePlayer`,
:class:`~repro.web.browser.Browser`) are one Python object plus an
event chain each, which caps populations at laptop scale.  The cohort
engine evolves *generations* instead: all sessions of one cohort that
arrive in the same tick form a single homogeneous numpy row whose
state (buffer level, play time, rebuffer time, bitrate...) advances
with vectorized twins of the scalar step functions
(:mod:`repro.cohorts.vecsteps`).  State is proportional to
``cohorts × (content_duration / dt)`` — independent of the session
count, which only scales the ``count`` weights.

Network coupling: each cohort holds one persistent weighted flow on the
:class:`~repro.network.fluidsim.FluidNetwork` — weight = live session
count, demand = the sum of its sessions' demands — so a cohort of *n*
competes for bandwidth exactly as *n* individual flows would under
weighted max-min fairness.  All per-tick demand/weight changes are
applied through :meth:`FluidNetwork.update_streams`, one allocator
solve per tick.

Telemetry: when a generation finishes (or abandons), the engine emits
one cohort-weighted :class:`~repro.telemetry.records.SessionRecord`
— per-session means, weight = session count — to its beacon sink
(normally :meth:`AppPController.ingest_cohort_beacons` or
:meth:`GroupByAggregator.add` with ``weight=``).  Individual records
never materialize unless a scenario asks for them via
:meth:`CohortEngine.sample_individuals`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy

from repro.cohorts.specs import VIDEO, WEB, CohortSpec
from repro.cohorts.vecsteps import buffer_advance_vec, engagement_vec, rung_for_throughput
from repro.network.fluidsim import Transfer
from repro.telemetry.records import SessionRecord
from repro.video.ladder import DEFAULT_LADDER, BitrateLadder
from repro.web.qoe import satisfaction_from_plt_array
from repro.workloads.arrivals import BatchedPoissonArrivals

#: ``(record, sessions)``: one cohort beacon and the head count it stands for.
BeaconSink = Callable[[SessionRecord, float], None]

_FLOAT_COLUMNS = (
    "count",
    "buffer_s",
    "wait_s",
    "join_time_s",
    "play_s",
    "rebuffer_s",
    "rebuffer_events",
    "bitrate_mbps",
    "bitrate_play_s",
    "downloaded_mbit",
    "arrival_t",
)
_BOOL_COLUMNS = ("started", "stalled")


class CohortEngine:
    """Evolve cohorts of sessions as fluid numpy generations.

    Args:
        ctx: A :class:`~repro.core.context.SimContext` (used
            duck-typed: ``ctx.sim``, ``ctx.network``, ``ctx.rng`` — the
            engine deliberately avoids importing the core layer).
        specs: One :class:`CohortSpec` per cohort.
        ladder: Encoding ladder video cohorts adapt over.
        dt_s: Tick length; smaller ticks track the scalar player more
            closely at proportionally more solves.
        beacon_sink: Receives ``(record, sessions)`` per finished
            generation; defaults to counting only.
        until: Stop ticking at this simulated time (``None`` = run
            until externally stopped).
        startup_threshold_s: Buffered media required to join
            (mirrors :class:`~repro.video.buffer.PlaybackBuffer`).
        resume_threshold_s: Buffered media required to resume a stall.
        max_buffer_s: Buffer target; downloads pace to it
            (mirrors :class:`~repro.video.player.AdaptivePlayer`).
        abandon_rebuffer_s: Total stall after which sessions abandon
            (``None`` disables abandonment).
        safety: Rate-based ABR safety fraction.
    """

    def __init__(
        self,
        ctx,
        specs: Sequence[CohortSpec],
        ladder: BitrateLadder = DEFAULT_LADDER,
        dt_s: float = 1.0,
        beacon_sink: Optional[BeaconSink] = None,
        until: Optional[float] = None,
        startup_threshold_s: float = 4.0,
        resume_threshold_s: float = 4.0,
        max_buffer_s: float = 20.0,
        abandon_rebuffer_s: Optional[float] = 120.0,
        safety: float = 0.85,
    ):
        if not specs:
            raise ValueError("need at least one cohort")
        if dt_s <= 0:
            raise ValueError(f"dt must be positive, got {dt_s!r}")
        self.sim = ctx.sim
        self.network = ctx.network
        self.specs: Tuple[CohortSpec, ...] = tuple(specs)
        self.ladder = ladder
        self.dt_s = dt_s
        self.beacon_sink = beacon_sink
        self.until = until
        self.startup_threshold_s = startup_threshold_s
        self.resume_threshold_s = resume_threshold_s
        self.max_buffer_s = max_buffer_s
        self.abandon_rebuffer_s = abandon_rebuffer_s
        self.safety = safety

        n = len(self.specs)
        self._duration = numpy.array([s.content_duration_s for s in self.specs])
        self._device_cap = numpy.array([s.device_cap_mbps for s in self.specs])
        self._burst = numpy.array(
            [min(s.burst_demand_mbps, s.device_cap_mbps) for s in self.specs]
        )
        self._page_mbit = numpy.array([s.page_mbit for s in self.specs])
        self._is_video = numpy.array([s.kind == VIDEO for s in self.specs])
        self._arrivals = BatchedPoissonArrivals(
            [s.arrival_rate_per_s for s in self.specs],
            ctx.rng.generator("cohort-arrivals"),
        )
        self._sample_rng = ctx.rng.generator("cohort-sampling")
        self._streams: List[Optional[Transfer]] = [None] * n
        self._stream_weight = numpy.zeros(n)
        self._stream_demand = numpy.zeros(n)

        # Generation state: one row per (cohort, arrival tick) batch.
        self._cohort = numpy.zeros(0, dtype=numpy.int64)
        self._g: Dict[str, numpy.ndarray] = {
            name: numpy.zeros(0) for name in _FLOAT_COLUMNS
        }
        for name in _BOOL_COLUMNS:
            self._g[name] = numpy.zeros(0, dtype=bool)
        self._paced = numpy.zeros(0, dtype=bool)

        self.counters: Dict[str, int] = {
            "cohort.ticks": 0,
            "cohort.arrivals": 0,
            "cohort.generations_spawned": 0,
            "cohort.completed": 0,
            "cohort.abandoned": 0,
            "cohort.beacons": 0,
            "cohort.stream_updates": 0,
            "cohort.individuals_sampled": 0,
        }
        self.gauges: Dict[str, float] = {
            "cohort.peak_concurrent_sessions": 0.0,
            "cohort.peak_generations": 0.0,
            "cohort.peak_state_bytes": 0.0,
        }
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin ticking (one simulator event per ``dt``)."""
        if self._running:
            raise RuntimeError("cohort engine already started")
        self._running = True
        self._update_streams()
        self.sim.schedule(self.dt_s, self._tick)

    def prefill(self, sessions_per_cohort: Sequence[float]) -> None:
        """Seed steady-state populations before the first tick.

        Each cohort receives its count spread uniformly over playback
        positions (one generation per tick-of-content), as if the
        population had been arriving at a constant rate for one full
        content duration — the steady state a pure arrival process
        would only reach after ``content_duration_s`` of warm-up.
        """
        if self._running:
            raise RuntimeError("prefill before start()")
        if len(sessions_per_cohort) != len(self.specs):
            raise ValueError("need one count per cohort")
        now = self.sim.now
        for index, total in enumerate(sessions_per_cohort):
            if total <= 0:
                continue
            spec = self.specs[index]
            slots = max(1, int(spec.content_duration_s / self.dt_s))
            per_slot = float(total) / slots
            positions = (numpy.arange(slots) + 0.5) * (
                spec.content_duration_s / slots
            )
            rows = self._blank_rows(slots)
            rows["count"][:] = per_slot
            rows["play_s"][:] = positions
            rows["arrival_t"][:] = now - positions
            rows["join_time_s"][:] = self.startup_threshold_s
            rows["buffer_s"][:] = min(self.max_buffer_s, self.startup_threshold_s)
            if spec.kind == VIDEO:
                rows["bitrate_mbps"][:] = self.ladder.lowest
                rows["bitrate_play_s"][:] = self.ladder.lowest * positions
                rows["started"][:] = True
            else:
                rows["downloaded_mbit"][:] = 0.0
                rows["play_s"][:] = 0.0
            self._append(numpy.full(slots, index, dtype=numpy.int64), rows)
            self.counters["cohort.arrivals"] += int(round(float(total)))
            self.counters["cohort.generations_spawned"] += slots

    def attach_appp(self, appp) -> None:
        """Route beacons into an AppP controller's cohort-ingest path."""
        self.beacon_sink = lambda record, sessions: appp.ingest_cohort_beacons(
            [(record, sessions)]
        )

    def attach_aggregator(self, aggregator) -> None:
        """Route beacons straight into a weighted group-by aggregator."""
        self.beacon_sink = lambda record, sessions: aggregator.add(
            record, weight=sessions
        )

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def generations(self) -> int:
        """Live generation rows (the engine's real working-set size)."""
        return int(self._cohort.size)

    @property
    def concurrent_sessions(self) -> float:
        """Sessions currently in flight, across all cohorts."""
        return float(self._g["count"].sum())

    def state_bytes(self) -> int:
        """Exact bytes held in generation + per-cohort arrays."""
        total = self._cohort.nbytes + self._paced.nbytes
        for array in self._g.values():
            total += array.nbytes
        for array in (
            self._duration,
            self._device_cap,
            self._burst,
            self._page_mbit,
            self._is_video,
            self._stream_weight,
            self._stream_demand,
        ):
            total += array.nbytes
        return int(total)

    def cohort_counts(self) -> numpy.ndarray:
        """Live session count per cohort."""
        return numpy.bincount(
            self._cohort, weights=self._g["count"], minlength=len(self.specs)
        )

    def sample_individuals(self, k: int) -> List[SessionRecord]:
        """Materialize ``k`` individual session snapshots, on demand.

        Sessions are drawn proportionally to generation head counts
        (deterministic per the ``cohort-sampling`` stream).  Each
        record carries the generation's current per-session state —
        the only point where a cohort turns back into individuals.
        """
        if k <= 0 or self._cohort.size == 0:
            return []
        weights = self._g["count"]
        probabilities = weights / weights.sum()
        rows = self._sample_rng.choice(self._cohort.size, size=k, p=probabilities)
        now = self.sim.now
        records = [
            self._beacon_for_row(int(row), now, abandoned=False)
            for row in rows
        ]
        self.counters["cohort.individuals_sampled"] += k
        return records

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        dt = self.dt_s
        now = self.sim.now
        self.counters["cohort.ticks"] += 1
        if self._cohort.size:
            self._advance(dt, now)
            self._retire(now)
        self._spawn_arrivals(dt, now)
        self._update_streams()
        self._update_gauges()
        if self.until is None or now + dt <= self.until + 1e-9:
            self.sim.schedule(dt, self._tick)
        else:
            self._running = False
            self._shutdown_streams()

    def _advance(self, dt: float, now: float) -> None:
        g = self._g
        cohort = self._cohort
        rates = numpy.array(
            [
                stream.rate_mbps if stream is not None else 0.0
                for stream in self._streams
            ]
        )
        # Per-session share of the cohort stream over the last interval:
        # the rate was allocated against the weight set last tick.
        share = numpy.divide(
            rates,
            self._stream_weight,
            out=numpy.zeros_like(rates),
            where=self._stream_weight > 0,
        )
        row_thr = share[cohort]
        # ABR throughput estimate: a scalar player measures each chunk's
        # *burst* throughput, so pacing does not lower its estimate.  A
        # demand-limited cohort flow (allocated everything it asked for)
        # likewise has link headroom: its sessions would burst at up to
        # their burst cap, so that — not the paced share — is the
        # estimate.  A capacity-limited flow's share IS the achievable
        # throughput.
        demand_limited = (self._stream_weight > 0) & (
            rates >= self._stream_demand - 1e-6
        )
        estimate = numpy.where(demand_limited, self._burst, share)[cohort]
        vid = self._is_video[cohort]
        started0 = g["started"].copy()
        stalled0 = g["stalled"].copy()

        # ABR: joined sessions re-select from their current share; pre-join
        # sessions fetch the lowest rung (a scalar player with no samples
        # does exactly this), web rows carry no bitrate.
        chosen = rung_for_throughput(
            self.ladder, estimate, self._device_cap[cohort], self.safety
        )
        g["bitrate_mbps"] = numpy.where(vid & started0, chosen, g["bitrate_mbps"])

        # Fill: seconds of media downloaded this tick, paced to the buffer
        # target (a full buffer only re-fills what playback drains).
        bitrate = g["bitrate_mbps"]
        fill_raw = numpy.divide(
            row_thr * dt,
            bitrate,
            out=numpy.zeros_like(bitrate),
            where=vid & (bitrate > 0),
        )
        drain_allowance = numpy.where(started0 & ~stalled0, dt, 0.0)
        allowance = numpy.maximum(
            self.max_buffer_s - g["buffer_s"], 0.0
        ) + drain_allowance
        fill = numpy.minimum(fill_raw, allowance)
        self._paced = vid & (fill_raw > allowance + 1e-12)
        buffer_before = g["buffer_s"]
        buffer_filled = buffer_before + fill

        # Join: cross the startup threshold, with fractional-tick timing.
        joining = vid & ~started0
        crossed = joining & (buffer_filled >= self.startup_threshold_s)
        frac_join = numpy.divide(
            self.startup_threshold_s - buffer_before,
            fill,
            out=numpy.ones_like(fill),
            where=fill > 0,
        ).clip(0.0, 1.0)
        g["join_time_s"] = numpy.where(
            crossed, g["wait_s"] + frac_join * dt, g["join_time_s"]
        )
        g["wait_s"] = numpy.where(joining & ~crossed, g["wait_s"] + dt, g["wait_s"])

        # Resume: stalled sessions keep filling; crossing the resume
        # threshold ends the stall partway through the tick.
        stalled_rows = vid & started0 & stalled0
        resumed = stalled_rows & (buffer_filled >= self.resume_threshold_s)
        frac_resume = numpy.divide(
            self.resume_threshold_s - buffer_before,
            fill,
            out=numpy.ones_like(fill),
            where=fill > 0,
        ).clip(0.0, 1.0)
        g["rebuffer_s"] = numpy.where(
            stalled_rows,
            g["rebuffer_s"] + numpy.where(resumed, frac_resume * dt, dt),
            g["rebuffer_s"],
        )

        # Drain: the shared step function does the playback accounting.
        playing = vid & started0 & ~stalled0
        elapsed = (
            numpy.where(playing, dt, 0.0)
            + numpy.where(crossed, (1.0 - frac_join) * dt, 0.0)
            + numpy.where(resumed, (1.0 - frac_resume) * dt, 0.0)
        )
        started = started0 | crossed
        stalled_for_drain = stalled0 & ~resumed
        new_buffer, played, waiting, now_stalled = buffer_advance_vec(
            buffer_filled, elapsed, started, stalled_for_drain
        )
        drained = elapsed > 0
        newly_stalled = drained & now_stalled & ~stalled_for_drain
        g["buffer_s"] = new_buffer
        g["play_s"] = g["play_s"] + played
        g["bitrate_play_s"] = g["bitrate_play_s"] + bitrate * played
        g["rebuffer_s"] = g["rebuffer_s"] + numpy.where(drained, waiting, 0.0)
        g["rebuffer_events"] = g["rebuffer_events"] + numpy.where(
            newly_stalled, 1.0, 0.0
        )
        g["started"] = started
        g["stalled"] = now_stalled
        g["downloaded_mbit"] = g["downloaded_mbit"] + numpy.where(
            vid, fill * bitrate, row_thr * dt
        )

    def _retire(self, now: float) -> None:
        g = self._g
        vid = self._is_video[self._cohort]
        done_video = vid & (g["play_s"] >= self._duration[self._cohort] - 1e-9)
        done_web = ~vid & (g["downloaded_mbit"] >= self._page_mbit[self._cohort])
        abandoned = numpy.zeros_like(done_video)
        if self.abandon_rebuffer_s is not None:
            abandoned = vid & ~done_video & (
                g["rebuffer_s"] >= self.abandon_rebuffer_s
            )
        ending = done_video | done_web | abandoned
        if not ending.any():
            return
        for row in numpy.nonzero(ending)[0]:
            index = int(row)
            sessions = float(g["count"][index])
            record = self._beacon_for_row(index, now, bool(abandoned[index]))
            self.counters["cohort.beacons"] += 1
            if abandoned[index]:
                self.counters["cohort.abandoned"] += int(round(sessions))
            else:
                self.counters["cohort.completed"] += int(round(sessions))
            if self.beacon_sink is not None:
                self.beacon_sink(record, sessions)
        self._keep(~ending)

    def _spawn_arrivals(self, dt: float, now: float) -> None:
        counts = self._arrivals.counts(dt)
        spawning = counts > 0
        if not spawning.any():
            return
        indices = numpy.nonzero(spawning)[0]
        rows = self._blank_rows(indices.size)
        rows["count"][:] = counts[indices].astype(float)
        # Arrivals landed throughout the elapsed tick: credit the mean
        # half-tick of pre-join waiting instead of quantizing to zero.
        rows["wait_s"][:] = dt / 2.0
        rows["arrival_t"][:] = now - dt / 2.0
        rows["bitrate_mbps"][:] = numpy.where(
            self._is_video[indices], self.ladder.lowest, 0.0
        )
        self._append(indices.astype(numpy.int64), rows)
        self.counters["cohort.arrivals"] += int(counts.sum())
        self.counters["cohort.generations_spawned"] += int(indices.size)

    # ------------------------------------------------------------------
    # network coupling
    # ------------------------------------------------------------------
    def _update_streams(self) -> None:
        counts = self.cohort_counts()
        vid = self._is_video[self._cohort]
        burst = self._burst[self._cohort]
        # A session demands its bitrate once paced (full buffer), its
        # burst cap while filling; web sessions always burst.
        per_row = self._g["count"] * numpy.where(
            vid & self._paced, self._g["bitrate_mbps"], burst
        )
        demand = numpy.bincount(
            self._cohort, weights=per_row, minlength=len(self.specs)
        )
        updates: List[Tuple[Transfer, float, Optional[float]]] = []
        for index, spec in enumerate(self.specs):
            stream = self._streams[index]
            weight = float(counts[index])
            if weight <= 0:
                if stream is not None:
                    self.network.abort(stream)
                    self._streams[index] = None
                    self._stream_weight[index] = 0.0
                continue
            cohort_demand = max(float(demand[index]), 1e-6)
            if stream is None:
                self._streams[index] = self.network.start_stream(
                    spec.src_node,
                    spec.node,
                    demand_mbps=cohort_demand,
                    via=spec.via,
                    owner=f"cohort:{spec.cdn}",
                    weight=weight,
                )
            else:
                updates.append((stream, cohort_demand, weight))
            self._stream_weight[index] = weight
            self._stream_demand[index] = cohort_demand
        if updates:
            self.network.update_streams(updates)
            self.counters["cohort.stream_updates"] += len(updates)

    def _shutdown_streams(self) -> None:
        for index, stream in enumerate(self._streams):
            if stream is not None:
                self.network.abort(stream)
                self._streams[index] = None
                self._stream_weight[index] = 0.0

    # ------------------------------------------------------------------
    # beacons
    # ------------------------------------------------------------------
    def _beacon_for_row(self, row: int, now: float, abandoned: bool) -> SessionRecord:
        g = self._g
        spec = self.specs[int(self._cohort[row])]
        if spec.kind == VIDEO:
            play = float(g["play_s"][row])
            rebuffer = float(g["rebuffer_s"][row])
            denominator = play + rebuffer
            joined = bool(g["started"][row])
            if denominator > 0:
                buffering_ratio = rebuffer / denominator
            else:
                buffering_ratio = 0.0 if joined else 1.0
            mean_bitrate = (
                float(g["bitrate_play_s"][row]) / play if play > 0 else 0.0
            )
            join_time = float(g["join_time_s"][row]) if joined else -1.0
            engagement = (
                float(
                    engagement_vec(
                        buffering_ratio,
                        mean_bitrate,
                        join_time,
                        max_bitrate_mbps=self.ladder.highest,
                    )
                )
                if joined
                else 0.0
            )
            metrics = {
                "buffering_ratio": buffering_ratio,
                "rebuffer_time_s": rebuffer,
                "mean_bitrate_mbps": mean_bitrate,
                "join_time_s": join_time,
                "play_time_s": play,
                "abandoned": 1.0 if abandoned else 0.0,
                "engagement": engagement,
            }
        else:
            plt = max(float(now - g["arrival_t"][row]), 1e-9)
            metrics = {
                "plt_s": plt,
                "total_mbit": float(g["downloaded_mbit"][row]),
                "mean_throughput_mbps": float(g["downloaded_mbit"][row]) / plt,
                "satisfaction": float(satisfaction_from_plt_array([plt])[0]),
            }
        return SessionRecord(time=now, attrs=spec.beacon_attrs(), metrics=metrics)

    # ------------------------------------------------------------------
    # array plumbing
    # ------------------------------------------------------------------
    def _blank_rows(self, size: int) -> Dict[str, numpy.ndarray]:
        rows: Dict[str, numpy.ndarray] = {
            name: numpy.zeros(size) for name in _FLOAT_COLUMNS
        }
        for name in _BOOL_COLUMNS:
            rows[name] = numpy.zeros(size, dtype=bool)
        rows["join_time_s"][:] = -1.0
        return rows

    def _append(self, cohorts: numpy.ndarray, rows: Dict[str, numpy.ndarray]) -> None:
        self._cohort = numpy.concatenate([self._cohort, cohorts])
        for name, array in self._g.items():
            self._g[name] = numpy.concatenate([array, rows[name]])
        self._paced = numpy.concatenate(
            [self._paced, numpy.zeros(cohorts.size, dtype=bool)]
        )

    def _keep(self, mask: numpy.ndarray) -> None:
        self._cohort = self._cohort[mask]
        for name, array in self._g.items():
            self._g[name] = array[mask]
        self._paced = self._paced[mask]

    def _update_gauges(self) -> None:
        concurrent = self.concurrent_sessions
        gauges = self.gauges
        if concurrent > gauges["cohort.peak_concurrent_sessions"]:
            gauges["cohort.peak_concurrent_sessions"] = concurrent
        if self.generations > gauges["cohort.peak_generations"]:
            gauges["cohort.peak_generations"] = float(self.generations)
        state = float(self.state_bytes())
        if state > gauges["cohort.peak_state_bytes"]:
            gauges["cohort.peak_state_bytes"] = state
