"""Session arrival processes.

:class:`PoissonArrivals` is the homogeneous base case;
:class:`NonHomogeneousArrivals` implements Lewis-Shedler thinning
against an arbitrary rate function, which is how the flash-crowd
(Figure 3) and diurnal (energy-saving) profiles are driven.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from repro.simkernel.kernel import Simulator

StartFn = Callable[[int], None]
RateFn = Callable[[float], float]


class PoissonArrivals:
    """Homogeneous Poisson session starts.

    Args:
        sim: Simulator.
        rate_per_s: Mean arrivals per second.
        start_fn: Called with a running session index at each arrival.
        rng: Random stream.
        until: Stop generating at this simulated time (``None`` = never).
        max_sessions: Stop after this many arrivals.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_per_s: float,
        start_fn: StartFn,
        rng: random.Random,
        until: Optional[float] = None,
        max_sessions: Optional[int] = None,
    ):
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s!r}")
        self.sim = sim
        self.rate_per_s = rate_per_s
        self.start_fn = start_fn
        self.rng = rng
        self.until = until
        self.max_sessions = max_sessions
        self.generated = 0
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self.rng.expovariate(self.rate_per_s)
        when = self.sim.now + gap
        if self.until is not None and when > self.until:
            return
        if self.max_sessions is not None and self.generated >= self.max_sessions:
            return
        self.sim.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        index = self.generated
        self.generated += 1
        self.start_fn(index)
        self._schedule_next()


class NonHomogeneousArrivals:
    """Poisson arrivals with a time-varying rate, via thinning.

    Args:
        sim: Simulator.
        rate_fn: Instantaneous rate λ(t), arrivals/second.
        max_rate_per_s: An upper bound on λ(t) over the horizon
            (thinning envelope); proposals above λ(t)/max are rejected.
        start_fn: Called with a running session index at each arrival.
        rng: Random stream.
        until: Stop at this simulated time.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_fn: RateFn,
        max_rate_per_s: float,
        start_fn: StartFn,
        rng: random.Random,
        until: Optional[float] = None,
        max_sessions: Optional[int] = None,
    ):
        if max_rate_per_s <= 0:
            raise ValueError(f"max rate must be positive, got {max_rate_per_s!r}")
        self.sim = sim
        self.rate_fn = rate_fn
        self.max_rate_per_s = max_rate_per_s
        self.start_fn = start_fn
        self.rng = rng
        self.until = until
        self.max_sessions = max_sessions
        self.generated = 0
        self._schedule_proposal()

    def _schedule_proposal(self) -> None:
        gap = self.rng.expovariate(self.max_rate_per_s)
        when = self.sim.now + gap
        if self.until is not None and when > self.until:
            return
        if self.max_sessions is not None and self.generated >= self.max_sessions:
            return
        self.sim.schedule(gap, self._propose)

    def _propose(self) -> None:
        rate = self.rate_fn(self.sim.now)
        if rate > self.max_rate_per_s + 1e-9:
            raise ValueError(
                f"rate_fn({self.sim.now}) = {rate} exceeds envelope "
                f"{self.max_rate_per_s}"
            )
        if self.rng.random() < rate / self.max_rate_per_s:
            index = self.generated
            self.generated += 1
            self.start_fn(index)
        self._schedule_proposal()


class BatchedPoissonArrivals:
    """Per-cohort Poisson arrival *counts*, one vector draw per tick.

    The fluid-cohort counterpart of :class:`PoissonArrivals`: instead
    of scheduling one simulator event per session, the cohort engine
    asks once per tick how many sessions arrived in each cohort.  Over
    a tick of length ``dt`` a cohort with rate λ receives
    ``Poisson(λ·dt)`` arrivals -- summing ticks recovers exactly the
    homogeneous process, so the aggregate statistics match the
    event-per-arrival path at any tick size.

    Args:
        rates_per_s: Mean arrivals per second, one entry per cohort
            (any sequence; stored as a float array).  Zero entries are
            allowed (a cohort that is pre-seeded but has no churn).
        generator: A ``numpy.random.Generator``; mint it from the named
            streams (``ctx.rng.generator("cohort-arrivals")``) so draws
            are reproducible and independent of other streams.
    """

    def __init__(self, rates_per_s, generator):
        import numpy

        self._numpy = numpy
        rates = numpy.asarray(rates_per_s, dtype=float)
        if rates.ndim != 1 or rates.size == 0:
            raise ValueError("rates_per_s must be a non-empty 1-d sequence")
        if numpy.any(rates < 0) or not numpy.all(numpy.isfinite(rates)):
            raise ValueError("rates must be finite and non-negative")
        self.rates_per_s = rates
        self.generator = generator
        self.generated = 0

    def counts(self, dt_s: float):
        """Arrival counts per cohort for one tick of length ``dt_s``."""
        if dt_s < 0:
            raise ValueError(f"dt must be non-negative, got {dt_s!r}")
        drawn = self.generator.poisson(self.rates_per_s * dt_s)
        self.generated += int(drawn.sum())
        return drawn

    def set_rate(self, index: int, rate_per_s: float) -> None:
        """Change one cohort's arrival rate (flash crowds, diurnal ramps)."""
        if rate_per_s < 0 or not math.isfinite(rate_per_s):
            raise ValueError(f"rate must be finite and non-negative, got {rate_per_s!r}")
        self.rates_per_s[index] = rate_per_s


def flash_crowd_rate(
    base_per_s: float,
    peak_per_s: float,
    onset_s: float,
    ramp_s: float,
    duration_s: float,
) -> RateFn:
    """A flash-crowd profile: base → linear ramp to peak → decay to base.

    Args:
        base_per_s: Background arrival rate.
        peak_per_s: Peak rate during the event.
        onset_s: When the ramp begins.
        ramp_s: Ramp-up length.
        duration_s: Time spent at the peak before the exponential decay.
    """
    if peak_per_s < base_per_s:
        raise ValueError("peak must be >= base")

    def rate(t: float) -> float:
        if t < onset_s:
            return base_per_s
        if t < onset_s + ramp_s:
            fraction = (t - onset_s) / ramp_s
            return base_per_s + fraction * (peak_per_s - base_per_s)
        if t < onset_s + ramp_s + duration_s:
            return peak_per_s
        decay = math.exp(-(t - onset_s - ramp_s - duration_s) / max(ramp_s, 1.0))
        return base_per_s + decay * (peak_per_s - base_per_s)

    return rate


def diurnal_rate(
    mean_per_s: float,
    amplitude: float = 0.8,
    period_s: float = 86_400.0,
    peak_at_s: float = 72_000.0,
) -> RateFn:
    """A sinusoidal day/night demand curve (peak in the evening).

    Args:
        mean_per_s: Mean rate over a day.
        amplitude: Relative swing in [0, 1); rate spans
            mean*(1±amplitude).
        period_s: Day length.
        peak_at_s: Time-of-day of the peak.
    """
    if not 0 <= amplitude < 1:
        raise ValueError(f"amplitude out of range: {amplitude!r}")

    def rate(t: float) -> float:
        phase = 2 * math.pi * (t - peak_at_s) / period_s
        return mean_per_s * (1 + amplitude * math.cos(phase))

    return rate
