"""Workload generation: session arrivals and prebuilt scenario worlds.

Arrival processes (Poisson, non-homogeneous via thinning, flash-crowd
and diurnal rate profiles) drive session starts; the scenario builders
assemble the per-figure topologies, CDNs, and client populations the
experiments run on.
"""

from repro.workloads.arrivals import (
    BatchedPoissonArrivals,
    NonHomogeneousArrivals,
    PoissonArrivals,
    diurnal_rate,
    flash_crowd_rate,
)
from repro.workloads.scenarios import (
    CdnFaultScenario,
    CellularWebScenario,
    CoarseControlScenario,
    EnergyScenario,
    FlashCrowdScenario,
    OscillationScenario,
    TwoIspScenario,
    build_cdn_fault_scenario,
    build_cellular_web_scenario,
    build_coarse_control_scenario,
    build_energy_scenario,
    build_flash_crowd_scenario,
    build_oscillation_scenario,
    build_two_isp_scenario,
)

__all__ = [
    "BatchedPoissonArrivals",
    "CdnFaultScenario",
    "CellularWebScenario",
    "CoarseControlScenario",
    "EnergyScenario",
    "FlashCrowdScenario",
    "NonHomogeneousArrivals",
    "OscillationScenario",
    "PoissonArrivals",
    "TwoIspScenario",
    "build_cdn_fault_scenario",
    "build_cellular_web_scenario",
    "build_coarse_control_scenario",
    "build_energy_scenario",
    "build_flash_crowd_scenario",
    "build_oscillation_scenario",
    "build_two_isp_scenario",
    "diurnal_rate",
    "flash_crowd_rate",
]
