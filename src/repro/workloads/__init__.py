"""Workload generation: session arrival processes.

Arrival processes (Poisson, non-homogeneous via thinning, flash-crowd
and diurnal rate profiles) drive session starts.  The per-figure
worlds the experiments run on are no longer built here -- they are
committed specs under :mod:`repro.scenarios` (``scenarios/library``),
compiled by :func:`repro.scenarios.build_scenario`.
"""

from repro.workloads.arrivals import (
    BatchedPoissonArrivals,
    NonHomogeneousArrivals,
    PoissonArrivals,
    diurnal_rate,
    flash_crowd_rate,
)

__all__ = [
    "BatchedPoissonArrivals",
    "NonHomogeneousArrivals",
    "PoissonArrivals",
    "diurnal_rate",
    "flash_crowd_rate",
]
