"""E13 -- The coordinated control plane (paper §1, trend 3; cite [36]).

The paper leans on the existence of AppP-side "control plane platforms"
(the C3 / coordinated-video-control-plane line of work) as an enabler:
EONA's A2I is only as good as the AppP's ability to aggregate and act
on its own telemetry.  This experiment quantifies that subsystem: a CDN
suffers a mid-run capacity fault, and we compare

* **reactive** -- today's per-session trial-and-error (each player
  independently suffers, then switches);
* **coordinated** -- the fleet-level control plane: shared per-CDN
  quality estimates steer new sessions instantly and migrate existing
  ones at a bounded rate.

Expected shape: the coordinated plane cuts fault-window buffering by a
large factor and steers new arrivals away from the faulty CDN almost
immediately; after recovery, exploration drifts traffic back.
"""

from __future__ import annotations

from typing import Dict

from repro.core.appp import StatusQuoAppP
from repro.core.controlplane import CoordinatedAppP
from repro.experiments.common import (
    ExperimentResult,
    launch_video_sessions,
    loop_latency_row,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.faults import register_plan
from repro.scenarios import build_scenario, load_library_spec
from repro.telemetry.timeline import TimelineProbe
from repro.video.qoe import summarize


def run_config(
    config: str,
    seed: int = 0,
    n_clients: int = 25,
    horizon_s: float = 700.0,
    degraded_mbps: float = 10.0,
) -> Dict[str, object]:
    # The uplink collapse/recovery is declared in the cdn-fault spec's
    # fault plan and armed through the injector at build time.
    scenario = build_scenario(
        "cdn-fault",
        seed=seed,
        params={"n_clients": n_clients, "degraded_mbps": degraded_mbps},
    )
    sim = scenario.sim

    if config == "reactive":
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
    elif config == "coordinated":
        policy = CoordinatedAppP(
            sim, scenario.cdns, control_period_s=10.0, name="appp"
        )
    else:
        raise ValueError(f"unknown config {config!r}")

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=0.25,
        until=horizon_s - 150.0,
    )
    probe = TimelineProbe(
        sim,
        {
            "cdn1_sessions": lambda: float(scenario.cdns[0].active_sessions),
            "cdn2_sessions": lambda: float(scenario.cdns[1].active_sessions),
        },
        period_s=10.0,
    )
    sim.run(until=horizon_s)
    probe.stop()
    if hasattr(policy, "stop"):
        policy.stop()

    # QoE restricted to sessions that overlapped the fault window.
    fault_window = (scenario.fault_at_s, scenario.recover_at_s)
    affected = [
        player.qoe()
        for player in players
        if player.started_at is not None and player.started_at < fault_window[1]
    ]
    summary = summarize(affected)
    share_on_faulty_during = probe.window_mean(
        "cdn1_sessions", fault_window[0] + 60.0, fault_window[1]
    )
    total_during = share_on_faulty_during + probe.window_mean(
        "cdn2_sessions", fault_window[0] + 60.0, fault_window[1]
    )
    return {
        "config": config,
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "cdn_switches": summary["cdn_switches_per_session"],
        "engagement": summary["mean_engagement"],
        "abandoned": sum(1 for q in affected if q.abandoned),
        "faulty_cdn_share_during_fault": (
            share_on_faulty_during / total_during if total_during > 0 else 0.0
        ),
        "migrations": getattr(policy, "migrations", 0),
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E13-controlplane",
        notes="CDN 1 uplink collapses mid-run; per-session vs fleet steering",
    )
    for config in ("reactive", "coordinated"):
        result.add_row(**run_config(config, seed=seed, **kwargs))
    return result


def run_loop_latency(seed: int = 0, **kwargs) -> ExperimentResult:
    """Action→recovery spans of the CDN-fault worlds (DESIGN.md §13).

    The control plane here is app-internal (no I2A glass), so the
    causal chain is beacons → flushes and actions → recoveries; the
    hint stages must be structurally absent in both configs.
    """
    from repro.obs import spans

    result = ExperimentResult(
        name="E13-loop-latency",
        notes="causal loop stages (sim s) from captured spans; DESIGN.md §13",
    )
    for config in ("reactive", "coordinated"):
        with spans.capture() as events:
            row = run_config(config, seed=seed, **kwargs)
        result.merge_counters(row["_counters"])  # type: ignore[arg-type]
        result.add_row(**loop_latency_row(events, config=config))
    return result


def _collapse_plan():
    """The spec's cdn1-uplink-collapse plan at default parameters."""
    spec = load_library_spec("cdn-fault")
    (plan,) = spec.fault_plans(spec.resolved_params())
    return plan


register_plan(
    "cdn1-uplink-collapse",
    _collapse_plan,
    experiment="e13",
    description="CDN 1 uplink cut to degraded_mbps at 200s, restored at 500s",
)


register(
    ExperimentSpec(
        exp_id="e13",
        title="coordinated control plane (C3-style) vs per-session reaction (§1 trend 3)",
        source="paper §1 trend 3; cite [36]",
        module=__name__,
        variants=(
            VariantSpec(
                name="controlplane",
                runner=run,
                row_key="config",
                checks=(
                    # Fleet steering evacuates the faulty CDN; per-session
                    # reaction leaves most sessions suffering on it.
                    check(
                        "faulty_cdn_share_during_fault", "coordinated", "<", 0.15
                    ),
                    check("faulty_cdn_share_during_fault", "reactive", ">", 0.4),
                    check("mean_bitrate_mbps", "coordinated", ">", of="reactive"),
                    check("engagement", "coordinated", ">", of="reactive"),
                    check("migrations", "coordinated", ">", 0),
                ),
            ),
            VariantSpec(
                name="loop-latency",
                runner=run_loop_latency,
                row_key="config",
                checks=(
                    # App-internal control plane: beacons aggregate, but
                    # no I2A glass means no hint stages in either config.
                    check("a2i_reports", "*", ">", 0),
                    check("beacon_to_flush_n", "*", ">", 0),
                    check("i2a_hints", "*", "==", 0),
                    check("hint_to_action_n", "*", "==", 0),
                    check("action_to_recovery_n", "coordinated", ">", 0),
                ),
            ),
        ),
    )
)
