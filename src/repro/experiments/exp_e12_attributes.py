"""E12 -- Why A2I carries attributes (paper §3).

"We envision AppPs exporting critical application-centric experience
measures collected from client-side measurements **together with
relevant attributes (e.g., the client ISP...)**."  This experiment
makes the case quantitatively: one AppP serves viewers on two ISPs, a
flash crowd congests only ISP1's access segment, and the AppP's
congestion response is either

* **scoped** -- per-ISP bitrate caps keyed on the client-ISP attribute
  (each ISP publishes its own I2A congestion signal), or
* **unscoped** -- the same signals with the attribute discarded: any
  congestion caps the whole fleet.

Expected shape: both fix ISP1's buffering, but the unscoped response
needlessly drags ISP2's viewers down the ladder; scoping preserves
ISP2's bitrate at no cost to ISP1.
"""

from __future__ import annotations

from typing import Dict

from repro.core.appp import MultiIspEonaAppP, StatusQuoAppP
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import ExperimentResult, launch_video_sessions
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.workloads.arrivals import flash_crowd_rate
from repro.scenarios import build_scenario


def run_config(
    config: str,
    seed: int = 0,
    n_clients_per_isp: int = 15,
    horizon_s: float = 500.0,
) -> Dict[str, object]:
    """One run; ``config`` is 'status_quo', 'eona_unscoped', or 'eona_scoped'."""
    scenario = build_scenario(
        "two-isp", seed=seed, params={"n_clients_per_isp": n_clients_per_isp}
    )
    sim = scenario.sim
    registry = scenario.registry

    infps = []
    if config == "status_quo":
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
        infps.append(StatusQuoInfP(sim, scenario.network, [], stats_period_s=2.0))
    elif config in ("eona_scoped", "eona_unscoped"):
        glasses = {}
        for isp, access_link in (
            ("isp1", scenario.access_link_isp1),
            ("isp2", scenario.access_link_isp2),
        ):
            infp = EonaInfP(
                sim,
                scenario.network,
                [],
                registry=registry,
                access_links=[access_link],
                owner=isp,
                stats_period_s=2.0,
                i2a_refresh_s=5.0,
            )
            registry.grant(isp, "appp")
            glasses[isp] = infp.i2a
            infps.append(infp)
        policy = MultiIspEonaAppP(
            sim,
            scenario.cdns,
            isp_i2a_map=glasses,
            isp_of=lambda player: scenario.isp_of_client(player.client_node),
            scoped=(config == "eona_scoped"),
            name="appp",
        )
    else:
        raise ValueError(f"unknown config {config!r}")

    # Background viewers on both ISPs, plus a flash crowd that lands
    # only on ISP1's clients.
    players_isp1 = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.clients_isp1,
        rng=sim.rng.get("arrivals-isp1"),
        rate_fn=flash_crowd_rate(
            base_per_s=0.05, peak_per_s=0.8, onset_s=30.0, ramp_s=30.0,
            duration_s=60.0,
        ),
        max_rate_per_s=0.8,
        until=horizon_s * 0.6,
        content_picker=lambda index: scenario.catalog.by_rank(0),
        session_prefix="i1-",
    )
    players_isp2 = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.clients_isp2,
        rng=sim.rng.get("arrivals-isp2"),
        rate_per_s=0.1,
        until=horizon_s * 0.6,
        session_prefix="i2-",
    )
    sim.run(until=horizon_s)
    for infp in infps:
        infp.stop()
    if hasattr(policy, "stop"):
        policy.stop()

    summary_isp1 = summarize([p.qoe() for p in players_isp1])
    summary_isp2 = summarize([p.qoe() for p in players_isp2])
    return {
        "config": config,
        "isp1_buffering": summary_isp1["mean_buffering_ratio"],
        "isp1_bitrate": summary_isp1["mean_bitrate_mbps"],
        "isp2_buffering": summary_isp2["mean_buffering_ratio"],
        "isp2_bitrate": summary_isp2["mean_bitrate_mbps"],
        "isp1_engagement": summary_isp1["mean_engagement"],
        "isp2_engagement": summary_isp2["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E12-attributes",
        notes="flash crowd on ISP1 only; response scoped by client-ISP or not",
    )
    for config in ("status_quo", "eona_unscoped", "eona_scoped"):
        result.add_row(**run_config(config, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e12",
        title="why A2I carries the client-ISP attribute: scoped congestion response (§3)",
        source="paper §3 attributes",
        module=__name__,
        variants=(
            VariantSpec(
                name="attributes",
                runner=run,
                row_key="config",
                checks=(
                    # The congestion response fixes ISP1 either way...
                    check("isp1_buffering", "eona_scoped", "<", of="status_quo"),
                    check("isp1_buffering", "eona_unscoped", "<", of="status_quo"),
                    # ...but only scoping spares ISP2's viewers.
                    check("isp2_bitrate", "eona_unscoped", "<", 0.5, of="status_quo"),
                    check("isp2_bitrate", "eona_scoped", "==", of="status_quo"),
                    check(
                        "isp2_engagement", "eona_scoped", ">", of="eona_unscoped"
                    ),
                ),
            ),
        ),
    )
)
