"""E3 -- Reverse-engineering application experience (paper §2, Figure 4).

A cellular InfP wants per-session web QoE.  Status quo: it fits a model
from the network-level features it can observe passively (radio-state
occupancy, handovers, early-response timing, byte counts) and predicts
page-load time.  EONA: the AppP exports the measured PLT over A2I --
zero inference error by construction.

Expected shape: the inference carries substantial irreducible error
(MAE a large fraction of the PLT spread) and mis-ranks sessions, and it
degrades further as radio volatility grows; direct A2I export is exact.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.telemetry.inference import QoeInferenceModel, pageload_features
from repro.web.browser import PageLoadRecord
from repro.web.page import make_page
from repro.web.qoe import satisfaction_from_plt
from repro.web.radio import DEFAULT_TRANSITIONS
from repro.scenarios import build_scenario


def generate_pageloads(
    seed: int = 0,
    n_clients: int = 12,
    n_pages_per_client: int = 30,
    think_time_s: float = 3.0,
    radio_volatility: float = 1.0,
) -> List[PageLoadRecord]:
    """Simulate browsing sessions and return every page-load record.

    ``radio_volatility`` scales the off-diagonal transition mass of the
    radio Markov chain: 0 = frozen radio, 1 = the default dynamics,
    >1 = churnier (more handovers, faster fading).
    """
    scenario = build_scenario(
        "cellular-web", seed=seed, params={"n_clients": n_clients}
    )
    sim = scenario.sim
    if radio_volatility != 1.0:
        transitions = _scaled_transitions(radio_volatility)
        for radio in scenario.radios:
            radio.transitions = transitions

    page_rng = scenario.rng
    records: List[PageLoadRecord] = []

    def browse(browser, remaining: int, index: int) -> None:
        if remaining <= 0:
            return
        page = make_page(page_rng, page_id=f"p{index}-{remaining}")

        def done(record: PageLoadRecord) -> None:
            records.append(record)
            sim.schedule(
                page_rng.expovariate(1.0 / think_time_s),
                browse,
                browser,
                remaining - 1,
                index,
            )

        browser.load_page(page, on_done=done)

    for index, browser in enumerate(scenario.browsers):
        sim.schedule(page_rng.uniform(0, 5), browse, browser, n_pages_per_client, index)
    sim.run(max_events=5_000_000)
    for radio in scenario.radios:
        radio.stop()
    return records


def _scaled_transitions(volatility: float):
    scaled = {}
    for state, row in DEFAULT_TRANSITIONS.items():
        stay = row.get(state, 0.0)
        move = 1.0 - stay
        new_move = min(1.0, move * volatility)
        factor = new_move / move if move > 0 else 0.0
        new_row = {
            target: probability * factor
            for target, probability in row.items()
            if target is not state
        }
        new_row[state] = 1.0 - sum(new_row.values())
        scaled[state] = new_row
    return scaled


def evaluate_inference(
    records: List[PageLoadRecord],
    train_fraction: float = 0.6,
    seed: int = 0,
) -> Dict[str, float]:
    """Train/test split, fit the InfP's model, report accuracy."""
    if len(records) < 10:
        raise ValueError(f"need at least 10 records, got {len(records)}")
    rng = random.Random(seed)
    shuffled = list(records)
    rng.shuffle(shuffled)
    split = int(len(shuffled) * train_fraction)
    train, test = shuffled[:split], shuffled[split:]
    model = QoeInferenceModel()
    model.fit([pageload_features(r) for r in train], [r.plt_s for r in train])
    report = model.evaluate(
        [pageload_features(r) for r in test], [r.plt_s for r in test]
    )
    plts = [r.plt_s for r in test]
    mean_plt = sum(plts) / len(plts)
    spread = (sum((p - mean_plt) ** 2 for p in plts) / len(plts)) ** 0.5
    # Decision-level error: does predicted satisfaction flag the same
    # "bad" sessions as the truth?
    threshold = 0.5
    predictions = model.predict([pageload_features(r) for r in test])
    truth_bad = [satisfaction_from_plt(p) < threshold for p in plts]
    predicted_bad = [
        satisfaction_from_plt(max(0.0, float(p))) < threshold for p in predictions
    ]
    agree = sum(t == p for t, p in zip(truth_bad, predicted_bad))
    return {
        "n_test": len(test),
        "mae_s": report.mae,
        "rmse_s": report.rmse,
        "spearman": report.spearman,
        "plt_std_s": spread,
        "relative_mae": report.mae / spread if spread > 0 else 0.0,
        "bad_session_detection_acc": agree / len(test),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    """Direct A2I export vs. network-level inference."""
    result = ExperimentResult(
        name="E3-inference",
        notes="predicting web PLT from InfP-visible features (Figure 4)",
    )
    records = generate_pageloads(seed=seed, **kwargs)
    inferred = evaluate_inference(records, seed=seed)
    result.add_row(
        method="a2i_direct",
        n_test=inferred["n_test"],
        mae_s=0.0,
        rmse_s=0.0,
        spearman=1.0,
        relative_mae=0.0,
        bad_session_detection_acc=1.0,
    )
    result.add_row(method="network_inference", **inferred)
    return result


def run_volatility_sweep(
    seed: int = 0,
    volatilities: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    **kwargs,
) -> ExperimentResult:
    """Inference error vs. radio churn: the proxy gets worse as the
    hidden state moves faster than the features can summarize."""
    result = ExperimentResult(
        name="E3-volatility-sweep",
        notes="inference degradation as radio dynamics speed up",
    )
    for volatility in volatilities:
        records = generate_pageloads(
            seed=seed, radio_volatility=volatility, **kwargs
        )
        inferred = evaluate_inference(records, seed=seed)
        result.add_row(
            radio_volatility=volatility,
            mae_s=inferred["mae_s"],
            spearman=inferred["spearman"],
            relative_mae=inferred["relative_mae"],
            detection_acc=inferred["bad_session_detection_acc"],
        )
    return result


register(
    ExperimentSpec(
        exp_id="e3",
        title="inferring web QoE from network features vs direct A2I (Figure 4)",
        source="paper §2, third bullet; Figure 4",
        module=__name__,
        variants=(
            VariantSpec(
                name="inference",
                runner=lambda seed: run(seed=seed, n_clients=10, n_pages_per_client=25),
                row_key="method",
                checks=(
                    check("mae_s", "a2i_direct", "==", 0.0),
                    check("spearman", "a2i_direct", "==", 1.0),
                    check("mae_s", "network_inference", ">", 0.05),
                    check("relative_mae", "network_inference", ">", 0.1),
                    check("bad_session_detection_acc", "network_inference", "<", 1.0),
                ),
            ),
            VariantSpec(
                name="volatility-sweep",
                runner=lambda seed: run_volatility_sweep(
                    seed=seed,
                    volatilities=(0.5, 1.0, 2.0),
                    n_clients=8,
                    n_pages_per_client=20,
                ),
                row_key="radio_volatility",
                checks=(
                    # Faster hidden-state dynamics degrade the proxy.
                    check("mae_s", 2.0, ">=", 0.5, of=0.5),
                ),
            ),
        ),
    )
)
