"""E8 -- Fairness across AppPs (paper §5, "fairness and trust").

One ISP serves two application providers with unequal demand, each
delivered by its own CDN; both CDNs can egress at peering B (small) or
C (medium), and the two together only fit if they are *split* across
the peerings.  The concern the paper raises: does an InfP optimizing
with EONA information starve one AppP?

Expected shape: greedy TE herds both groups onto the same peering and
both suffer (heavy one worst); EONA's demand-aware placement separates
them, lifting both AppPs' QoE and pushing the Jain index toward 1.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.modes import Mode
from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.context import build_context
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import (
    ExperimentResult,
    jain_index,
    launch_video_sessions,
    qoe_of,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.network.topology import NodeKind, Topology
from repro.sdn.te import EgressGroup
from repro.video.qoe import engagement_score, summarize


def _build_world(seed: int, n_heavy: int, n_light: int):
    topo = Topology("fairness")
    topo.add_node("cdnA", NodeKind.SERVER, owner="cdnA")
    topo.add_node("cdnB", NodeKind.SERVER, owner="cdnB")
    topo.add_node("peerB", NodeKind.PEERING, owner="isp")
    topo.add_node("peerC", NodeKind.PEERING, owner="isp")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_node("agg", NodeKind.ROUTER, owner="isp")
    topo.add_link("cdnA", "peerB", 10_000.0, delay_ms=2, owner="cdnA")
    topo.add_link("cdnA", "peerC", 10_000.0, delay_ms=6, owner="cdnA")
    topo.add_link("cdnB", "peerB", 10_000.0, delay_ms=2, owner="cdnB")
    topo.add_link("cdnB", "peerC", 10_000.0, delay_ms=6, owner="cdnB")
    link_b = topo.add_link("peerB", "core", 40.0, delay_ms=1, owner="isp", tags=("peering",))
    link_c = topo.add_link("peerC", "core", 70.0, delay_ms=1, owner="isp", tags=("peering",))
    topo.add_link("core", "agg", 10_000.0, delay_ms=2, owner="isp")
    clients = []
    for index in range(n_heavy + n_light):
        node = f"client{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("agg", node, 100.0, delay_ms=5, owner="isp")
        clients.append(node)
    ctx = build_context(topology=topo, seed=seed)
    catalog = ContentCatalog(n_items=10, duration_s=180.0)
    cdn_a = Cdn("cdnA", [CdnServer("cdnA.s1", "cdnA", capacity_sessions=10_000)], ctx=ctx)
    cdn_b = Cdn("cdnB", [CdnServer("cdnB.s1", "cdnB", capacity_sessions=10_000)], ctx=ctx)
    groups = [
        EgressGroup(
            name="cdnA",
            remote="cdnA",
            candidates=["peerB", "peerC"],
            egress_links={"peerB": link_b.link_id, "peerC": link_c.link_id},
            preferred="peerB",
        ),
        EgressGroup(
            name="cdnB",
            remote="cdnB",
            candidates=["peerB", "peerC"],
            egress_links={"peerB": link_b.link_id, "peerC": link_c.link_id},
            preferred="peerB",
        ),
    ]
    return ctx, catalog, cdn_a, cdn_b, groups, clients


def run_mode(
    mode: Mode,
    seed: int = 0,
    n_heavy: int = 16,
    n_light: int = 8,
    horizon_s: float = 900.0,
    te_period_s: float = 45.0,
) -> Dict[str, object]:
    ctx, catalog, cdn_a, cdn_b, groups, clients = _build_world(
        seed, n_heavy, n_light
    )
    sim = ctx.sim
    registry = ctx.registry
    heavy_clients = clients[:n_heavy]
    light_clients = clients[n_heavy:]

    if mode is Mode.EONA:
        appp_heavy = EonaAppP(ctx, [cdn_a], name="appp-heavy")
        appp_light = EonaAppP(ctx, [cdn_b], name="appp-light")
        glasses = [
            appp_heavy.make_a2i(registry),
            appp_light.make_a2i(registry),
        ]
        registry.grant("appp-heavy", "isp")
        registry.grant("appp-light", "isp")
        infp = EonaInfP(
            ctx,
            groups=groups,
            appp_a2i=glasses,
            te_period_s=te_period_s,
        )
        registry.grant("isp", "appp-heavy")
        registry.grant("isp", "appp-light")
        appp_heavy.isp_i2a = infp.i2a
        appp_light.isp_i2a = infp.i2a
    elif mode is Mode.STATUS_QUO:
        appp_heavy = StatusQuoAppP(ctx, [cdn_a], name="appp-heavy")
        appp_light = StatusQuoAppP(ctx, [cdn_b], name="appp-light")
        infp = StatusQuoInfP(ctx, groups=groups, te_period_s=te_period_s)
    else:
        raise ValueError(f"E8 does not support {mode}")

    heavy_players = launch_video_sessions(
        ctx, catalog=catalog, policy=appp_heavy, client_nodes=heavy_clients,
        rng=sim.rng.get("arrivals-heavy"),
        rate_per_s=n_heavy / 180.0,
        until=horizon_s - 200.0,
        session_prefix="h",
    )
    light_players = launch_video_sessions(
        ctx, catalog=catalog, policy=appp_light, client_nodes=light_clients,
        rng=sim.rng.get("arrivals-light"),
        rate_per_s=n_light / 180.0,
        until=horizon_s - 200.0,
        session_prefix="l",
    )
    probe: Dict[str, object] = {}

    def take_probe() -> None:
        probe["split"] = infp.te.selection("cdnA") != infp.te.selection("cdnB")

    sim.schedule_at(horizon_s * 0.7, take_probe)
    sim.run(until=horizon_s)
    infp.stop()

    heavy_qoe = qoe_of(heavy_players)
    light_qoe = qoe_of(light_players)
    heavy_summary = summarize(heavy_qoe)
    light_summary = summarize(light_qoe)
    fairness = jain_index(
        [engagement_score(q) for q in heavy_qoe]
        + [engagement_score(q) for q in light_qoe]
    )
    return {
        "mode": mode.value,
        "heavy_buffering": heavy_summary["mean_buffering_ratio"],
        "light_buffering": light_summary["mean_buffering_ratio"],
        "heavy_engagement": heavy_summary["mean_engagement"],
        "light_engagement": light_summary["mean_engagement"],
        "jain_sessions": fairness,
        "te_switches": infp.te.switch_count(),
        "split_across_peerings": bool(probe.get("split", False)),
        "_counters": ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E8-fairness",
        notes="two AppPs, shared peerings; does EONA TE starve one?",
    )
    for mode in (Mode.STATUS_QUO, Mode.EONA):
        result.add_row(**run_mode(mode, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e8",
        title="fairness across multiple AppPs (§5)",
        source="paper §5 fairness and trust",
        module=__name__,
        variants=(
            VariantSpec(
                name="fairness",
                runner=run,
                checks=(
                    check("heavy_engagement", "eona", ">=", of="status_quo"),
                    check("light_engagement", "eona", ">=", of="status_quo"),
                    check("jain_sessions", "eona", ">=", 0.95),
                    check("split_across_peerings", "eona", "truthy"),
                    check("te_switches", "eona", "<", of="status_quo"),
                ),
            ),
        ),
    )
)
