"""Multi-seed experiment aggregation.

Every experiment's ``run_mode``/``run_config`` entry point takes a
``seed``; this module re-runs one across seeds and reduces the numeric
columns to mean ± stddev, so claims like "EONA cuts buffering 2.3×" can
be checked for seed-robustness rather than read off a single run.
"""

from __future__ import annotations

import functools
import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs.trace import TRACER

RowFn = Callable[..., Dict[str, object]]


def _run_one(row_fn: RowFn, kwargs: Dict[str, object], seed: int) -> Dict[str, object]:
    # Worker-process entry point.  On fork-start platforms the worker
    # inherits the parent's enabled tracer -- including its open sink
    # handle; tracing must be opt-in per worker or the processes would
    # interleave nondeterministically into one file.
    TRACER.deactivate_inherited()
    return row_fn(seed=seed, **kwargs)


def run_seeds(
    row_fn: RowFn,
    seeds: Sequence[int],
    parallel: bool = False,
    max_workers: Optional[int] = None,
    **kwargs,
) -> List[Dict[str, object]]:
    """Run ``row_fn(seed=s, **kwargs)`` for every seed; returns raw rows.

    With ``parallel=True`` the seeds run in worker processes (each seed
    is an independent simulation, so this is embarrassingly parallel);
    ``row_fn`` and every kwarg must then be picklable (module-level
    functions, not lambdas or closures).  Row order always matches
    ``seeds``, so serial and parallel sweeps aggregate identically.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if not parallel:
        return [row_fn(seed=seed, **kwargs) for seed in seeds]
    from concurrent.futures import ProcessPoolExecutor

    workers = max_workers if max_workers is not None else min(len(seeds), 8)
    run_one = functools.partial(_run_one, row_fn, kwargs)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_one, seeds))


def aggregate_rows(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Reduce rows to per-column mean and stddev.

    Columns are the stable-ordered union of keys across *all* rows
    (first-seen order), so a column that only appears from some seed
    onward is still aggregated rather than silently dropped; each
    column reduces over the rows that actually carry it.  Keys starting
    with ``_`` are per-row provenance (e.g. ``_counters``) and are
    skipped.  Numeric columns become ``<name>_mean`` / ``<name>_std``;
    boolean columns become the fraction true (``<name>_frac``);
    non-numeric columns keep their value when it agrees across seeds,
    else the sorted set of observed values joined with ``|`` (a
    run-dependent label such as which egress a probe caught is data,
    not an error).
    """
    if not rows:
        raise ValueError("need at least one row")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if not key.startswith("_") and key not in columns:
                columns.append(key)
    aggregated: Dict[str, object] = {"n_seeds": len(rows)}
    for key in columns:
        values = [row[key] for row in rows if key in row]
        if all(isinstance(v, bool) for v in values):
            aggregated[f"{key}_frac"] = sum(values) / len(values)
        elif all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            aggregated[f"{key}_mean"] = mean
            aggregated[f"{key}_std"] = math.sqrt(variance)
        else:
            distinct = sorted({str(v) for v in values})
            aggregated[key] = values[0] if len(distinct) == 1 else "|".join(distinct)
    return aggregated


def multiseed_result(
    name: str,
    row_fn: RowFn,
    configs: Sequence[Dict[str, object]],
    seeds: Sequence[int],
    config_key: str = "mode",
    notes: str = "",
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> ExperimentResult:
    """Build a mean±std table over ``configs`` × ``seeds``.

    Args:
        name: Result table name.
        row_fn: The experiment's per-run entry point.
        configs: One kwargs dict per table row (e.g. ``{"mode": Mode.EONA}``).
        seeds: Seeds to aggregate over.
        config_key: Informational only; named in the notes.
        notes: Extra provenance appended to the table notes.
        parallel: Run each config's seeds in worker processes (see
            :func:`run_seeds`).
        max_workers: Process-pool size when ``parallel`` is set.
    """
    result = ExperimentResult(
        name=name,
        notes=(f"mean±std over seeds {list(seeds)}; " + notes).strip("; "),
    )
    for config in configs:
        rows = run_seeds(
            row_fn, seeds, parallel=parallel, max_workers=max_workers, **config
        )
        result.add_row(**aggregate_rows(rows))
    return result
