"""E17 -- Low-latency gaming under bulk cross-traffic (fleet workload).

The ``gaming`` spec declares a game server, a player group, and a bulk
video population sharing one access aggregate.  Gaming QoE is *tail
latency*: a p50 state-fetch is fine, a p95 stall ruins the match.  We
drive the players' small-object fetches twice -- on an idle aggregate
and with the spec's bulk population running -- and measure how the
cross-traffic stretches the tail, the coexistence problem that makes
low-latency traffic a first-class EONA tenant.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.appp import StatusQuoAppP
from repro.experiments.common import ExperimentResult, launch_video_sessions
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.scenarios import build_scenario
from repro.web.page import make_page


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def run_config(
    config: str,
    seed: int = 0,
    horizon_s: float = 240.0,
    fetches_per_player: int = 12,
    think_time_s: float = 2.0,
) -> Dict[str, object]:
    world = build_scenario("gaming", seed=seed)
    sim = world.sim

    if config == "congested":
        bulk = world.population("bulk-sessions")
        launch_video_sessions(
            world.ctx,
            catalog=world.catalog,
            policy=StatusQuoAppP(sim, world.cdn_list, name="appp"),
            **bulk.launch_kwargs(until=horizon_s),
        )
    elif config != "idle":
        raise ValueError(f"unknown config {config!r}")

    page_rng = sim.rng.get("game-fetches")
    latencies: List[float] = []

    def fetch(browser, remaining: int, index: int) -> None:
        if remaining <= 0:
            return
        page = make_page(page_rng, page_id=f"g{index}-{remaining}")

        def done(record) -> None:
            latencies.append(record.plt_s)
            sim.schedule(
                page_rng.expovariate(1.0 / think_time_s),
                fetch, browser, remaining - 1, index,
            )

        browser.load_page(page, on_done=done)

    for index, browser in enumerate(world.browsers):
        sim.schedule(page_rng.uniform(0, 5), fetch, browser, fetches_per_player, index)
    sim.run(until=horizon_s)

    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    return {
        "config": config,
        "n_fetches": len(latencies),
        "p50_latency_s": p50,
        "p95_latency_s": p95,
        "tail_ratio": p95 / p50 if p50 > 0 else 0.0,
        "_counters": world.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E17-gaming",
        notes="declarative gaming spec: tail latency of small fetches vs bulk load",
    )
    for config in ("idle", "congested"):
        result.add_row(**run_config(config, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e17",
        title="low-latency gaming tail latency under bulk cross-traffic (fleet workload)",
        source="declarative scenario 'gaming'",
        module=__name__,
        variants=(
            VariantSpec(
                name="tail-latency",
                runner=run,
                row_key="config",
                checks=(
                    check("n_fetches", "idle", ">", 50),
                    check("n_fetches", "congested", ">", 50),
                    # Bulk cross-traffic stretches the tail.
                    check("p95_latency_s", "congested", ">", of="idle"),
                    check("tail_ratio", "congested", ">", 1.0),
                ),
            ),
        ),
    )
)
