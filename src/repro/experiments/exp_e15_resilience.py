"""E15 -- Resilience: EONA under fault injection (DESIGN.md §10).

The paper's architecture adds a dependency: control loops now consume
another provider's looking glass.  This experiment injects the failures
that dependency invites -- the glass goes dark mid flash crowd, its
snapshots freeze and quietly go stale, links flap under the data plane
-- and asserts the two properties that make the dependency safe:

* **Graceful degradation** (``glass-outage``, ``stale-freeze``): when
  the ISP's I2A glass dies or lies, an EONA AppP with fallback enabled
  trips back to status-quo (blackbox) behavior and re-engages, damped,
  once the glass recovers.  Degraded EONA must never do worse than the
  status quo it falls back to.

* **Apply/revert symmetry** (``link-flap``): a fault plan whose every
  fault recovers leaves the world *exactly* where a never-faulted run
  ends -- post-recovery allocations match within 1e-6 -- while rates
  demonstrably diverged mid-fault.

Every row folds the injector's dotted ``faults.*`` counters into the
run artifact's metrics snapshot via ``_counters``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.context import build_context
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import (
    ExperimentResult,
    launch_video_sessions,
    loop_latency_row,
    qoe_of,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.faults import FaultInjector, FaultPlan, PlanBuilder, register_plan
from repro.network.topology import NodeKind, Topology
from repro.scenarios import build_scenario, trace_phases
from repro.video.qoe import summarize

#: Staleness bound (seconds) the fallback-enabled controllers enforce in
#: the stale-freeze variant.  The healthy glass refreshes every 10s, so
#: 30s of age is unambiguously a frozen snapshot, never a slow one.
STALE_TOLERANCE_S = 30.0


# ----------------------------------------------------------------------
# Canonical fault plans (registered for `eona faults`)
# ----------------------------------------------------------------------
def glass_outage_plan() -> FaultPlan:
    """ISP I2A dark through the flash-crowd peak; ISP restarts mid-outage."""
    return (
        PlanBuilder(
            "e15-glass-outage",
            "ISP I2A glass down 40s..300s (spanning the flash-crowd peak); "
            "ISP stats soft state wiped at 150s",
        )
        .glass_outage("isp", at=40.0, until=300.0)
        .restart_provider("isp", at=150.0)
        .build()
    )


def stale_freeze_plan() -> FaultPlan:
    """ISP I2A snapshots freeze during the peak and silently go stale."""
    return (
        PlanBuilder(
            "e15-stale-freeze",
            "ISP I2A snapshots frozen 135s..400s: the glass answers, but "
            "its congested-at-the-peak picture never updates, long after "
            "the crowd has drained",
        )
        .freeze_queries("isp", at=135.0, until=400.0)
        .build()
    )


def link_flap_plan() -> FaultPlan:
    """Every fault recovers: cut+flap the shared uplink, kill one leaf."""
    return (
        PlanBuilder(
            "e15-link-flap",
            "shared uplink flaps (half capacity, 10s of every 30s, "
            "30s..120s) and one client leaf is killed 50s..90s; all "
            "faults recover, so the end state must equal a clean run",
        )
        .flap_link("a->core", at=30.0, until=120.0, down_s=10.0, period_s=30.0, factor=0.5)
        .kill_link("core->c0", at=50.0, until=90.0)
        .build()
    )


# ----------------------------------------------------------------------
# Degradation variants: the flash-crowd world with a failing glass
# ----------------------------------------------------------------------
def _run_degraded_mode(
    row: str,
    seed: int,
    plan: Optional[FaultPlan],
    fallback_enabled: bool = True,
    stale_tolerance_s: float = math.inf,
    n_clients: int = 30,
    access_capacity_mbps: float = 45.0,
    peak_rate_per_s: float = 1.5,
    horizon_s: float = 600.0,
) -> Dict[str, object]:
    """One row of a degradation table: the E2 world plus a fault plan.

    The world and workload are exactly E2's canonical flash crowd, so a
    clean ``eona`` row here reproduces E2's -- the only new variable is
    the plan.
    """
    scenario = build_scenario(
        "flash-crowd",
        seed=seed,
        params={
            "n_clients": n_clients,
            "access_capacity_mbps": access_capacity_mbps,
            "peak_rate_per_s": peak_rate_per_s,
        },
    )
    ctx = scenario.ctx
    sim = ctx.sim

    injector = None
    if row == "status_quo":
        infp = StatusQuoInfP(ctx, stats_period_s=2.0)
        policy: StatusQuoAppP = StatusQuoAppP(ctx, name="appp")
    else:
        infp = EonaInfP(
            ctx,
            access_links=[scenario.access_link],
            i2a_refresh_s=10.0,
            stats_period_s=2.0,
        )
        ctx.registry.grant("isp", "appp")
        policy = EonaAppP(
            ctx,
            isp_i2a=infp.i2a,
            name="appp",
            fallback_enabled=fallback_enabled,
            stale_tolerance_s=stale_tolerance_s,
        )
    if plan is not None:
        injector = FaultInjector(ctx)
        if isinstance(infp, EonaInfP):
            injector.register_glass("isp", infp.i2a)
        injector.register_provider("isp", infp.reset_soft_state)
        injector.install(plan)

    trace_phases(sim, "resilience", {"onset": 30.0, "peak": 60.0, "decay": 120.0})
    players = launch_video_sessions(
        ctx,
        catalog=scenario.catalog,
        policy=policy,
        content_picker=lambda index: scenario.catalog.by_rank(0),
        **scenario.world.population("viewers").launch_kwargs(until=horizon_s * 0.6),
    )
    sim.run(until=horizon_s)
    infp.stop()

    summary = summarize(qoe_of(players))
    counters = dict(ctx.allocation_counters())
    if injector is not None:
        counters.update(injector.counters())
    return {
        "mode": row,
        "sessions": len(players),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "cdn_switches": summary["cdn_switches_per_session"],
        "engagement": summary["mean_engagement"],
        "glass_errors": getattr(policy, "glass_errors", 0),
        "fallback_activations": getattr(policy, "fallback_activations", 0),
        "fallback_reengagements": getattr(policy, "fallback_reengagements", 0),
        "_counters": counters,
    }


def run_glass_outage(seed: int = 0, **kwargs) -> ExperimentResult:
    """The I2A glass dies under the flash crowd: does EONA stay standing?

    Rows: clean ``status_quo`` and ``eona`` anchors, then the plan
    applied to EONA with fallback disabled (``eona_rigid``) and enabled
    (``eona_fallback``).  The claim: fallback EONA degrades *to* the
    status quo, not below it, and re-engages after recovery.
    """
    result = ExperimentResult(
        name="E15-glass-outage",
        notes="ISP I2A outage spanning the flash-crowd peak (DESIGN.md §10)",
    )
    plan = glass_outage_plan()
    result.add_row(**_run_degraded_mode("status_quo", seed, None, **kwargs))
    result.add_row(**_run_degraded_mode("eona", seed, None, **kwargs))
    result.add_row(
        **_run_degraded_mode(
            "eona_rigid", seed, plan, fallback_enabled=False, **kwargs
        )
    )
    result.add_row(**_run_degraded_mode("eona_fallback", seed, plan, **kwargs))
    return result


def run_loop_latency(seed: int = 0, **kwargs) -> ExperimentResult:
    """Causal loop spans of clean EONA vs the glass-outage fallback.

    The resilience angle on DESIGN.md §13: the hint→action chain must
    exist in both rows (fallback re-engages once the glass recovers at
    300s), and the clean world must produce at least as many
    hint-caused actions as the one that spent the peak dark.
    """
    from repro.obs import spans

    result = ExperimentResult(
        name="E15-loop-latency",
        notes="causal loop stages (sim s): clean EONA vs glass-outage fallback",
    )
    for row_name, plan in (("eona", None), ("eona_fallback", glass_outage_plan())):
        with spans.capture() as events:
            row = _run_degraded_mode(row_name, seed, plan, **kwargs)
        result.merge_counters(row["_counters"])  # type: ignore[arg-type]
        result.add_row(**loop_latency_row(events, mode=row_name))
    return result


def run_stale_freeze(seed: int = 0, **kwargs) -> ExperimentResult:
    """The glass keeps answering but its snapshots froze at the peak.

    A frozen glass is worse than a dead one: ``eona_rigid`` (no
    staleness bound) keeps obeying a congestion picture from the peak
    long after the crowd has left, holding bitrates down.  The
    fallback row bounds snapshot age at :data:`STALE_TOLERANCE_S`,
    treats over-stale answers as failures, and recovers.
    """
    result = ExperimentResult(
        name="E15-stale-freeze",
        notes="ISP I2A snapshots frozen at the flash-crowd peak",
    )
    plan = stale_freeze_plan()
    result.add_row(**_run_degraded_mode("status_quo", seed, None, **kwargs))
    result.add_row(
        **_run_degraded_mode(
            "eona_rigid", seed, plan, fallback_enabled=False, **kwargs
        )
    )
    result.add_row(
        **_run_degraded_mode(
            "eona_fallback", seed, plan, stale_tolerance_s=STALE_TOLERANCE_S, **kwargs
        )
    )
    return result


# ----------------------------------------------------------------------
# Apply/revert symmetry: link flaps must leave no trace
# ----------------------------------------------------------------------
def _build_flap_world(seed: int):
    """Small streams world: two servers share an uplink into four leaves.

    The uplink is undersized (60 Mbps for 4x40 Mbps of demand) so every
    capacity change moves the max-min allocation -- a fault that failed
    to revert cannot hide behind slack capacity.
    """
    topo = Topology("resilience-flap")
    topo.add_node("a", NodeKind.SERVER, owner="cdn")
    topo.add_node("b", NodeKind.SERVER, owner="cdn")
    topo.add_node("core", NodeKind.ROUTER, owner="isp")
    topo.add_link("a", "core", 60.0, delay_ms=5, owner="isp")
    topo.add_link("b", "core", 60.0, delay_ms=5, owner="isp")
    clients = []
    for index in range(4):
        node = f"c{index}"
        topo.add_node(node, NodeKind.CLIENT, owner="isp")
        topo.add_link("core", node, 50.0, delay_ms=2, owner="isp")
        clients.append(node)
    ctx = build_context(topology=topo, seed=seed)
    streams = [
        ctx.network.start_stream("a" if index % 2 == 0 else "b", node, 40.0)
        for index, node in enumerate(clients)
    ]
    return ctx, streams


def _rates(streams) -> List[float]:
    return [stream.rate_mbps for stream in streams]


def run_link_flap(
    seed: int = 0,
    mid_sample_s: float = 55.0,
    horizon_s: float = 240.0,
) -> ExperimentResult:
    """Run the same world clean and faulted; compare allocations.

    ``mid_fault_divergence`` (sampled at ``mid_sample_s``, inside both
    the flap's down interval and the leaf kill) proves the plan bit;
    ``post_recovery_divergence`` (sampled at ``horizon_s``, after every
    fault reverted) proves apply/revert symmetry: <= 1e-6.
    """
    plan = link_flap_plan()

    clean_ctx, clean_streams = _build_flap_world(seed)
    clean_ctx.sim.run(until=mid_sample_s)
    clean_mid = _rates(clean_streams)
    clean_ctx.sim.run(until=horizon_s)
    clean_end = _rates(clean_streams)

    faulted_ctx, faulted_streams = _build_flap_world(seed)
    injector = FaultInjector(faulted_ctx)
    injector.install(plan)
    faulted_ctx.sim.run(until=mid_sample_s)
    faulted_mid = _rates(faulted_streams)
    faulted_ctx.sim.run(until=horizon_s)
    faulted_end = _rates(faulted_streams)

    mid_divergence = max(
        abs(c - f) for c, f in zip(clean_mid, faulted_mid)
    )
    post_divergence = max(
        abs(c - f) for c, f in zip(clean_end, faulted_end)
    )
    counters = dict(faulted_ctx.allocation_counters())
    counters.update(injector.counters())
    result = ExperimentResult(
        name="E15-link-flap",
        notes="apply/revert symmetry: a fully recovered plan leaves no trace",
    )
    result.add_row(
        mode="flap",
        streams=len(faulted_streams),
        plan_events=len(plan),
        faults_injected=injector.counters().get("faults.injected", 0),
        faults_recovered=injector.counters().get("faults.recovered", 0),
        mid_fault_divergence=mid_divergence,
        post_recovery_divergence=post_divergence,
        _counters=counters,
    )
    return result


# ----------------------------------------------------------------------
# `eona faults` demo appliers (run the plan on the canonical world)
# ----------------------------------------------------------------------
def _apply_degraded(plan: FaultPlan) -> Mapping[str, int]:
    row = _run_degraded_mode("eona_fallback", 0, plan)
    counters = row["_counters"]
    return {
        key: counters[key] for key in sorted(counters) if key.startswith("faults.")
    }


def _apply_stale(plan: FaultPlan) -> Mapping[str, int]:
    row = _run_degraded_mode(
        "eona_fallback", 0, plan, stale_tolerance_s=STALE_TOLERANCE_S
    )
    counters = row["_counters"]
    return {
        key: counters[key] for key in sorted(counters) if key.startswith("faults.")
    }


def _apply_flap(plan: FaultPlan) -> Mapping[str, int]:
    ctx, _streams = _build_flap_world(0)
    injector = FaultInjector(ctx)
    injector.install(plan)
    ctx.sim.run(until=240.0)
    return injector.counters()


register_plan(
    "e15-glass-outage",
    glass_outage_plan,
    experiment="e15",
    description="ISP I2A dark 40s..300s + soft-state wipe at 150s",
    apply=_apply_degraded,
)
register_plan(
    "e15-stale-freeze",
    stale_freeze_plan,
    experiment="e15",
    description="ISP I2A snapshots frozen 135s..400s (stale, not silent)",
    apply=_apply_stale,
)
register_plan(
    "e15-link-flap",
    link_flap_plan,
    experiment="e15",
    description="uplink flaps + leaf kill, all recovered by 120s",
    apply=_apply_flap,
)


register(
    ExperimentSpec(
        exp_id="e15",
        title="resilience under fault injection (graceful degradation)",
        source="DESIGN.md §10; paper §3 'incremental deployment' discussion",
        module=__name__,
        variants=(
            VariantSpec(
                name="glass-outage",
                runner=run_glass_outage,
                checks=(
                    # Degraded EONA falls back *to* status quo, not below.
                    check("engagement", "eona_fallback", ">=", of="status_quo",
                          plus=-0.02),
                    check("buffering_ratio", "eona_fallback", "<=",
                          of="status_quo", plus=0.02),
                    # The outage was seen and the fallback actually tripped...
                    check("glass_errors", "eona_fallback", ">", 0),
                    check("fallback_activations", "eona_fallback", ">", 0),
                    # ...and EONA re-engaged, damped, after recovery.
                    check("fallback_reengagements", "eona_fallback", ">", 0),
                    # The rigid row saw the same errors but never tripped.
                    check("glass_errors", "eona_rigid", ">", 0),
                    check("fallback_activations", "eona_rigid", "==", 0),
                    # Clean EONA anchor: no errors, no fallback.
                    check("glass_errors", "eona", "==", 0),
                    check("fallback_activations", "eona", "==", 0),
                ),
            ),
            VariantSpec(
                name="stale-freeze",
                runner=run_stale_freeze,
                checks=(
                    # Bounding staleness must not hurt QoE vs trusting lies.
                    check("engagement", "eona_fallback", ">=", of="eona_rigid",
                          plus=-0.02),
                    check("mean_bitrate_mbps", "eona_fallback", ">=",
                          of="eona_rigid", plus=-0.05),
                    # Over-stale answers were detected and tripped fallback.
                    check("glass_errors", "eona_fallback", ">", 0),
                    check("fallback_activations", "eona_fallback", ">", 0),
                    # Without a staleness bound the freeze goes unnoticed.
                    check("glass_errors", "eona_rigid", "==", 0),
                    check("fallback_activations", "eona_rigid", "==", 0),
                ),
            ),
            VariantSpec(
                name="loop-latency",
                runner=run_loop_latency,
                checks=(
                    check("beacon_to_flush_n", "*", ">", 0),
                    # The chain survives the outage (glass back at 300s)...
                    check("i2a_hints", "*", ">", 0),
                    check("hint_to_action_n", "eona", ">", 0),
                    # ...but the dark window visibly thins it out.
                    check("i2a_hints", "eona", ">", of="eona_fallback"),
                    check("hint_to_action_n", "eona", ">=",
                          of="eona_fallback"),
                ),
            ),
            VariantSpec(
                name="link-flap",
                runner=run_link_flap,
                checks=(
                    # Apply/revert symmetry: recovered == never-faulted.
                    check("post_recovery_divergence", "flap", "<=", 1e-6),
                    # ...and the faults demonstrably bit mid-run.
                    check("mid_fault_divergence", "flap", ">", 1.0),
                    check("faults_injected", "flap", ">", 0),
                    check("faults_recovered", "flap", ">", 0),
                    check("faults_injected", "flap", "==",
                          of="flap", of_column="faults_recovered"),
                ),
            ),
        ),
    )
)
