"""E2 -- "Lack of visibility" (paper §2, Figure 3).

A flash crowd over-subscribes the access ISP.  Status-quo players see
bad throughput, blame the CDN, and thrash across CDNs -- which cannot
help, because the bottleneck is behind the peering.  With EONA, the
ISP's I2A congestion signal attributes the bottleneck to the access
segment and the AppP responds by stepping bitrate down instead.

Expected shape: EONA trades bitrate for a several-fold reduction in
buffering ratio and eliminates futile CDN switching; the access link
stays fully utilized either way.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.modes import Mode
from repro.baselines.oracle import OracleAppP
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import (
    ExperimentResult,
    launch_video_sessions,
    loop_latency_row,
    qoe_of,
)
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.scenarios import build_scenario
from repro.video.qoe import summarize


def run_mode(
    mode: Mode,
    seed: int = 0,
    n_clients: int = 30,
    access_capacity_mbps: float = 45.0,
    peak_rate_per_s: float = 1.5,
    horizon_s: float = 600.0,
    i2a_refresh_s: float = 10.0,
    wrap_i2a: Optional[Callable[[object], object]] = None,
) -> Dict[str, object]:
    """Run one mode's flash-crowd world and summarize it as a table row.

    ``wrap_i2a`` interposes on the EONA AppP's view of the ISP's I2A
    glass (anything with the ``query`` surface may come back) -- the
    seam E20 uses to put the control loop on a wire transport without
    this world changing in any other way.
    """
    scenario = build_scenario(
        "flash-crowd",
        seed=seed,
        params={
            "n_clients": n_clients,
            "access_capacity_mbps": access_capacity_mbps,
            "peak_rate_per_s": peak_rate_per_s,
        },
    )
    ctx = scenario.ctx
    sim = ctx.sim
    registry = ctx.registry

    infp = None
    if mode is Mode.EONA or mode is Mode.I2A_ONLY:
        infp = EonaInfP(
            ctx,
            access_links=[scenario.access_link],
            i2a_refresh_s=i2a_refresh_s,
            stats_period_s=2.0,
        )
        registry.grant("isp", "appp")
        isp_i2a = infp.i2a if wrap_i2a is None else wrap_i2a(infp.i2a)
        policy = EonaAppP(ctx, isp_i2a=isp_i2a, name="appp")
    elif mode is Mode.A2I_ONLY:
        # Measurements flow to the ISP -- but the Figure 3 fix needs the
        # *application's* bitrate knob, which A2I-only cannot reach.
        policy = StatusQuoAppP(ctx, name="appp")
        a2i = policy.make_a2i(registry, refresh_period_s=i2a_refresh_s)
        registry.grant("appp", "isp")
        infp = EonaInfP(
            ctx,
            appp_a2i=a2i, access_links=[scenario.access_link],
            stats_period_s=2.0, i2a_refresh_s=i2a_refresh_s,
        )
    elif mode is Mode.STATUS_QUO:
        infp = StatusQuoInfP(ctx, stats_period_s=2.0)
        policy = StatusQuoAppP(ctx, name="appp")
    elif mode is Mode.ORACLE:
        policy = OracleAppP(
            sim,
            scenario.cdns,
            network=scenario.network,
            access_links=[scenario.access_link],
            name="appp",
        )
    else:
        raise ValueError(f"E2 does not support {mode}")

    # The crowd's onset/peak/decay arc -- and the matching phase
    # timeline -- are declared in the flash-crowd spec; the viewers
    # population compiles them into the arrival kwargs here.
    players = launch_video_sessions(
        ctx,
        catalog=scenario.catalog,
        policy=policy,
        content_picker=lambda index: scenario.catalog.by_rank(0),
        **scenario.world.population("viewers").launch_kwargs(until=horizon_s * 0.6),
    )
    sim.run(until=horizon_s)
    if infp is not None:
        infp.stop()

    qoes = qoe_of(players)
    summary = summarize(qoes)
    scenario.network.sync()
    access_stats = scenario.network.link_stats[scenario.access_link]
    return {
        "mode": mode.value,
        "sessions": len(players),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "rebuffer_events": summary["rebuffer_events_per_session"],
        "cdn_switches": summary["cdn_switches_per_session"],
        "abandoned": sum(1 for q in qoes if q.abandoned),
        "access_utilization": access_stats.mean_utilization,
        "engagement": summary["mean_engagement"],
        "_counters": ctx.allocation_counters(),
    }


def run_abr_ablation(
    seed: int = 0,
    horizon_s: float = 500.0,
    n_clients: int = 20,
    peak_rate_per_s: float = 1.0,
    access_capacity_mbps: float = 30.0,
) -> ExperimentResult:
    """Does the EONA benefit depend on the client's ABR algorithm?

    Sweeps four ABR designs (throughput-chasing, pure buffer-feedback,
    FESTIVE-stabilized, BOLA) through the flash-crowd world under status
    quo and EONA.  The congestion signal operates above the ABR (a
    rate *cap*), so the benefit should survive across all of them --
    the ablation behind DESIGN.md decision ✦2.
    """
    from repro.video.abr import BolaAbr, BufferBasedAbr, FestiveAbr, RateBasedAbr

    abrs = {
        "rate_based": RateBasedAbr,
        "buffer_based": BufferBasedAbr,
        "festive": FestiveAbr,
        "bola": BolaAbr,
    }
    result = ExperimentResult(
        name="E2-abr-ablation",
        notes="flash-crowd benefit across ABR algorithms",
    )
    for abr_name, abr_factory in abrs.items():
        per_mode = {}
        for mode in (Mode.STATUS_QUO, Mode.EONA):
            scenario = build_scenario(
                "flash-crowd",
                seed=seed,
                params={
                    "n_clients": n_clients,
                    "access_capacity_mbps": access_capacity_mbps,
                    "peak_rate_per_s": peak_rate_per_s,
                },
            )
            ctx = scenario.ctx
            sim = ctx.sim
            registry = ctx.registry
            infp = None
            if mode is Mode.EONA:
                infp = EonaInfP(
                    ctx,
                    access_links=[scenario.access_link],
                    i2a_refresh_s=5.0, stats_period_s=2.0,
                )
                registry.grant("isp", "appp")
                policy = EonaAppP(ctx, isp_i2a=infp.i2a, name="appp")
            else:
                policy = StatusQuoAppP(ctx, name="appp")
            players = launch_video_sessions(
                ctx,
                catalog=scenario.catalog,
                policy=policy,
                abr_factory=abr_factory,
                content_picker=lambda index: scenario.catalog.by_rank(0),
                **scenario.world.population("viewers").launch_kwargs(
                    until=horizon_s * 0.6
                ),
            )
            sim.run(until=horizon_s)
            if infp is not None:
                infp.stop()
            if hasattr(policy, "stop"):
                policy.stop()
            per_mode[mode] = summarize(qoe_of(players))
            result.merge_counters(ctx.allocation_counters())
        quo, eona = per_mode[Mode.STATUS_QUO], per_mode[Mode.EONA]
        result.add_row(
            abr=abr_name,
            status_quo_buffering=quo["mean_buffering_ratio"],
            eona_buffering=eona["mean_buffering_ratio"],
            status_quo_bitrate=quo["mean_bitrate_mbps"],
            eona_bitrate=eona["mean_bitrate_mbps"],
            eona_benefit=(
                quo["mean_buffering_ratio"] - eona["mean_buffering_ratio"]
            ),
            eona_engagement_gain=(
                eona["mean_engagement"] - quo["mean_engagement"]
            ),
        )
    return result


def run_loop_latency(seed: int = 0, **kwargs) -> ExperimentResult:
    """Causal loop-reaction latency of the flash-crowd worlds (§13).

    Re-runs the status-quo and EONA worlds under a captured trace and
    reduces the beacon→flush→hint→action→recovery chain to per-stage
    counts and latencies.  The structural claim: the hint→action hop
    exists *only* in the EONA world (the status quo has no I2A glass to
    cause anything), and when it exists it is same-control-tick fast.
    """
    from repro.obs import spans

    kwargs.setdefault("n_clients", 20)
    kwargs.setdefault("access_capacity_mbps", 30.0)
    kwargs.setdefault("peak_rate_per_s", 1.0)
    kwargs.setdefault("horizon_s", 500.0)
    result = ExperimentResult(
        name="E2-loop-latency",
        notes="causal loop stages (sim s) from captured spans; DESIGN.md §13",
    )
    for mode in (Mode.STATUS_QUO, Mode.EONA):
        with spans.capture() as events:
            row = run_mode(mode, seed=seed, **kwargs)
        result.merge_counters(row["_counters"])  # type: ignore[arg-type]
        result.add_row(**loop_latency_row(events, mode=mode.value))
    return result


def run(
    seed: int = 0,
    include_oracle: bool = True,
    include_oneway: bool = False,
    **kwargs,
) -> ExperimentResult:
    """Compare status quo, (optionally the one-way designs,) EONA, oracle.

    With ``include_oneway``, the table shows which sharing *direction*
    Figure 3 actually needs: I2A-only matches full EONA (the fix is the
    application's bitrate knob, informed by the ISP), while A2I-only
    cannot help (the ISP has no knob that relieves its own access
    bottleneck) -- the complement of Figure 5's split (see E4).
    """
    result = ExperimentResult(
        name="E2-flash-crowd",
        notes="flash crowd behind a fixed access bottleneck (Figure 3)",
    )
    modes = [Mode.STATUS_QUO]
    if include_oneway:
        modes += [Mode.A2I_ONLY, Mode.I2A_ONLY]
    modes.append(Mode.EONA)
    if include_oracle:
        modes.append(Mode.ORACLE)
    for mode in modes:
        result.add_row(**run_mode(mode, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e2",
        title="flash crowd behind congested access ISP (Figure 3)",
        source="paper §2, second bullet; Figure 3",
        module=__name__,
        variants=(
            VariantSpec(
                name="flash-crowd",
                runner=run,
                checks=(
                    check("buffering_ratio", "eona", "<", 0.6, of="status_quo"),
                    check("mean_bitrate_mbps", "eona", "<=", of="status_quo"),
                    check("cdn_switches", "eona", "==", 0),
                    check("cdn_switches", "status_quo", ">", 0),
                    check("buffering_ratio", "eona", "<", 1.5, of="oracle"),
                ),
            ),
            VariantSpec(
                name="abr-ablation",
                runner=run_abr_ablation,
                row_key="abr",
                checks=(
                    check("eona_benefit", "*", ">", 0),
                    check("eona_engagement_gain", "*", ">", 0),
                ),
            ),
            VariantSpec(
                name="loop-latency",
                runner=run_loop_latency,
                checks=(
                    # The hint→action causal hop exists only with EONA's
                    # I2A glass; beacons aggregate in both worlds.
                    check("i2a_hints", "eona", ">", 0),
                    check("i2a_hints", "status_quo", "==", 0),
                    check("hint_to_action_n", "eona", ">", 0),
                    check("hint_to_action_n", "status_quo", "==", 0),
                    check("beacon_to_hint_n", "eona", ">", 0),
                    check("beacon_to_flush_n", "*", ">", 0),
                    check("action_to_recovery_n", "*", ">", 0),
                    # Hint-caused actions land in the same control tick.
                    check("hint_to_action_p95_s", "eona", "<", 0.5),
                ),
            ),
        ),
    )
)
