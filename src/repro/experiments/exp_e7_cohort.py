"""E7-cohort — provider-scale populations via the fluid-cohort engine.

The paper motivates A2I with Conviva-scale telemetry ("tens of millions
of sessions each day"); E7 measured the *analytics* path at that scale,
but the sessions themselves were still one Python object each.  This
companion experiment exercises :mod:`repro.cohorts`:

* ``scale`` — sweeps prefilled steady-state populations up to a million
  concurrent sessions on one core, recording sessions/sec, wall time,
  exact numpy state bytes, and peak RSS.  The claim: wall time and
  state grow with cohorts × content length, not with viewers.
* ``equivalence`` — runs the *same* small scenario (same seed, same
  topology, same arrival rate) once with individual
  :class:`~repro.video.player.AdaptivePlayer` sessions and once as a
  single cohort, in an uncontended and a contended regime, and checks
  the population means (engagement, buffering, bitrate) agree within
  the stated tolerances.  This is the correctness gate that lets every
  other experiment trust the fluid path.
"""

from __future__ import annotations

import resource
from typing import Dict, List, Tuple

from repro.cdn.content import ContentCatalog
from repro.cdn.provider import Cdn
from repro.cdn.server import CdnServer
from repro.cohorts.engine import CohortEngine
from repro.cohorts.specs import CohortSpec
from repro.core.context import build_context
from repro.experiments.common import ExperimentResult, launch_video_sessions
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, ShapeCheck, VariantSpec, check
from repro.network.topology import NodeKind, Topology
from repro.obs.profile import wall_clock
from repro.telemetry.records import SessionRecord
from repro.video.player import PlayerPolicy, SessionAssignment
from repro.video.qoe import summarize

#: Equivalence tolerances (DESIGN.md §11): absolute on means in [0, 1],
#: relative on bitrate.  Stated once, asserted declaratively below.
ENGAGEMENT_TOLERANCE = 0.08
BUFFERING_TOLERANCE = 0.05
BITRATE_REL_TOLERANCE = 0.30


# ---------------------------------------------------------------------------
# scale variant
# ---------------------------------------------------------------------------


def _scale_world(
    seed: int, n_isp_nodes: int = 16
) -> Tuple[object, List[CohortSpec]]:
    """A star of access ISPs behind one origin, 4 cohorts per ISP."""
    topology = Topology("cohort-scale")
    topology.add_node("origin", NodeKind.SERVER)
    specs: List[CohortSpec] = []
    for index in range(n_isp_nodes):
        node = f"isp{index}"
        topology.add_node(node, NodeKind.CLIENT)
        topology.add_link("origin", node, capacity_mbps=400_000.0)
        for tier in ("hd", "sd"):
            for device in ("tv", "mobile"):
                specs.append(
                    CohortSpec(
                        node=node,
                        cdn="cdnX",
                        tier=tier,
                        device=device,
                        src_node="origin",
                        isp=node,
                        content_duration_s=120.0,
                        device_cap_mbps=6.0 if device == "tv" else 1.5,
                    )
                )
    ctx = build_context(topology=topology, seed=seed)
    return ctx, specs


def measure_scale(
    seed: int,
    target_sessions: int,
    sim_horizon_s: float = 120.0,
    dt_s: float = 1.0,
) -> Dict[str, object]:
    """One steady-state population point: prefill + churn at the target."""
    ctx, specs = _scale_world(seed)
    churn = [
        CohortSpec(
            node=spec.node,
            cdn=spec.cdn,
            tier=spec.tier,
            device=spec.device,
            src_node=spec.src_node,
            isp=spec.isp,
            content_duration_s=spec.content_duration_s,
            device_cap_mbps=spec.device_cap_mbps,
            # Steady state: arrivals replace departures one-for-one.
            arrival_rate_per_s=(
                target_sessions / len(specs) / spec.content_duration_s
            ),
        )
        for spec in specs
    ]
    engine = CohortEngine(ctx, churn, dt_s=dt_s, until=sim_horizon_s)
    engine.prefill([target_sessions / len(churn)] * len(churn))
    started = wall_clock()
    engine.start()
    ctx.run(until=sim_horizon_s + 1.0)
    wall_s = max(wall_clock() - started, 1e-9)
    sessions_simulated = engine.counters["cohort.arrivals"]
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    counters: Dict[str, int] = dict(engine.counters)
    for key, value in ctx.allocation_counters().items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            counters[key] = counters.get(key, 0) + int(value)
    return {
        "target_sessions": target_sessions,
        "peak_concurrent": engine.gauges["cohort.peak_concurrent_sessions"],
        "sessions_simulated": sessions_simulated,
        "sim_horizon_s": sim_horizon_s,
        "wall_s": wall_s,
        "sessions_per_sec": sessions_simulated / wall_s,
        "generations": engine.gauges["cohort.peak_generations"],
        "state_kb": engine.gauges["cohort.peak_state_bytes"] / 1024.0,
        "peak_rss_mb": peak_rss_mb,
        "completed": engine.counters["cohort.completed"],
        "_counters": counters,
    }


def run_scale_table(
    seed: int = 0,
    targets: Tuple[int, ...] = (10_000, 100_000, 1_000_000),
) -> ExperimentResult:
    result = ExperimentResult(
        name="E7-cohort-scale",
        notes="steady-state cohort populations, single core",
    )
    for target in targets:
        result.add_row(**measure_scale(seed, target))
    return result


# ---------------------------------------------------------------------------
# equivalence variant
# ---------------------------------------------------------------------------


class _PinnedPolicy(PlayerPolicy):
    """Always the one CDN; no switching, no guidance — the cohort twin."""

    def __init__(self, cdn: Cdn):
        self.cdn = cdn

    def assign(self, player) -> SessionAssignment:
        return SessionAssignment(cdn=self.cdn)


def _equivalence_topology(capacity_mbps: float) -> Topology:
    topology = Topology("cohort-equivalence")
    topology.add_node("edge", NodeKind.SERVER)
    topology.add_node("c0", NodeKind.CLIENT)
    topology.add_link("edge", "c0", capacity_mbps=capacity_mbps)
    return topology


def _individual_run(
    seed: int,
    capacity_mbps: float,
    rate_per_s: float,
    arrivals_until_s: float,
    duration_s: float,
    horizon_s: float,
) -> Dict[str, float]:
    ctx = build_context(topology=_equivalence_topology(capacity_mbps), seed=seed)
    catalog = ContentCatalog(n_items=1, duration_s=duration_s)
    cdn = Cdn(
        "cdnX",
        [CdnServer("cdnX.e1", "edge", capacity_sessions=1_000_000)],
        ctx=ctx,
    )
    cdn.warm_caches(catalog)
    players = launch_video_sessions(
        ctx,
        catalog=catalog,
        policy=_PinnedPolicy(cdn),
        client_nodes=["c0"],
        rate_per_s=rate_per_s,
        until=arrivals_until_s,
        content_picker=lambda index: catalog.by_rank(0),
    )
    ctx.run(until=horizon_s)
    qoes = [player.qoe() for player in players if player.ended]
    summary = summarize(qoes)
    abandoned = (
        sum(1.0 for qoe in qoes if qoe.abandoned) / len(qoes) if qoes else 0.0
    )
    return {
        "sessions": float(len(qoes)),
        "mean_engagement": float(summary["mean_engagement"]),
        "mean_buffering_ratio": float(summary["mean_buffering_ratio"]),
        "mean_bitrate_mbps": float(summary["mean_bitrate_mbps"]),
        "mean_join_time_s": float(summary["mean_join_time_s"]),
        "abandoned_fraction": abandoned,
    }


def _cohort_run(
    seed: int,
    capacity_mbps: float,
    rate_per_s: float,
    arrivals_until_s: float,
    duration_s: float,
    horizon_s: float,
    dt_s: float = 0.25,
) -> Dict[str, float]:
    ctx = build_context(topology=_equivalence_topology(capacity_mbps), seed=seed)
    spec = CohortSpec(
        node="c0",
        cdn="cdnX",
        tier="hd",
        device="tv",
        src_node="edge",
        arrival_rate_per_s=rate_per_s,
        content_duration_s=duration_s,
    )
    beacons: List[Tuple[SessionRecord, float]] = []
    engine = CohortEngine(
        ctx,
        [spec],
        dt_s=dt_s,
        until=horizon_s,
        beacon_sink=lambda record, sessions: beacons.append((record, sessions)),
    )

    def stop_arrivals() -> None:
        engine._arrivals.set_rate(0, 0.0)

    ctx.sim.schedule(arrivals_until_s, stop_arrivals)
    engine.start()
    ctx.run(until=horizon_s + 1.0)
    total = sum(sessions for _, sessions in beacons)
    if total <= 0:
        return {
            "sessions": 0.0,
            "mean_engagement": 0.0,
            "mean_buffering_ratio": 0.0,
            "mean_bitrate_mbps": 0.0,
            "mean_join_time_s": 0.0,
            "abandoned_fraction": 0.0,
        }

    def weighted_mean(metric: str) -> float:
        return (
            sum(record.metric(metric) * sessions for record, sessions in beacons)
            / total
        )

    return {
        "sessions": total,
        "mean_engagement": weighted_mean("engagement"),
        "mean_buffering_ratio": weighted_mean("buffering_ratio"),
        "mean_bitrate_mbps": weighted_mean("mean_bitrate_mbps"),
        "mean_join_time_s": weighted_mean("join_time_s"),
        "abandoned_fraction": weighted_mean("abandoned"),
        "_counters": dict(engine.counters),  # type: ignore[dict-item]
    }


#: The two equivalence regimes: plenty of headroom, and a bottleneck
#: that pushes the population down the ladder.
_REGIMES: Tuple[Tuple[str, float], ...] = (
    ("uncontended", 2000.0),
    ("contended", 400.0),
)


def run_equivalence_table(
    seed: int = 0,
    rate_per_s: float = 2.0,
    arrivals_until_s: float = 60.0,
    duration_s: float = 96.0,
    horizon_s: float = 600.0,
) -> ExperimentResult:
    result = ExperimentResult(
        name="E7-cohort-equivalence",
        notes=(
            "same scenario, individual players vs one fluid cohort "
            f"(tolerance: engagement ±{ENGAGEMENT_TOLERANCE}, "
            f"buffering ±{BUFFERING_TOLERANCE})"
        ),
    )
    for regime, capacity in _REGIMES:
        individual = _individual_run(
            seed, capacity, rate_per_s, arrivals_until_s, duration_s, horizon_s
        )
        cohort = _cohort_run(
            seed, capacity, rate_per_s, arrivals_until_s, duration_s, horizon_s
        )
        result.add_row(regime=regime, mode="individual", **individual)
        result.add_row(regime=regime, mode="cohort", **cohort)
    return result


def _pair_checks(regime: str) -> Tuple[ShapeCheck, ...]:
    cohort_row = {"regime": regime, "mode": "cohort"}
    individual_row = {"regime": regime, "mode": "individual"}
    return (
        check(
            "mean_engagement", cohort_row, "<=",
            of=individual_row, plus=ENGAGEMENT_TOLERANCE,
        ),
        check(
            "mean_engagement", cohort_row, ">=",
            of=individual_row, plus=-ENGAGEMENT_TOLERANCE,
        ),
        check(
            "mean_buffering_ratio", cohort_row, "<=",
            of=individual_row, plus=BUFFERING_TOLERANCE,
        ),
        check(
            "mean_buffering_ratio", cohort_row, ">=",
            of=individual_row, plus=-BUFFERING_TOLERANCE,
        ),
        check(
            "mean_bitrate_mbps", cohort_row, "<=",
            value=1.0 + BITRATE_REL_TOLERANCE, of=individual_row,
        ),
        check(
            "mean_bitrate_mbps", cohort_row, ">=",
            value=1.0 - BITRATE_REL_TOLERANCE, of=individual_row,
        ),
    )


register(
    ExperimentSpec(
        exp_id="e7-cohort",
        title="Fluid-cohort engine: million-session scale + equivalence",
        source="paper §5 scale motivation; ROADMAP cohort vectorization",
        module=__name__,
        variants=(
            VariantSpec(
                name="scale",
                runner=run_scale_table,
                row_key="target_sessions",
                checks=(
                    # The headline: a million concurrent sessions, one
                    # core, under a minute of wall clock.
                    check("peak_concurrent", "@max", ">=", 1_000_000),
                    check("wall_s", "@max", "<", 60.0),
                    # Throughput is fixed-cost dominated at small targets
                    # (same tick count regardless of population), so the
                    # claim anchors to the million-session row.
                    check("sessions_per_sec", "@max", ">", 100_000),
                    # Sub-linear memory: 100x the sessions must cost far
                    # less than 100x the engine state (it is ~constant).
                    check("state_kb", "@last", "<", 3.0, of="@first"),
                ),
            ),
            VariantSpec(
                name="equivalence",
                runner=run_equivalence_table,
                row_key="mode",
                checks=(
                    _pair_checks("uncontended") + _pair_checks("contended")
                ),
            ),
        ),
    )
)
