"""E5 -- Configuration changes / server energy saving (paper §2 and §5).

The cluster operator wants to power edge servers down off-peak.  The
paper: "they are often too conservative or too aggressive in the
decisions because they cannot observe how these decisions impact user
applications."  Three policies:

* conservative -- never power down (perfect QoE, zero savings);
* schedule -- follow a demand forecast blindly (the forecast here
  undershoots the evening shoulder, the classic failure);
* eona -- closed loop on A2I QoE: shed while healthy, restore on the
  first sign of degradation.

Expected shape: EONA lands on the energy/QoE frontier -- savings close
to the schedule policy at QoE close to the conservative one.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.appp import StatusQuoAppP
from repro.core.infp import EnergyManager
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.workloads.arrivals import diurnal_rate
from repro.scenarios import build_scenario


def run_policy(
    policy_name: str,
    seed: int = 0,
    day_s: float = 2400.0,
    n_servers: int = 6,
    n_clients: int = 40,
    mean_rate_per_s: float = 0.35,
    qoe_threshold: float = 0.01,
) -> Dict[str, object]:
    """One simulated (compressed) day under one energy policy."""
    scenario = build_scenario(
        "energy",
        seed=seed,
        params={"n_servers": n_servers, "n_clients": n_clients},
    )
    sim = scenario.sim
    appp = StatusQuoAppP(sim, [scenario.cdn], name="appp")

    rate_fn = diurnal_rate(
        mean_per_s=mean_rate_per_s,
        amplitude=0.8,
        period_s=day_s,
        peak_at_s=day_s * 0.75,
    )

    def forecast_schedule(t: float) -> float:
        # A blind forecast: assumes demand tracks a shifted sinusoid, so
        # it powers down too early on the evening shoulder.
        phase = 2 * math.pi * (t - day_s * 0.55) / day_s
        predicted = 0.5 * (1 + math.cos(phase) * 0.8)
        return max(0.2, min(1.0, predicted + 0.1))

    def qoe_fetch() -> Optional[float]:
        appp.aggregator.flush(up_to=sim.now)
        return appp.store.mean_over(("cdn", "isp"), "buffering_ratio", last_n=2)

    def demand_fetch() -> Optional[float]:
        return appp.demand_estimate().for_cdn(scenario.cdn.name)

    server_uplink = scenario.topology.link(
        next(iter(scenario.server_uplinks.values()))
    ).capacity_mbps
    manager = EnergyManager(
        sim,
        scenario.cdn,
        period_s=30.0,
        policy=policy_name,
        schedule=forecast_schedule if policy_name == "schedule" else None,
        qoe_fetch=qoe_fetch if policy_name == "eona" else None,
        demand_fetch=demand_fetch if policy_name == "eona" else None,
        server_capacity_mbps=server_uplink,
        qoe_threshold=qoe_threshold,
        min_on=1,
    )

    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        appp,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_fn=rate_fn,
        max_rate_per_s=mean_rate_per_s * 1.9,
        until=day_s,
    )
    sim.run(until=day_s + 200.0)
    manager.stop()

    qoes = qoe_of(players)
    summary = summarize(qoes)
    max_energy = len(scenario.cdn.servers) * (day_s + 200.0)
    return {
        "policy": policy_name,
        "sessions": len(players),
        "energy_fraction": manager.server_seconds_on / max_energy,
        "energy_saved_pct": 100.0 * (1 - manager.server_seconds_on / max_energy),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "abandoned": sum(1 for q in qoes if q.abandoned),
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "power_actions": len(manager.log),
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(seed: int = 0, **kwargs) -> ExperimentResult:
    result = ExperimentResult(
        name="E5-energy",
        notes="diurnal demand; energy vs. QoE across shutdown policies",
    )
    for policy_name in ("conservative", "schedule", "eona"):
        result.add_row(**run_policy(policy_name, seed=seed, **kwargs))
    return result


register(
    ExperimentSpec(
        exp_id="e5",
        title="server energy saving with/without A2I feedback (§2, §5)",
        source="paper §2 configuration changes; §5",
        module=__name__,
        variants=(
            VariantSpec(
                name="energy",
                runner=run,
                row_key="policy",
                checks=(
                    check("energy_saved_pct", "conservative", "==", 0.0),
                    check("energy_saved_pct", "schedule", ">", 20.0),
                    check("buffering_ratio", "schedule", ">", 5.0, of="eona"),
                    check("energy_saved_pct", "eona", ">", 15.0),
                    check("buffering_ratio", "eona", "<", 0.005),
                    check("abandoned", "eona", "<=", of="schedule"),
                ),
            ),
        ),
    )
)
