"""E4 -- Control-loop oscillation (paper §2 "interactions", Figure 5).

CDN X peers with the ISP at B (cheap, preferred, small) and C (big);
CDN Y only at C, with a thin uplink.  Under status quo the ISP's greedy
TE flees congestion at B, returns when B looks clear, and the AppP
simultaneously flips sessions X→Y→X -- the infinite oscillation of
Figure 5.  Under EONA the ISP places X's traffic at C using the A2I
demand estimate, publishes the decision over I2A, and the AppP holds.

Expected shape: status-quo switch counts grow linearly with time;
EONA converges in a bounded number of decisions to the green path
(CDN X via peering C) and stays, with lower buffering.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.modes import Mode
from repro.baselines.oracle import OracleAppP, oracle_te_policy
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.damping import HysteresisGate
from repro.core.infp import EonaInfP, StatusQuoInfP
from repro.experiments.common import ExperimentResult, launch_video_sessions, qoe_of
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check
from repro.video.qoe import summarize
from repro.scenarios import build_scenario


def run_mode(
    mode: Mode,
    seed: int = 0,
    n_clients: int = 24,
    horizon_s: float = 1200.0,
    te_period_s: float = 60.0,
    with_damping: bool = True,
    i2a_refresh_s: float = 10.0,
) -> Dict[str, object]:
    scenario = build_scenario(
        "oscillation", seed=seed, params={"n_clients": n_clients}
    )
    sim = scenario.sim
    registry = scenario.registry
    network = scenario.network

    if mode is Mode.STATUS_QUO:
        infp = StatusQuoInfP(
            sim, network, scenario.groups, te_period_s=te_period_s, stats_period_s=5.0
        )
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
    elif mode is Mode.A2I_ONLY:
        # P4P-mirror: measurements flow to the ISP, nothing flows back.
        policy = StatusQuoAppP(sim, scenario.cdns, name="appp")
        a2i = policy.make_a2i(registry, refresh_period_s=i2a_refresh_s)
        registry.grant("appp", "isp")
        infp = EonaInfP(
            sim, network, scenario.groups, registry=registry, appp_a2i=a2i,
            te_period_s=te_period_s, stats_period_s=5.0,
            i2a_refresh_s=i2a_refresh_s,
        )
    elif mode is Mode.I2A_ONLY:
        # P4P/ALTO lineage: the ISP publishes hints, receives nothing;
        # its own TE stays the legacy greedy loop.
        from repro.sdn.te import greedy_reactive_policy

        infp = EonaInfP(
            sim, network, scenario.groups, registry=registry,
            te_period_s=te_period_s, stats_period_s=5.0,
            i2a_refresh_s=i2a_refresh_s,
        )
        infp.te.policy = greedy_reactive_policy
        registry.grant("isp", "appp")
        damper = (
            HysteresisGate(sim, min_dwell_s=120.0, improvement_margin=0.1)
            if with_damping
            else None
        )
        policy = EonaAppP(
            sim, scenario.cdns, isp_i2a=infp.i2a, name="appp", damper=damper
        )
    elif mode is Mode.EONA:
        damper = (
            HysteresisGate(sim, min_dwell_s=120.0, improvement_margin=0.1)
            if with_damping
            else None
        )
        policy = EonaAppP(sim, scenario.cdns, name="appp", damper=damper)
        a2i = policy.make_a2i(registry, refresh_period_s=i2a_refresh_s)
        registry.grant("appp", "isp")
        infp = EonaInfP(
            sim,
            network,
            scenario.groups,
            registry=registry,
            appp_a2i=a2i,
            te_period_s=te_period_s,
            stats_period_s=5.0,
            i2a_refresh_s=i2a_refresh_s,
        )
        registry.grant("isp", "appp")
        policy.isp_i2a = infp.i2a
    elif mode is Mode.ORACLE:
        infp = StatusQuoInfP(
            sim, network, scenario.groups, te_period_s=te_period_s, stats_period_s=5.0
        )
        policy = OracleAppP(sim, scenario.cdns, network=network, name="appp")
        infp.te.policy = oracle_te_policy(network, appp=policy)
    else:
        raise ValueError(f"E4 does not support {mode}")

    # Steady offered load: sessions arrive continuously so aggregate
    # demand stays near n_clients x ~3 Mbit/s for the whole horizon.
    players = launch_video_sessions(
        sim,
        network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=n_clients / 180.0,
        until=horizon_s - 200.0,
        content_picker=lambda index: scenario.catalog.by_rank(index % 5),
    )
    # Probe the egress choice while the system is under full load (the
    # end-of-run selection legitimately drifts back to the cheap peering
    # once the offered load drains).
    loaded_selection: Dict[str, Optional[str]] = {}
    sim.schedule_at(
        horizon_s * 0.7,
        lambda: loaded_selection.__setitem__("cdnX", infp.te.selection("cdnX")),
    )
    sim.run(until=horizon_s)
    infp.stop()
    if hasattr(policy, "stop"):
        policy.stop()

    qoes = qoe_of(players)
    summary = summarize(qoes)
    network.sync()
    b_stats = network.link_stats[scenario.peering_b_link]
    probed = loaded_selection.get("cdnX")
    return {
        "mode": mode.value + ("" if with_damping else "-nodamp"),
        "sessions": len(players),
        "te_switches": infp.te.switch_count("cdnX"),
        "cdn_switches": summary["cdn_switches_per_session"],
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "peerB_congested_frac": b_stats.congested_fraction,
        "loaded_egress": probed or "",
        "on_green_path": probed == "peerC",
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(
    seed: int = 0,
    include_oracle: bool = True,
    include_oneway: bool = False,
    **kwargs,
) -> ExperimentResult:
    """The Figure 5 comparison.

    ``include_oneway`` adds the prior-work one-way designs the paper
    differentiates itself from (§1: "EONA envisions a two-way interface
    as opposed to prior work"): A2I-only fixes the ISP's loop but not
    the AppP's; I2A-only the reverse; only bidirectional EONA stills
    both halves of the oscillator.
    """
    result = ExperimentResult(
        name="E4-oscillation",
        notes="Figure 5 world: X via B(small, preferred)/C(big); Y via C only",
    )
    modes = [Mode.STATUS_QUO]
    if include_oneway:
        modes += [Mode.A2I_ONLY, Mode.I2A_ONLY]
    modes.append(Mode.EONA)
    if include_oracle:
        modes.append(Mode.ORACLE)
    for mode in modes:
        result.add_row(**run_mode(mode, seed=seed, **kwargs))
    return result


def run_switch_growth(
    seed: int = 0,
    horizons=(300.0, 600.0, 1200.0),
    **kwargs,
) -> ExperimentResult:
    """Oscillation count vs. time: linear for status quo, flat for EONA."""
    result = ExperimentResult(
        name="E4-switch-growth",
        notes="TE re-selections of cdnX's egress vs. simulated horizon",
    )
    for horizon in horizons:
        quo = run_mode(Mode.STATUS_QUO, seed=seed, horizon_s=horizon, **kwargs)
        eona = run_mode(Mode.EONA, seed=seed, horizon_s=horizon, **kwargs)
        result.add_row(
            horizon_s=horizon,
            status_quo_te_switches=quo["te_switches"],
            eona_te_switches=eona["te_switches"],
            status_quo_cdn_switches=quo["cdn_switches"],
            eona_cdn_switches=eona["cdn_switches"],
            _counters=quo["_counters"],
        )
        result.merge_counters(eona["_counters"])
    return result


register(
    ExperimentSpec(
        exp_id="e4",
        title="CDN/peering control-loop oscillation (Figure 5)",
        source="paper §2 interactions; Figure 5",
        module=__name__,
        variants=(
            VariantSpec(
                name="oscillation",
                runner=run,
                checks=(
                    check("te_switches", "status_quo", ">=", 10),
                    check("te_switches", "eona", "<=", 3),
                    check("on_green_path", "eona", "truthy"),
                    check("buffering_ratio", "eona", "<", of="status_quo"),
                    check("te_switches", "oracle", "<=", 2),
                ),
            ),
            VariantSpec(
                name="switch-growth",
                runner=lambda seed: run_switch_growth(
                    seed=seed, horizons=(400.0, 800.0, 1200.0)
                ),
                row_key="horizon_s",
                checks=(
                    # Linear growth for status quo, flat for EONA.
                    check("status_quo_te_switches", "@last", ">=", 2.0, of="@first"),
                    check("eona_te_switches", "@last", "<=", of="@first", plus=1),
                ),
            ),
        ),
    )
)
