"""E6 -- Dealing with staleness (paper §5, open challenges).

EONA's interfaces export periodic snapshots, not live state.  This
experiment re-runs the flash-crowd world (E2) with the I2A refresh
period swept from near-live to minutes, measuring how much of EONA's
buffering-ratio benefit survives, and the same sweep for the
oscillation world's TE loop.

Expected shape: the benefit decays monotonically with staleness and
crosses into "no better than status quo" somewhere beyond the control
loops' natural timescale; damping widens the usable staleness range.
"""

from __future__ import annotations

from typing import Tuple

from repro.baselines.modes import Mode
from repro.experiments import exp_e2_flash_crowd, exp_e4_oscillation
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check


def run(
    seed: int = 0,
    refresh_periods: Tuple[float, ...] = (2.0, 10.0, 30.0, 90.0),
    **kwargs,
) -> ExperimentResult:
    """Flash-crowd benefit vs. I2A refresh period."""
    result = ExperimentResult(
        name="E6-staleness",
        notes="EONA benefit in the Figure 3 world as I2A snapshots age",
    )
    baseline = exp_e2_flash_crowd.run_mode(Mode.STATUS_QUO, seed=seed, **kwargs)
    result.merge_counters(baseline["_counters"])
    for period in refresh_periods:
        eona = exp_e2_flash_crowd.run_mode(
            Mode.EONA, seed=seed, i2a_refresh_s=period, **kwargs
        )
        benefit = (
            float(baseline["buffering_ratio"]) - float(eona["buffering_ratio"])
        )
        result.add_row(
            i2a_refresh_s=period,
            status_quo_buffering=baseline["buffering_ratio"],
            eona_buffering=eona["buffering_ratio"],
            buffering_benefit=benefit,
            relative_benefit=(
                benefit / float(baseline["buffering_ratio"])
                if float(baseline["buffering_ratio"]) > 0
                else 0.0
            ),
            eona_bitrate=eona["mean_bitrate_mbps"],
            _counters=eona["_counters"],
        )
    return result


def run_te_staleness(
    seed: int = 0,
    refresh_periods: Tuple[float, ...] = (5.0, 30.0, 120.0),
    **kwargs,
) -> ExperimentResult:
    """Oscillation-world convergence vs. A2I/I2A refresh period."""
    result = ExperimentResult(
        name="E6-te-staleness",
        notes="Figure 5 world: do stale demand estimates still converge?",
    )
    for period in refresh_periods:
        eona = exp_e4_oscillation.run_mode(
            Mode.EONA, seed=seed, i2a_refresh_s=period, **kwargs
        )
        result.add_row(
            refresh_s=period,
            te_switches=eona["te_switches"],
            cdn_switches=eona["cdn_switches"],
            buffering_ratio=eona["buffering_ratio"],
            on_green_path=eona["on_green_path"],
            _counters=eona["_counters"],
        )
    return result


register(
    ExperimentSpec(
        exp_id="e6",
        title="EONA benefit vs interface staleness (§5)",
        source="paper §5 open challenges (staleness)",
        module=__name__,
        variants=(
            VariantSpec(
                name="staleness",
                runner=run,
                row_key="i2a_refresh_s",
                checks=(
                    check("relative_benefit", 2.0, ">", 0.4),
                    check("relative_benefit", 90.0, "<", of=2.0),
                ),
            ),
            VariantSpec(
                name="te-staleness",
                runner=run_te_staleness,
                row_key="refresh_s",
                checks=(
                    check("te_switches", "*", "<=", 3),
                    check("on_green_path", "*", "truthy"),
                ),
            ),
        ),
    )
)
