"""Worlds for live service mode: one plane per process (DESIGN.md §14).

``eona serve`` and E20 share these builders:

* :func:`build_infp_service` -- the InfP serving process: a flash-crowd
  world with local traffic, an :class:`~repro.core.infp.EonaInfP`
  watching the access link, and a
  :class:`~repro.transport.service.GlassService` exporting its I2A
  glass (plus the ``__control__`` vocabulary) to the wire.
* :func:`run_appp_client` -- the AppP plane: its own session world whose
  :class:`~repro.core.appp.EonaAppP` reaches the ISP through a
  :class:`~repro.transport.glass.RemoteLookingGlass` over any
  transport.  Returns one table row of QoE + proxy/fallback counters.
* :func:`spawn_infp_server` -- launch the InfP plane as a *real* second
  process (``python -m repro.cli serve infp``) and hand back the bound
  port; the E20 tcp variant and the CI service smoke both go through
  it.

The two processes each simulate their own copy of the world (an ISP
observes its own network; the AppP observes its sessions) -- what
crosses the boundary is exactly what the paper says should: I2A
answers, over the wire.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.modes import Mode
from repro.core.appp import EonaAppP, StatusQuoAppP
from repro.core.infp import EonaInfP
from repro.experiments.common import launch_video_sessions, qoe_of
from repro.scenarios import build_scenario
from repro.transport.glass import RemoteLookingGlass
from repro.transport.service import GlassService
from repro.video.qoe import summarize


@dataclass
class InfPService:
    """The serving side, assembled: world + controller + frame handler."""

    scenario: object
    infp: EonaInfP
    service: GlassService
    players: List[object]

    @property
    def sim(self):
        return self.scenario.ctx.sim


def build_infp_service(
    seed: int = 0,
    n_clients: int = 30,
    access_capacity_mbps: float = 45.0,
    peak_rate_per_s: float = 1.5,
    horizon_s: float = 600.0,
    i2a_refresh_s: float = 10.0,
    with_local_traffic: bool = True,
) -> InfPService:
    """Assemble the InfP plane: E2's ISP side with its glass on a wire.

    The local flash-crowd traffic is what congests the access link and
    gives the I2A congestion signal something to attribute; disable it
    for a quiet server (transport-level tests).
    """
    scenario = build_scenario(
        "flash-crowd",
        seed=seed,
        params={
            "n_clients": n_clients,
            "access_capacity_mbps": access_capacity_mbps,
            "peak_rate_per_s": peak_rate_per_s,
        },
    )
    ctx = scenario.ctx
    infp = EonaInfP(
        ctx,
        access_links=[scenario.access_link],
        i2a_refresh_s=i2a_refresh_s,
        stats_period_s=2.0,
    )
    ctx.registry.grant("isp", "appp")
    players: List[object] = []
    if with_local_traffic:
        policy = StatusQuoAppP(ctx, name="local")
        players = launch_video_sessions(
            ctx,
            catalog=scenario.catalog,
            policy=policy,
            content_picker=lambda index: scenario.catalog.by_rank(0),
            **scenario.world.population("viewers").launch_kwargs(
                until=horizon_s * 0.6
            ),
        )
    service = GlassService(clock=lambda: ctx.sim.now)
    service.add_glass(infp.i2a)
    return InfPService(
        scenario=scenario, infp=infp, service=service, players=players
    )


def run_appp_client(
    proxy: RemoteLookingGlass,
    seed: int = 0,
    n_clients: int = 30,
    access_capacity_mbps: float = 45.0,
    peak_rate_per_s: float = 1.5,
    horizon_s: float = 600.0,
    stale_tolerance_s: float = float("inf"),
    glass_error_threshold: int = 3,
) -> Dict[str, object]:
    """Run the AppP plane against a remote I2A; one table row out.

    The proxy must be constructed *before* this call; its transport
    decides the regime (sync loopback, pipelined sim latency, live
    TCP).  Pipelined proxies need their ``clock`` rebound to this
    world's sim -- pass a fresh proxy per run.
    """
    scenario = build_scenario(
        "flash-crowd",
        seed=seed,
        params={
            "n_clients": n_clients,
            "access_capacity_mbps": access_capacity_mbps,
            "peak_rate_per_s": peak_rate_per_s,
        },
    )
    ctx = scenario.ctx
    policy = EonaAppP(
        ctx,
        isp_i2a=proxy,
        name="appp",
        stale_tolerance_s=stale_tolerance_s,
        glass_error_threshold=glass_error_threshold,
    )
    players = launch_video_sessions(
        ctx,
        catalog=scenario.catalog,
        policy=policy,
        content_picker=lambda index: scenario.catalog.by_rank(0),
        **scenario.world.population("viewers").launch_kwargs(until=horizon_s * 0.6),
    )
    ctx.sim.run(until=horizon_s)
    policy.stop()
    summary = summarize(qoe_of(players))
    row: Dict[str, object] = {
        "mode": Mode.EONA.value,
        "sessions": len(players),
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "i2a_queries": policy.i2a_queries,
        "glass_errors": policy.glass_errors,
        "fallback_activations": policy.fallback_activations,
        "fallback_reengagements": policy.fallback_reengagements,
        "_counters": ctx.allocation_counters(),
    }
    row.update(proxy.stats())
    return row


def serve_command(
    seed: int,
    port: int,
    time_scale: float,
    horizon_s: float,
    run_for_s: Optional[float],
    ready_file: Optional[str] = None,
    record: Optional[str] = None,
) -> List[str]:
    """The argv for an InfP serving subprocess (module-run form)."""
    argv = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "infp",
        "--seed",
        str(seed),
        "--port",
        str(port),
        "--time-scale",
        str(time_scale),
        "--horizon",
        str(horizon_s),
    ]
    if run_for_s is not None:
        argv += ["--run-for", str(run_for_s)]
    if ready_file is not None:
        argv += ["--ready-file", ready_file]
    if record is not None:
        argv += ["--record", record]
    return argv


def spawn_infp_server(
    seed: int = 0,
    time_scale: float = 120.0,
    horizon_s: float = 600.0,
    run_for_s: Optional[float] = 60.0,
    startup_timeout_s: float = 30.0,
) -> Tuple[subprocess.Popen, int]:
    """Launch ``eona serve infp`` and wait for its bound port.

    The child announces readiness by printing ``SERVING port=<n>`` on
    stdout; reading that line is the synchronization point (no polling).
    Callers own the process: ``terminate()`` it when done.
    """
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src_dir), env.get("PYTHONPATH", "")) if p
    )
    process = subprocess.Popen(
        serve_command(
            seed=seed,
            port=0,
            time_scale=time_scale,
            horizon_s=horizon_s,
            run_for_s=run_for_s,
        ),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        line = process.stdout.readline()
    except Exception:
        process.kill()
        raise
    prefix = "SERVING "
    if not line.startswith(prefix):
        process.kill()
        out = line + (process.stdout.read() or "")
        raise RuntimeError(f"serve infp did not come up; output: {out[:400]!r}")
    fields = dict(
        pair.split("=", 1) for pair in line[len(prefix):].split() if "=" in pair
    )
    return process, int(fields["port"])


def stop_server(process: subprocess.Popen, timeout_s: float = 15.0) -> int:
    """Terminate a serving subprocess and reap it; returns the exit code."""
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=timeout_s)
    if process.stdout is not None:
        process.stdout.close()
    return process.returncode


def ready_info(path: str) -> Dict[str, object]:
    """Parse a ``--ready-file`` JSON blob written by the serving process."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)
