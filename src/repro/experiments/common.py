"""Shared experiment machinery: result tables and session launching."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.cdn.content import ContentCatalog, ContentItem
from repro.core.context import SimContext
from repro.network.fluidsim import FluidNetwork
from repro.simkernel.kernel import Simulator
from repro.video.abr import AbrAlgorithm, RateBasedAbr
from repro.video.ladder import DEFAULT_LADDER, BitrateLadder
from repro.video.player import AdaptivePlayer, PlayerPolicy
from repro.workloads.arrivals import NonHomogeneousArrivals, PoissonArrivals, RateFn


@dataclass
class ExperimentResult:
    """A small table: named rows of metric values.

    Attributes:
        name: Experiment id, e.g. ``"E4-oscillation"``.
        rows: One dict per configuration (mode, sweep point, ...).
        notes: Free-form provenance (seeds, durations).
        counters: Allocation-engine counters accumulated across the
            worlds behind the rows (see ``SimContext.allocation_counters``);
            run-artifact provenance, never rendered in the table.
    """

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    counters: Dict[str, int] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        """Append a row; keys starting with ``_`` are provenance, not data.

        ``_counters`` (a mapping) is summed into :attr:`counters`; any
        other underscore-prefixed key is dropped, so row producers can
        attach metadata without widening the rendered table.
        """
        row: Dict[str, object] = {}
        for key, value in values.items():
            if key.startswith("_"):
                if key == "_counters" and isinstance(value, Mapping):
                    self.merge_counters(value)
                continue
            row[key] = value
        self.rows.append(row)

    def merge_counters(self, counters: Mapping[str, object]) -> None:
        """Sum engine counters from one simulated world into the result."""
        for key in sorted(counters):
            value = counters[key]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.counters[key] = self.counters.get(key, 0) + int(value)

    def row(self, **match: object) -> Dict[str, object]:
        """The first row whose items include all of ``match``."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        raise KeyError(f"no row matching {match!r} in {self.name}")

    def column(self, key: str) -> List[object]:
        return [row.get(key) for row in self.rows]

    def table_str(self) -> str:
        """Render rows as an aligned text table (the bench output)."""
        if not self.rows:
            return f"== {self.name} ==\n(no rows)"
        columns = self._columns()
        rendered = [
            [self._fmt(row.get(column, "")) for column in columns]
            for row in self.rows
        ]
        widths = [
            max(len(column), *(len(line[i]) for line in rendered))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
        separator = "  ".join("-" * width for width in widths)
        body = "\n".join(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            for line in rendered
        )
        title = f"== {self.name} =="
        parts = [title, header, separator, body]
        if self.notes:
            parts.append(f"({self.notes})")
        return "\n".join(parts)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    # ------------------------------------------------------------------
    # machine-readable exports
    # ------------------------------------------------------------------
    def _columns(self) -> List[str]:
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_csv(self) -> str:
        """The table as CSV (header row + one line per row)."""
        import csv
        import io

        buffer = io.StringIO()
        columns = self._columns()
        writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({key: row.get(key, "") for key in columns})
        return buffer.getvalue()

    def to_json(self) -> str:
        """The full result (name, notes, rows) as a JSON document."""
        import json

        return json.dumps(
            {"name": self.name, "notes": self.notes, "rows": self.rows},
            indent=2,
            default=str,
        )

    def save(self, directory: str, fmt: str = "txt") -> str:
        """Write the table under ``directory``; returns the file path."""
        import os

        renderers = {
            "txt": (self.table_str, ".txt"),
            "csv": (self.to_csv, ".csv"),
            "json": (self.to_json, ".json"),
        }
        if fmt not in renderers:
            raise ValueError(f"unknown format {fmt!r} (txt/csv/json)")
        render, extension = renderers[fmt]
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}{extension}")
        with open(path, "w") as handle:
            handle.write(render())
            if fmt == "txt":
                handle.write("\n")
        return path


def loop_latency_row(
    events: Sequence[Mapping[str, object]], **labels: object
) -> Dict[str, object]:
    """Summarize a captured trace's causal loop into one table row.

    The loop-latency variants (E2/E13/E15/E16) wrap their world in
    :func:`repro.obs.spans.capture` and feed the events here: per loop
    stage (DESIGN.md §13) the row carries the sample count and the
    exact p50/p95 (nearest-rank over the sim-second latencies), plus
    the raw ``a2i-report``/``i2a-hint`` event counts -- everything a
    declarative check needs to pin the causal chain's presence, absence,
    and reaction speed.
    """
    from repro.obs import spans

    samples = spans.loop_latencies(events)
    kinds: Dict[str, int] = {}
    for event in events:
        kind = str(event["kind"])
        kinds[kind] = kinds.get(kind, 0) + 1

    row: Dict[str, object] = dict(labels)
    row["a2i_reports"] = kinds.get("a2i-report", 0)
    row["i2a_hints"] = kinds.get("i2a-hint", 0)
    for stage in spans.LOOP_STAGES:
        values = sorted(
            float(sample["latency_s"]) for sample in samples[stage]  # type: ignore[arg-type]
        )
        row[f"{stage}_n"] = len(values)
        if values:
            # Nearest-rank quantiles: exact, deterministic, no buckets.
            row[f"{stage}_p50_s"] = values[
                max(0, -(-50 * len(values) // 100) - 1)
            ]
            row[f"{stage}_p95_s"] = values[
                max(0, -(-95 * len(values) // 100) - 1)
            ]
        else:
            row[f"{stage}_p50_s"] = 0.0
            row[f"{stage}_p95_s"] = 0.0
    return row


def launch_video_sessions(
    sim: Simulator,
    network: Optional[FluidNetwork] = None,
    catalog: Optional[ContentCatalog] = None,
    policy: Optional[PlayerPolicy] = None,
    client_nodes: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
    rate_per_s: float = 0.5,
    max_sessions: Optional[int] = None,
    rate_fn: Optional[RateFn] = None,
    max_rate_per_s: Optional[float] = None,
    until: Optional[float] = None,
    ladder: BitrateLadder = DEFAULT_LADDER,
    abr_factory: Callable[[], AbrAlgorithm] = RateBasedAbr,
    content_picker: Optional[Callable[[int], ContentItem]] = None,
    session_prefix: str = "s",
    abandon_rebuffer_s: Optional[float] = 120.0,
    on_end: Optional[Callable[[AdaptivePlayer], None]] = None,
) -> List[AdaptivePlayer]:
    """Drive a population of video sessions from an arrival process.

    Returns the (growing) list of players; read their ``qoe()`` after
    the run.  With ``rate_fn`` set, arrivals are non-homogeneous
    (flash crowds, diurnal curves); otherwise homogeneous Poisson at
    ``rate_per_s``.

    ``sim`` may be a :class:`~repro.core.context.SimContext`, in which
    case ``network`` defaults to the context's network and ``rng`` to
    its ``"arrivals"`` stream; the remaining required arguments
    (``catalog``, ``policy``, ``client_nodes``) are passed by keyword.
    """
    if isinstance(sim, SimContext):
        ctx = sim
        sim = ctx.sim
        if network is None:
            network = ctx.network
        if rng is None:
            rng = ctx.rng.get("arrivals")
    missing = [
        name
        for name, value in (
            ("network", network),
            ("catalog", catalog),
            ("policy", policy),
            ("client_nodes", client_nodes),
            ("rng", rng),
        )
        if value is None
    ]
    if missing:
        raise TypeError(
            f"launch_video_sessions: missing arguments {missing} "
            "(pass them explicitly, or a SimContext as `sim`)"
        )
    players: List[AdaptivePlayer] = []

    def start(index: int) -> None:
        client = client_nodes[index % len(client_nodes)]
        content = (
            content_picker(index) if content_picker else catalog.sample(rng)
        )
        player = AdaptivePlayer(
            sim,
            network,
            session_id=f"{session_prefix}{index}",
            client_node=client,
            content=content,
            ladder=ladder,
            abr=abr_factory(),
            policy=policy,
            abandon_rebuffer_s=abandon_rebuffer_s,
            on_end=on_end,
        )
        players.append(player)
        player.start()

    if rate_fn is not None:
        envelope = max_rate_per_s or rate_per_s
        NonHomogeneousArrivals(
            sim, rate_fn, envelope, start, rng, until=until, max_sessions=max_sessions
        )
    else:
        PoissonArrivals(
            sim, rate_per_s, start, rng, until=until, max_sessions=max_sessions
        )
    return players


def qoe_of(players: Sequence[AdaptivePlayer]) -> list:
    """QoE metrics of every player that actually started."""
    return [player.qoe() for player in players]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index in (0, 1]; 1 = perfectly equal."""
    values = [v for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
