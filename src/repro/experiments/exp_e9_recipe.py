"""E9 -- Interface narrowing (paper §4's recipe, step 4).

The recipe derives a *wide* interface from the use cases, then narrows
it to the most useful fields.  This experiment runs the Figure 5 world
at several interface widths -- from zero shared fields (status quo)
through the narrowed sets to the full wide interface -- and against the
global-controller oracle, measuring the quality gap at each width.

Grants are driven by the recipe machinery itself: the wide interface is
derived from the standard EONA use cases, narrowed at each budget, and
the surviving fields are translated into looking-glass grants.

Expected shape: a handful of fields (demand estimate + peering state +
congestion attribution) captures most of the oracle's benefit; widening
beyond that adds little.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.modes import Mode
from repro.core.recipe import (
    InterfaceSpec,
    derive_wide_interface,
    eona_standard_ownership,
    narrow_interface,
)
from repro.experiments import exp_e4_oscillation
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import ExperimentSpec, VariantSpec, check

#: Utility scores for recipe step 4 (in a real deployment these come
#: from measured quality impact / information gain; here they encode
#: the §4 discussion's ranking).
FIELD_UTILITY: Dict[str, float] = {
    "demand_estimate": 1.0,
    "access_congestion": 0.9,
    "peering_capacity": 0.8,
    "peering_decision": 0.7,
    "qoe": 0.6,
    "server_hints": 0.5,
    "server_load": 0.3,
}

#: Which looking-glass queries each recipe datum unlocks.
FIELD_TO_QUERIES: Dict[str, Tuple[Tuple[str, str, str], ...]] = {
    # datum -> ((owner, requester, query), ...)
    "demand_estimate": (("appp", "isp", "demand_estimate"),),
    "qoe": (("appp", "isp", "qoe_by_cdn"),),
    "access_congestion": (("isp", "appp", "congestion"),),
    "peering_capacity": (("isp", "appp", "peering_points"),),
    "peering_decision": (("isp", "appp", "peering_decisions"),),
    "server_hints": (("cdnX", "appp", "server_hints"), ("cdnY", "appp", "server_hints")),
    "server_load": (("cdnX", "appp", "mean_load"), ("cdnY", "appp", "mean_load")),
}


def narrowed_specs(budgets: Tuple[int, ...]) -> List[Tuple[int, InterfaceSpec]]:
    """Apply recipe steps 2-4 to the standard use cases."""
    _, use_cases = eona_standard_ownership()
    wide = derive_wide_interface(use_cases)
    return [
        (budget, narrow_interface(wide, FIELD_UTILITY, budget))
        for budget in budgets
    ]


def run_width(
    spec: InterfaceSpec,
    seed: int = 0,
    **kwargs,
) -> Dict[str, object]:
    """Run the oscillation world with only this spec's fields granted."""
    from repro.core.appp import EonaAppP
    from repro.core.infp import EonaInfP
    from repro.experiments.common import launch_video_sessions, qoe_of
    from repro.video.qoe import summarize
    from repro.scenarios import build_scenario

    scenario = build_scenario("oscillation", seed=seed)
    sim = scenario.sim
    registry = scenario.registry

    policy = EonaAppP(sim, scenario.cdns, name="appp")
    a2i = policy.make_a2i(registry)
    infp = EonaInfP(
        sim,
        scenario.network,
        scenario.groups,
        registry=registry,
        appp_a2i=a2i,
        te_period_s=kwargs.get("te_period_s", 60.0),
        stats_period_s=5.0,
    )
    policy.isp_i2a = infp.i2a

    # Translate the narrowed spec into grants.  No grant => the query
    # raises AccessDenied and the consumer falls back gracefully.
    shared = {name for name, _recipient in spec.shared_fields}
    for datum_name in shared:
        for owner, requester, query in FIELD_TO_QUERIES.get(datum_name, ()):
            registry.grant(owner, requester, query)

    horizon_s = kwargs.get("horizon_s", 1200.0)
    players = launch_video_sessions(
        sim,
        scenario.network,
        scenario.catalog,
        policy,
        scenario.client_nodes,
        rng=sim.rng.get("arrivals"),
        rate_per_s=len(scenario.client_nodes) / 180.0,
        until=horizon_s - 200.0,
    )
    sim.run(until=horizon_s)
    infp.stop()
    policy.stop()

    summary = summarize(qoe_of(players))
    return {
        "buffering_ratio": summary["mean_buffering_ratio"],
        "mean_bitrate_mbps": summary["mean_bitrate_mbps"],
        "te_switches": infp.te.switch_count("cdnX"),
        "cdn_switches": summary["cdn_switches_per_session"],
        "engagement": summary["mean_engagement"],
        "_counters": scenario.ctx.allocation_counters(),
    }


def run(
    seed: int = 0,
    budgets: Tuple[int, ...] = (1, 2, 4, 7),
    **kwargs,
) -> ExperimentResult:
    result = ExperimentResult(
        name="E9-recipe",
        notes="QoE vs. interface width in the Figure 5 world; oracle bound",
    )
    quo = exp_e4_oscillation.run_mode(Mode.STATUS_QUO, seed=seed, **kwargs)
    result.add_row(
        config="status_quo",
        width=0,
        fields="",
        buffering_ratio=quo["buffering_ratio"],
        mean_bitrate_mbps=quo["mean_bitrate_mbps"],
        te_switches=quo["te_switches"],
        engagement=quo["engagement"],
        _counters=quo["_counters"],
    )
    for budget, spec in narrowed_specs(budgets):
        shared = sorted({name for name, _ in spec.shared_fields})
        row = run_width(spec, seed=seed, **kwargs)
        result.add_row(
            config=f"narrow-{budget}",
            width=spec.width,
            fields=",".join(shared),
            **row,
        )
    oracle = exp_e4_oscillation.run_mode(Mode.ORACLE, seed=seed, **kwargs)
    result.add_row(
        config="oracle",
        width=-1,
        fields="(all, live)",
        buffering_ratio=oracle["buffering_ratio"],
        mean_bitrate_mbps=oracle["mean_bitrate_mbps"],
        te_switches=oracle["te_switches"],
        engagement=oracle["engagement"],
        _counters=oracle["_counters"],
    )
    return result


register(
    ExperimentSpec(
        exp_id="e9",
        title="interface narrowing recipe vs the oracle (§4)",
        source="paper §4 recipe, step 4",
        module=__name__,
        variants=(
            VariantSpec(
                name="recipe",
                runner=run,
                row_key="config",
                checks=(
                    # A handful of fields captures the benefit...
                    check("buffering_ratio", "narrow-1", "<", 0.2, of="status_quo"),
                    check("te_switches", "narrow-1", "<=", 3),
                    check("te_switches", "status_quo", ">", 3),
                    # ...widening adds essentially nothing...
                    check("buffering_ratio", "narrow-7", "<=", 1.5, of="narrow-1"),
                    # ...and narrow-1 sits within noise of the oracle.
                    check("engagement", "narrow-1", ">=", of="oracle", plus=-0.05),
                ),
            ),
        ),
    )
)
