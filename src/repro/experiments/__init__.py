"""Experiment harness: one module per figure/scenario of the paper.

Every experiment exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the
table the corresponding benchmark prints.  The index of experiments and
their paper sources lives in DESIGN.md.
"""

from repro.experiments.common import ExperimentResult, launch_video_sessions

__all__ = ["ExperimentResult", "launch_video_sessions"]
